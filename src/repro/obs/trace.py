"""Dependency-free tracing: nested spans over the screening pipeline.

One :class:`Tracer` records completed :class:`SpanRecord` entries into
a bounded ring buffer; instrumented code opens spans through the
module-level :func:`span` helper::

    from repro.obs import Tracer, install_tracer, span

    tracer = Tracer()
    install_tracer(tracer)
    with span("stage.encode", dies=500):
        ...
    tracer.write_chrome_trace("trace.json")   # chrome://tracing

Design constraints (locked down by ``tests/obs/``):

* **Off by default, ~one branch when off.**  No tracer is installed
  unless :func:`install_tracer` (or the :func:`tracing` context
  manager) ran; :func:`span` then returns a stateless shared no-op
  span whose enter/exit do nothing.  The hot path pays a module
  attribute load and an ``is None`` check per span.
* **Never perturbs results.**  Spans only observe wall-clock and
  attach attributes; verdict bit-identity with tracing on is asserted
  per executor.
* **Thread-safe, nesting-aware.**  Parent linkage rides a
  ``contextvars.ContextVar``, so concurrent server threads each get
  their own span stack; the ring buffer append is lock-guarded.
* **Exportable.**  JSONL (one record per line) and Chrome
  ``trace_event`` JSON (loadable in ``chrome://tracing`` or Perfetto;
  see ``docs/observability.md``).

Request-id propagation lives here too: :func:`request_context` binds
an id to the current thread/task, and every span opened inside the
binding records it as a ``request_id`` attribute -- how a client's
``X-Repro-Request-Id`` header joins server-side spans and log lines.
"""

from __future__ import annotations

import contextvars
import itertools
import json
import os
import socket
import threading
import time
import uuid
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterable, Iterator, List, Optional

#: HTTP header carrying one logical request's identity end to end
#: (client retry attempts reuse the id; the server echoes it back).
REQUEST_ID_HEADER = "X-Repro-Request-Id"

_REQUEST_ID: "contextvars.ContextVar[Optional[str]]" = \
    contextvars.ContextVar("repro_request_id", default=None)


def new_request_id() -> str:
    """A fresh request id (uuid4 hex)."""
    return uuid.uuid4().hex


def get_request_id() -> Optional[str]:
    """The request id bound to the current thread/task (or None)."""
    return _REQUEST_ID.get()


def set_request_id(request_id: Optional[str]):
    """Bind a request id; returns the token for :func:`reset_request_id`."""
    return _REQUEST_ID.set(request_id)


def reset_request_id(token) -> None:
    """Restore the binding that ``token``'s :func:`set_request_id` replaced."""
    _REQUEST_ID.reset(token)


@contextmanager
def request_context(request_id: Optional[str]) -> Iterator[Optional[str]]:
    """Bind ``request_id`` for the duration of a block.

    Spans opened inside the block (same thread) auto-attach it as
    their ``request_id`` attribute; :func:`repro.obs.logs.log_event`
    lines pick it up the same way.
    """
    token = _REQUEST_ID.set(request_id)
    try:
        yield request_id
    finally:
        _REQUEST_ID.reset(token)


@dataclass(frozen=True)
class SpanRecord:
    """One completed span (immutable; what the ring buffer stores)."""

    name: str
    span_id: int
    parent_id: Optional[int]
    start: float            #: ``time.perf_counter()`` at entry
    duration: float         #: seconds
    thread_id: int
    attributes: Dict[str, object] = field(default_factory=dict)
    error: Optional[str] = None
    #: Recording process, when the span crossed a process boundary
    #: (None = recorded in the exporting process).  Worker-side spans
    #: carry their worker's pid home so the Chrome trace shows one
    #: track per process.
    pid: Optional[int] = None
    #: Recording host, when the span crossed a *machine* boundary
    #: (None = recorded on the exporting host).  TCP shard workers on
    #: other machines stamp their hostname so one merged trace still
    #: says where each span ran -- pids alone collide across hosts.
    host: Optional[str] = None

    @property
    def ok(self) -> bool:
        """True when the span's block exited without an exception."""
        return self.error is None

    def to_dict(self) -> Dict[str, object]:
        """JSON-ready view (the JSONL export row)."""
        row: Dict[str, object] = {
            "name": self.name, "span_id": self.span_id,
            "parent_id": self.parent_id, "start": self.start,
            "duration": self.duration, "thread_id": self.thread_id,
        }
        if self.attributes:
            row["attributes"] = dict(self.attributes)
        if self.error is not None:
            row["error"] = self.error
        if self.pid is not None:
            row["pid"] = self.pid
        if self.host is not None:
            row["host"] = self.host
        return row

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "SpanRecord":
        """Rebuild a record exported by :meth:`to_dict`.

        The wire format worker processes use to send their spans back
        to the coordinating process (:meth:`Tracer.absorb`).
        """
        return cls(
            name=str(row["name"]), span_id=int(row["span_id"]),
            parent_id=(None if row.get("parent_id") is None
                       else int(row["parent_id"])),
            start=float(row["start"]),
            duration=float(row["duration"]),
            thread_id=int(row.get("thread_id", 0)),
            attributes=dict(row.get("attributes") or {}),
            error=(None if row.get("error") is None
                   else str(row["error"])),
            pid=(None if row.get("pid") is None
                 else int(row["pid"])),
            host=(None if row.get("host") is None
                  else str(row["host"])))


class Span:
    """A live span handle (context manager).

    Only exists while a tracer is installed; the disabled path uses
    the shared :data:`NULL_SPAN` instead.  ``set(**attrs)`` attaches
    attributes at any point before exit.
    """

    __slots__ = ("_tracer", "name", "attributes", "_span_id",
                 "_parent_id", "_token", "_start")

    def __init__(self, tracer: "Tracer", name: str,
                 attributes: Dict[str, object]) -> None:
        self._tracer = tracer
        self.name = name
        self.attributes = attributes
        self._span_id: Optional[int] = None
        self._parent_id: Optional[int] = None
        self._token = None
        self._start = 0.0

    def set(self, **attributes: object) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self._span_id = next(tracer._ids)
        self._parent_id = tracer._current.get()
        self._token = tracer._current.set(self._span_id)
        rid = _REQUEST_ID.get()
        if rid is not None and "request_id" not in self.attributes:
            self.attributes["request_id"] = rid
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = time.perf_counter() - self._start
        tracer = self._tracer
        tracer._current.reset(self._token)
        error = None if exc_type is None \
            else f"{exc_type.__name__}: {exc}"
        tracer._record(SpanRecord(
            name=self.name, span_id=self._span_id,
            parent_id=self._parent_id, start=self._start,
            duration=duration, thread_id=threading.get_ident(),
            attributes=self.attributes, error=error))
        return False


class _NullSpan:
    """The shared do-nothing span of the disabled path.

    Stateless and reusable, so the module-level :func:`span` helper
    costs one ``is None`` branch plus returning this singleton when no
    tracer is installed.
    """

    __slots__ = ()

    def set(self, **attributes: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> bool:
        return False


#: The span every :func:`span` call returns while tracing is off.
NULL_SPAN = _NullSpan()


class Tracer:
    """Thread-safe span recorder with a bounded ring buffer.

    Parameters
    ----------
    capacity:
        Ring-buffer size in completed spans; the oldest records drop
        first (the :attr:`dropped` counter says how many).
    name:
        Process label used by the Chrome-trace export.
    trace_id:
        Identity of the distributed trace this tracer contributes to.
        Defaults to a fresh uuid4 hex; worker processes joining a
        parent trace pass the parent's id
        (:func:`context_tracer`) so every process records under one
        trace identity.
    """

    def __init__(self, capacity: int = 65536, name: str = "repro",
                 trace_id: Optional[str] = None) -> None:
        if capacity < 1:
            raise ValueError("tracer needs room for one span")
        self.capacity = int(capacity)
        self.name = str(name)
        self.trace_id = (uuid.uuid4().hex if trace_id is None
                         else str(trace_id))
        self._records: "deque[SpanRecord]" = deque(maxlen=self.capacity)
        self._lock = threading.Lock()
        self._ids = itertools.count(1)
        self._current: "contextvars.ContextVar[Optional[int]]" = \
            contextvars.ContextVar("repro_current_span", default=None)
        self._dropped = 0
        # perf_counter -> epoch offset, captured once so exported
        # timestamps are consistent within a trace.
        self._epoch_offset = time.time() - time.perf_counter()

    # ------------------------------------------------------------------
    def span(self, name: str, **attributes: object) -> Span:
        """A new span under the caller's current span (if any)."""
        return Span(self, str(name), dict(attributes))

    def _record(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self._records) == self._records.maxlen:
                self._dropped += 1
            self._records.append(record)

    # ------------------------------------------------------------------
    def records(self) -> List[SpanRecord]:
        """Completed spans in completion order (children first)."""
        with self._lock:
            return list(self._records)

    def __len__(self) -> int:
        with self._lock:
            return len(self._records)

    @property
    def dropped(self) -> int:
        """Spans evicted from the ring buffer so far."""
        with self._lock:
            return self._dropped

    def clear(self) -> None:
        """Drop every record (the dropped counter resets too)."""
        with self._lock:
            self._records.clear()
            self._dropped = 0

    def absorb(self, records: Iterable[SpanRecord]) -> int:
        """Adopt spans recorded in another process.

        Worker processes trace under a :func:`context_tracer` (same
        ``trace_id``, pid-salted span ids, parent pre-linked to the
        coordinating span) and ship their completed records home;
        the parent absorbs them so one export shows the whole
        distributed campaign.  Returns how many records were adopted.
        """
        count = 0
        with self._lock:
            for record in records:
                if len(self._records) == self._records.maxlen:
                    self._dropped += 1
                self._records.append(record)
                count += 1
        return count

    # ------------------------------------------------------------------
    # Exports
    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """One JSON object per completed span, newline-separated."""
        return "\n".join(json.dumps(record.to_dict(), sort_keys=True)
                         for record in self.records())

    def write_jsonl(self, path: str) -> str:
        """Persist :meth:`to_jsonl`; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl() + "\n")
        return path

    def chrome_trace(self) -> Dict[str, object]:
        """Chrome ``trace_event`` JSON (complete events, ``ph="X"``).

        Load the saved file in ``chrome://tracing`` or
        https://ui.perfetto.dev -- spans nest by thread track, and
        attributes land in each slice's ``args`` panel.
        """
        pid = os.getpid()
        events: List[Dict[str, object]] = []
        for record in self.records():
            args: Dict[str, object] = {
                key: _json_safe(value)
                for key, value in record.attributes.items()}
            args["span_id"] = record.span_id
            if record.parent_id is not None:
                args["parent_id"] = record.parent_id
            if record.error is not None:
                args["error"] = record.error
            if record.host is not None:
                args["host"] = record.host
            events.append({
                "name": record.name, "ph": "X", "cat": "repro",
                "ts": (self._epoch_offset + record.start) * 1e6,
                "dur": record.duration * 1e6,
                "pid": record.pid if record.pid is not None else pid,
                "tid": record.thread_id, "args": args,
            })
        return {"traceEvents": events, "displayTimeUnit": "ms",
                "otherData": {"tracer": self.name,
                              "trace_id": self.trace_id,
                              "dropped_spans": self.dropped}}

    def write_chrome_trace(self, path: str) -> str:
        """Persist :meth:`chrome_trace` as JSON; returns the path."""
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(self.chrome_trace(), handle)
        return path


def _json_safe(value: object) -> object:
    """Attribute values the exports can serialize (repr fallback)."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, (list, tuple)):
        return [_json_safe(item) for item in value]
    return repr(value)


# ----------------------------------------------------------------------
# The module-level active tracer (the one-branch disabled path)
# ----------------------------------------------------------------------
_ACTIVE: Optional[Tracer] = None


def install_tracer(tracer: Optional[Tracer]) -> Optional[Tracer]:
    """Make ``tracer`` the process-wide active tracer.

    Returns the previously active tracer (None when tracing was off),
    so callers can restore it; ``install_tracer(None)`` disables
    tracing.
    """
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer
    return previous


def uninstall_tracer() -> Optional[Tracer]:
    """Disable tracing; returns the tracer that was active (or None)."""
    return install_tracer(None)


def current_tracer() -> Optional[Tracer]:
    """The active tracer, or None while tracing is disabled."""
    return _ACTIVE


def tracing_enabled() -> bool:
    """True while a tracer is installed."""
    return _ACTIVE is not None


def span(name: str, **attributes: object):
    """A span on the active tracer, or the shared no-op span.

    This is the instrumentation entry point the pipeline calls; while
    tracing is disabled it costs one branch and allocates nothing.
    """
    tracer = _ACTIVE
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attributes)


# ----------------------------------------------------------------------
# Cross-process trace-context propagation
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TraceContext:
    """The ``(trace_id, parent_span_id)`` pair a worker inherits.

    Captured in the coordinating process with
    :func:`current_trace_context`, serialized into the worker payload
    (:meth:`to_dict` is plain JSON), and turned back into a live
    tracer with :func:`context_tracer` on the far side.  Worker spans
    then parent-link to the coordinator's span, and
    :meth:`Tracer.absorb` reassembles one trace.
    """

    trace_id: str
    parent_span_id: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return {"trace_id": self.trace_id,
                "parent_span_id": self.parent_span_id}

    @classmethod
    def from_dict(cls, row: Dict[str, object]) -> "TraceContext":
        parent = row.get("parent_span_id")
        return cls(trace_id=str(row["trace_id"]),
                   parent_span_id=None if parent is None
                   else int(parent))


def current_trace_context() -> Optional[TraceContext]:
    """The active tracer's identity + current span, or None.

    None while tracing is disabled -- callers use that to skip the
    propagation machinery entirely on the untraced path.
    """
    tracer = _ACTIVE
    if tracer is None:
        return None
    return TraceContext(trace_id=tracer.trace_id,
                        parent_span_id=tracer._current.get())


def context_tracer(context: TraceContext,
                   capacity: int = 65536,
                   name: str = "repro-worker") -> Tracer:
    """A worker-side tracer joined to ``context``'s trace.

    Spans it records carry the inherited ``trace_id``, default-parent
    to ``context.parent_span_id`` (so the worker's root spans nest
    under the coordinator's dispatching span), stamp the worker's pid,
    and draw span ids from a pid-salted counter so ids stay unique
    when the parent absorbs records from many workers.
    """
    tracer = Tracer(capacity=capacity, name=name,
                    trace_id=context.trace_id)
    tracer._current = contextvars.ContextVar(
        "repro_current_span", default=context.parent_span_id)
    # 24 bits of pid in the high word keeps worker ids disjoint from
    # the parent's small sequential ids and from sibling workers.
    tracer._ids = itertools.count(
        ((os.getpid() & 0xFFFFFF) << 32) + 1)
    return tracer


def stamped_records(tracer: Tracer) -> List[Dict[str, object]]:
    """``tracer``'s records as JSON rows, pid- and host-stamped.

    The worker-side complement of :meth:`Tracer.absorb`: each record
    gets this process's pid and hostname (unless already stamped) so
    the parent's Chrome export draws the worker on its own process
    track and a multi-host trace says which machine ran each span.
    """
    pid = os.getpid()
    host = socket.gethostname()
    rows = []
    for record in tracer.records():
        if record.pid is None or record.host is None:
            record = replace(
                record,
                pid=record.pid if record.pid is not None else pid,
                host=record.host if record.host is not None else host)
        rows.append(record.to_dict())
    return rows


@contextmanager
def tracing(tracer: Optional[Tracer] = None,
            capacity: int = 65536) -> Iterator[Tracer]:
    """Install a tracer for a block, restoring the previous one after.

    ::

        with tracing() as tracer:
            engine.run(population)
        print(len(tracer), "spans")
    """
    tracer = tracer if tracer is not None else Tracer(capacity=capacity)
    previous = install_tracer(tracer)
    try:
        yield tracer
    finally:
        install_tracer(previous)


__all__ = [
    "NULL_SPAN",
    "REQUEST_ID_HEADER",
    "Span",
    "SpanRecord",
    "TraceContext",
    "Tracer",
    "context_tracer",
    "current_trace_context",
    "current_tracer",
    "get_request_id",
    "install_tracer",
    "new_request_id",
    "request_context",
    "reset_request_id",
    "set_request_id",
    "span",
    "stamped_records",
    "tracing",
    "tracing_enabled",
    "uninstall_tracer",
]
