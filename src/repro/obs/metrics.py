"""Thread-safe in-process metrics: counters, gauges, histograms, windows.

The registry grew up in the service layer (PR 6) and moved here so the
*engine* can record whether or not a server is running: engine-level
stage histograms, cache/store counters and checkpoint timings land in
the process-default registry (:func:`default_registry`), which
``repro serve`` scrapes on ``/metrics`` and ``repro campaign
--profile`` prints directly.  ``repro.service.metrics`` re-exports
everything for compatibility.

Every operation is nanosecond-scale against millisecond-scale
requests, so one lock per registry is simpler and plenty.  The
registry renders to a Prometheus-style text exposition (``/metrics``)::

    >>> registry = MetricsRegistry(namespace="repro")
    >>> registry.counter("requests_total", endpoint="campaign").inc()
    >>> registry.window("batch_size").observe(3)
    >>> print(registry.render())   # doctest: +ELLIPSIS
    repro_requests_total{endpoint="campaign"} 1
    repro_batch_size_count 1
    repro_batch_size_sum 3
    ...

Label values are rendered escaped and sorted, so scrapes are stable
across runs.  :meth:`MetricsRegistry.observe_timings` records **any**
stage key a timing dict carries -- new pipeline stages appear on
``/metrics`` without registry edits.
"""

from __future__ import annotations

import bisect
import threading
import time
from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

_LabelKey = Tuple[Tuple[str, str], ...]


def _label_key(labels: Dict[str, str]) -> _LabelKey:
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: _LabelKey) -> str:
    if not key:
        return ""
    inner = ",".join(
        '%s="%s"' % (name, value.replace("\\", "\\\\")
                     .replace('"', '\\"').replace("\n", "\\n"))
        for name, value in key)
    return "{" + inner + "}"


def _render_value(value: float) -> str:
    # Integers render bare (counter idiom); floats keep full repr so
    # scrapes round-trip.
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    """Bucket bound label value (``+Inf`` for the overflow bucket)."""
    if bound == float("inf"):
        return "+Inf"
    return _render_value(bound)


class Counter:
    """Monotonic counter (one labelled series of a counter family)."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        """Current count."""
        with self._lock:
            return self._value


class Gauge:
    """Set-or-adjust instantaneous value (in-flight, queue depth)."""

    def __init__(self, lock: threading.Lock) -> None:
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        """Replace the value."""
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust up (or down with a negative amount)."""
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Adjust down."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current value."""
        with self._lock:
            return self._value


class RollingWindow:
    """Last-N observations plus lifetime count/sum.

    Keeps a bounded deque of recent observations (stage timings,
    coalesced batch sizes) so the scrape can report recent min / mean /
    max / last without unbounded memory, alongside lifetime ``count``
    and ``sum`` for rate math on the scraper side.
    """

    def __init__(self, lock: threading.Lock, size: int = 256) -> None:
        if size < 1:
            raise ValueError("window needs room for one observation")
        self._lock = lock
        self._recent: deque = deque(maxlen=int(size))
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        with self._lock:
            self._recent.append(value)
            self._count += 1
            self._sum += value

    @property
    def count(self) -> int:
        """Lifetime observation count."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Lifetime sum."""
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, float]:
        """Stats of the rolling window (empty dict when unobserved)."""
        with self._lock:
            if not self._count:
                return {}
            recent = list(self._recent)
            return {
                "count": float(self._count),
                "sum": self._sum,
                "last": recent[-1],
                "recent_min": min(recent),
                "recent_mean": sum(recent) / len(recent),
                "recent_max": max(recent),
            }


#: Default latency buckets (seconds): 100 us .. 10 s, roughly
#: logarithmic -- wide enough for a golden compile, fine enough for a
#: packed NDF pass.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)


class Histogram:
    """Fixed-bucket cumulative histogram (the Prometheus idiom).

    Renders as ``name_bucket{le="..."}`` cumulative counts plus
    ``name_sum`` / ``name_count``, so standard histogram_quantile
    queries work on the scrape.  Buckets are fixed at creation; the
    overflow (``+Inf``) bucket is implicit.
    """

    def __init__(self, lock: threading.Lock,
                 buckets: Tuple[float, ...] = DEFAULT_BUCKETS) -> None:
        bounds = tuple(float(b) for b in buckets)
        if not bounds or list(bounds) != sorted(set(bounds)):
            raise ValueError("buckets must be distinct and ascending")
        self._lock = lock
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # last = +Inf overflow
        self._count = 0
        self._sum = 0.0

    def observe(self, value: float) -> None:
        """Record one observation into its bucket."""
        value = float(value)
        with self._lock:
            self._count += 1
            self._sum += value
            self._counts[bisect.bisect_left(self.buckets, value)] += 1

    @property
    def count(self) -> int:
        """Lifetime observation count."""
        with self._lock:
            return self._count

    @property
    def total(self) -> float:
        """Lifetime sum."""
        with self._lock:
            return self._sum

    def snapshot(self) -> Dict[str, float]:
        """Cumulative ``{le: count}`` plus ``sum``/``count``."""
        with self._lock:
            counts = list(self._counts)
            total, n = self._sum, self._count
        cumulative: Dict[str, float] = {}
        running = 0
        for bound, count in zip(self.buckets + (float("inf"),), counts):
            running += count
            cumulative[_format_bound(bound)] = float(running)
        cumulative["sum"] = total
        cumulative["count"] = float(n)
        return cumulative


class MetricsRegistry:
    """Namespace of counters, gauges, histograms and rolling windows.

    ``counter`` / ``gauge`` / ``histogram`` / ``window`` get-or-create
    a series, so call sites never pre-register; families are rendered
    sorted by name then labels.  One registry instance backs one
    server; the engine records into :func:`default_registry`.
    """

    def __init__(self, namespace: str = "repro",
                 window_size: int = 256) -> None:
        self.namespace = str(namespace)
        self.window_size = int(window_size)
        self._lock = threading.Lock()
        self._counters: Dict[Tuple[str, _LabelKey], Counter] = {}
        self._gauges: Dict[Tuple[str, _LabelKey], Gauge] = {}
        self._histograms: Dict[Tuple[str, _LabelKey], Histogram] = {}
        self._windows: Dict[Tuple[str, _LabelKey], RollingWindow] = {}
        self._started = time.time()

    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: str) -> Counter:
        """The counter series ``name{labels}`` (created on first use)."""
        key = (str(name), _label_key(labels))
        with self._lock:
            series = self._counters.get(key)
            if series is None:
                series = self._counters[key] = Counter(self._lock)
        return series

    def gauge(self, name: str, **labels: str) -> Gauge:
        """The gauge series ``name{labels}`` (created on first use)."""
        key = (str(name), _label_key(labels))
        with self._lock:
            series = self._gauges.get(key)
            if series is None:
                series = self._gauges[key] = Gauge(self._lock)
        return series

    def histogram(self, name: str,
                  buckets: Optional[Tuple[float, ...]] = None,
                  **labels: str) -> Histogram:
        """The histogram ``name{labels}`` (created on first use).

        ``buckets`` applies on creation only; later callers share the
        first caller's bucket layout.
        """
        key = (str(name), _label_key(labels))
        with self._lock:
            series = self._histograms.get(key)
            if series is None:
                series = self._histograms[key] = Histogram(
                    self._lock,
                    buckets if buckets is not None else DEFAULT_BUCKETS)
        return series

    def window(self, name: str, **labels: str) -> RollingWindow:
        """The rolling window ``name{labels}`` (created on first use)."""
        key = (str(name), _label_key(labels))
        with self._lock:
            series = self._windows.get(key)
            if series is None:
                series = self._windows[key] = RollingWindow(
                    self._lock, self.window_size)
        return series

    def observe_timings(self, timing: Dict[str, float],
                        **labels: str) -> None:
        """Record an engine result's per-stage timing dict.

        Every stage key the dict carries becomes one ``stage_seconds``
        window labelled by stage name (plus any extra labels, e.g. the
        mode) -- there is deliberately no stage whitelist, so a new
        engine stage appears on ``/metrics`` the first time a result
        reports it.
        """
        for stage, seconds in timing.items():
            self.window("stage_seconds", stage=stage,
                        **labels).observe(seconds)

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-dict view of every series (tests, JSON health)."""
        with self._lock:
            counters = {name + _render_labels(labels): series._value
                        for (name, labels), series
                        in self._counters.items()}
            gauges = {name + _render_labels(labels): series._value
                      for (name, labels), series in self._gauges.items()}
            histogram_items = list(self._histograms.items())
            window_items = list(self._windows.items())
        histograms = {name + _render_labels(labels): series.snapshot()
                      for (name, labels), series in histogram_items}
        windows = {name + _render_labels(labels): series.snapshot()
                   for (name, labels), series in window_items}
        return {"counters": counters, "gauges": gauges,
                "histograms": histograms, "windows": windows}

    def render(self) -> str:
        """Prometheus-style text exposition of every series."""
        prefix = self.namespace + "_" if self.namespace else ""
        lines: List[str] = []

        def emit(kind: Iterable[Tuple[Tuple[str, _LabelKey], float]],
                 suffix: str = "") -> None:
            for (name, labels), value in sorted(kind,
                                                key=lambda kv: kv[0]):
                lines.append(f"{prefix}{name}{suffix}"
                             f"{_render_labels(labels)} "
                             f"{_render_value(value)}")

        with self._lock:
            counter_rows = [(key, series._value)
                            for key, series in self._counters.items()]
            gauge_rows = [(key, series._value)
                          for key, series in self._gauges.items()]
            histogram_keys = list(self._histograms.items())
            window_keys = list(self._windows.items())
        emit(counter_rows)
        emit(gauge_rows)
        histogram_rows = sorted(
            ((key, series) for key, series in histogram_keys),
            key=lambda kv: kv[0])
        for (name, labels), series in histogram_rows:
            stats = series.snapshot()
            total = stats.pop("sum")
            count = stats.pop("count")
            for bound, value in stats.items():
                bucket_labels = tuple(sorted(labels + (("le", bound),)))
                lines.append(f"{prefix}{name}_bucket"
                             f"{_render_labels(bucket_labels)} "
                             f"{_render_value(value)}")
            lines.append(f"{prefix}{name}_sum{_render_labels(labels)} "
                         f"{_render_value(total)}")
            lines.append(f"{prefix}{name}_count"
                         f"{_render_labels(labels)} "
                         f"{_render_value(count)}")
        window_rows: List[Tuple[Tuple[str, _LabelKey], Dict]] = sorted(
            ((key, series.snapshot()) for key, series in window_keys),
            key=lambda kv: kv[0])
        for (name, labels), stats in window_rows:
            for stat, value in stats.items():
                lines.append(f"{prefix}{name}_{stat}"
                             f"{_render_labels(labels)} "
                             f"{_render_value(value)}")
        lines.append(f"{prefix}uptime_seconds "
                     f"{_render_value(time.time() - self._started)}")
        return "\n".join(lines) + "\n"


def timed(window: RollingWindow):
    """Context manager observing a block's wall-clock seconds."""
    return _Timer(window)


class _Timer:
    def __init__(self, window: RollingWindow) -> None:
        self._window = window
        self._start: Optional[float] = None

    def __enter__(self) -> "_Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc) -> None:
        self._window.observe(time.perf_counter() - self._start)


# ----------------------------------------------------------------------
# The process-default registry (engine-level metrics land here)
# ----------------------------------------------------------------------
_DEFAULT_LOCK = threading.Lock()
_DEFAULT: Optional[MetricsRegistry] = None


def default_registry() -> MetricsRegistry:
    """The process-wide registry engine-level metrics record into.

    Created lazily on first use; ``repro serve`` adopts it as the
    server registry by default, so engine/cache/store/checkpoint
    series appear on ``/metrics`` without any wiring.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        if _DEFAULT is None:
            _DEFAULT = MetricsRegistry()
        return _DEFAULT


def set_default_registry(registry: Optional[MetricsRegistry]
                         ) -> Optional[MetricsRegistry]:
    """Replace the process-default registry (tests, embedding apps).

    Returns the previous default (None if it was never created);
    passing None resets to lazy re-creation.
    """
    global _DEFAULT
    with _DEFAULT_LOCK:
        previous = _DEFAULT
        _DEFAULT = registry
        return previous


def record_engine_timings(timing: Dict[str, float],
                          **labels: str) -> None:
    """Record one campaign's per-stage timings into the default registry.

    Each stage lands in the ``engine_stage_seconds`` histogram family
    labelled by stage (any stage key -- no whitelist), and
    ``engine_campaigns_total`` counts the campaign.  Called by the
    engine at result-packaging time whether or not a server exists.
    """
    registry = default_registry()
    registry.counter("engine_campaigns_total", **labels).inc()
    for stage, seconds in timing.items():
        registry.histogram("engine_stage_seconds", stage=stage,
                           **labels).observe(seconds)


__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "RollingWindow",
    "default_registry",
    "record_engine_timings",
    "set_default_registry",
    "timed",
]
