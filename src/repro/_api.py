"""Top-level convenience re-exports (the 30-second API).

>>> from repro import paper_setup
>>> setup = paper_setup()
>>> result = setup.test_deviation(0.10)
>>> 0.08 < result.ndf < 0.12
True
"""

from repro.campaign import (
    CampaignEngine,
    CampaignResult,
    ScreeningRequest,
)
from repro.diagnosis import FaultDictionary, compile_fault_dictionary
from repro.service import ScreeningSession
from repro.paper import (
    FIG6_ZONE_CODES,
    FIG7_NDF_10PCT,
    PAPER_BIQUAD,
    PAPER_INPUT_POLE_HZ,
    PAPER_STIMULUS,
    PaperSetup,
    noisy_paper_setup,
    paper_setup,
)

__all__ = [
    "CampaignEngine",
    "CampaignResult",
    "ScreeningRequest",
    "ScreeningSession",
    "FaultDictionary",
    "compile_fault_dictionary",
    "FIG6_ZONE_CODES",
    "FIG7_NDF_10PCT",
    "PAPER_BIQUAD",
    "PAPER_INPUT_POLE_HZ",
    "PAPER_STIMULUS",
    "PaperSetup",
    "noisy_paper_setup",
    "paper_setup",
]
