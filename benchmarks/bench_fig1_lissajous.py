"""FIG1 -- Lissajous composition: golden vs +10 % f0 shift.

Paper Fig. 1: "Lissajous composition of a multitone input signal and
the low pass output of a Biquad filter.  Nominal shape (left) and 10 %
shift in the natural frequency of the filter (right)."

Regenerates both curves, checks they stay in the 0-1 V window and
differ visibly, and renders ASCII versions of the two panels.
"""

import numpy as np

from repro.analysis import Comparison, banner, comparison_table


def test_fig1_lissajous(benchmark, bench_setup, report_writer):
    golden_cut = bench_setup.golden_filter()
    shifted_cut = bench_setup.deviated_filter(0.10)

    golden = benchmark(bench_setup.tester.trace_of, golden_cut)
    shifted = bench_setup.tester.trace_of(shifted_cut)

    gap = float(np.max(np.abs(golden.y.values - shifted.y.values)))
    comparisons = [
        Comparison("x window (V)", "0..1", f"{golden.bounding_box()[0]:.2f}"
                   f"..{golden.bounding_box()[1]:.2f}",
                   match=golden.stays_within(0.0, 1.0)),
        Comparison("y window (V)", "0..1", f"{golden.bounding_box()[2]:.2f}"
                   f"..{golden.bounding_box()[3]:.2f}",
                   match=golden.stays_within(0.0, 1.0)),
        Comparison("period (us)", 200.0, golden.period * 1e6,
                   match=abs(golden.period - 200e-6) < 1e-9),
        Comparison("visible shape change", "yes (Fig. 1 right)",
                   f"max |dy| = {gap:.3f} V", match=gap > 0.02),
    ]
    lines = [
        banner("FIG1: golden vs +10 % f0 Lissajous"),
        comparison_table(comparisons),
        "",
        "Golden Lissajous (x = Vin, y = Vout):",
        golden.ascii_plot(width=61, height=21),
        "",
        "+10 % f0 Lissajous:",
        shifted.ascii_plot(width=61, height=21),
    ]
    report_writer("fig1_lissajous", "\n".join(lines))

    assert golden.stays_within(0.0, 1.0)
    assert shifted.stays_within(0.0, 1.0)
    assert gap > 0.02
