"""FIG6 -- zone codification and Lissajous traversal.

Paper Fig. 6 prints sixteen zone codes over the control-curve map and
overlays the golden and +10 % Lissajous curves.  The benchmark
regenerates the zone census (which must be *exactly* those sixteen
codes), verifies the one-bit-adjacency criterion the Hamming metric
relies on, and lists the traversal sequence of both curves.
"""


from repro.analysis import Comparison, banner, comparison_table
from repro.paper import FIG6_ZONE_CODES


def test_fig6_zone_map(benchmark, bench_setup, golden_signature,
                       report_writer):
    encoder = bench_setup.encoder
    census = benchmark(encoder.zone_census, (0.0, 1.0), 256)
    adjacency = encoder.adjacency_report(grid=256)
    defective = bench_setup.tester.signature_of(
        bench_setup.deviated_filter(0.10))

    golden_seq = " ".join(str(c) for c in golden_signature.codes())
    defect_seq = " ".join(str(c) for c in defective.codes())

    comparisons = [
        Comparison("realized zone codes", sorted(FIG6_ZONE_CODES),
                   sorted(census),
                   match=set(census) == set(FIG6_ZONE_CODES)),
        Comparison("origin zone", "000000 (0)",
                   encoder.code_string(encoder.origin_zone()),
                   match=encoder.origin_zone() == 0),
        Comparison("adjacent zones differ in 1 bit", "yes",
                   "yes" if adjacency.is_gray else
                   f"no: {adjacency.violations}",
                   match=adjacency.is_gray),
        Comparison("golden visits", "16 distinct zones",
                   len(golden_signature.distinct_codes()),
                   match=golden_signature.distinct_codes()
                   == set(FIG6_ZONE_CODES)),
        Comparison("+10 % visits code 62", "yes (skipped sequence)",
                   "yes" if 62 in defective.distinct_codes() else "no",
                   match=62 in defective.distinct_codes()),
    ]
    report = "\n".join([
        banner("FIG6: zone codification and traversal"),
        "Zone map (code mod 64 rendered as base-64 glyphs):",
        encoder.ascii_zone_map(width=64, height=24),
        "",
        f"Golden traversal ({len(golden_signature)} entries):",
        golden_seq,
        "",
        f"+10 % traversal ({len(defective)} entries):",
        defect_seq,
        "",
        comparison_table(comparisons),
    ])
    report_writer("fig6_zonemap", report)

    assert set(census) == set(FIG6_ZONE_CODES)
    assert adjacency.is_gray
    assert golden_signature.distinct_codes() == set(FIG6_ZONE_CODES)
