"""XTRA-C -- baseline: alternate-test regression vs the NDF band.

The paper cites alternate test ([10], [11]) and regression on Lissajous
signatures ([14]).  This benchmark trains the dwell-time regression on
a deviation sweep and compares the two decision procedures on held-out
units: the NDF band needs no training beyond one golden signature; the
regression additionally *estimates* the deviation (diagnosis).
"""

import numpy as np

from repro.analysis import Comparison, banner, comparison_table, format_table
from repro.baselines import RegressionTester


def test_regression_baseline(benchmark, bench_setup, report_writer):
    tester = bench_setup.tester

    train_devs = np.linspace(-0.15, 0.15, 13)
    train_sigs = [tester.signature_of(bench_setup.deviated_filter(d))
                  for d in train_devs]
    regression = RegressionTester()
    benchmark(regression.fit, train_devs, train_sigs)

    holdout = [-0.12, -0.07, -0.03, -0.008, 0.008, 0.03, 0.07, 0.12]
    tolerance = 0.05
    band = bench_setup.fig8_sweep(
        np.linspace(-0.15, 0.15, 7)).band_for_tolerance(tolerance)

    rows = []
    agree = 0
    max_err = 0.0
    for dev in holdout:
        sig = tester.signature_of(bench_setup.deviated_filter(dev))
        predicted = regression.predict(sig)
        max_err = max(max_err, abs(predicted - dev))
        reg_pass = abs(predicted) <= tolerance
        ndf_pass = band.decide(
            tester.ndf_of(bench_setup.deviated_filter(dev))).passed
        truth = abs(dev) <= tolerance
        agree += int(reg_pass == ndf_pass == truth)
        rows.append([f"{dev:+.1%}", f"{predicted:+.3%}",
                     "PASS" if reg_pass else "FAIL",
                     "PASS" if ndf_pass else "FAIL",
                     "PASS" if truth else "FAIL"])

    table = format_table(
        ["true dev", "regression estimate", "regression verdict",
         "NDF-band verdict", "ground truth"], rows)
    comparisons = [
        Comparison("regression estimate error", "small (alternate test)",
                   f"max {max_err:.3%}", match=max_err < 0.02),
        Comparison("verdict agreement", f"{len(holdout)}/{len(holdout)}",
                   f"{agree}/{len(holdout)}",
                   match=agree == len(holdout)),
        Comparison("training cost", "NDF: 1 golden unit",
                   f"regression: {len(train_devs)}-point sweep",
                   match=True, note="the NDF's practical advantage"),
    ]
    report = "\n".join([
        banner("BASELINE: signature regression (alternate test) vs NDF"),
        table,
        "",
        comparison_table(comparisons),
    ])
    report_writer("baseline_regression", report)

    assert max_err < 0.02
    assert agree == len(holdout)
