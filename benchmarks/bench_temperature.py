"""XTRA (extension) -- temperature drift of the on-chip monitor.

The monitor shares the die with the CUT, so its boundaries drift with
junction temperature (VT at about -1 mV/K, mobility as T^-1.5, kT/q in
the subthreshold region).  This benchmark measures:

* the boundary drift of a representative arc over the industrial
  -40..+125 C range;
* the self-compensation of the symmetric curve 6 (both branches drift
  together);
* the NDF a *fault-free* CUT reads when the monitor sits at a
  different temperature than at golden-calibration time -- the thermal
  guard band, mapped to an equivalent f0 deviation via the Fig. 8
  sweep.
"""

import numpy as np

from repro.analysis import Comparison, banner, comparison_table, format_table
from repro.core.testflow import SignatureTester
from repro.core.zones import ZoneEncoder
from repro.devices import at_temperature, industrial_range
from repro.devices.mos_model import NMOS_65NM
from repro.filters.biquad import BiquadFilter
from repro.monitor import MonitorBoundary, table1_config
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS


def _bank_at(params):
    return [MonitorBoundary(table1_config(row), params)
            for row in range(1, 7)]


def test_temperature_drift(benchmark, bench_setup, report_writer):
    temps = industrial_range(5)

    # Boundary drift of the curve-3 arc at x = 0.25 V.
    heights = []
    for t in temps:
        params = at_temperature(NMOS_65NM, float(t))
        monitor = MonitorBoundary(table1_config(3), params)
        heights.append(float(monitor.locus_points(np.array([0.25]))[0]))
    drift_mv = (np.asarray(heights) - heights[2]) * 1e3

    # NDF of a fault-free CUT when the monitor temperature differs
    # from the golden-calibration temperature (300 K).
    golden_tester = SignatureTester(bench_setup.encoder, PAPER_STIMULUS,
                                    BiquadFilter(PAPER_BIQUAD),
                                    samples_per_period=1024)
    golden_sig = golden_tester.golden_signature()

    def ndf_at_temperature(t_k):
        from repro.core.capture import capture_signature
        from repro.core.ndf import ndf
        encoder = ZoneEncoder(_bank_at(at_temperature(NMOS_65NM, t_k)))
        trace = golden_tester.trace_of(BiquadFilter(PAPER_BIQUAD))
        sig = capture_signature(encoder, trace)
        return ndf(sig, golden_sig)

    hot_ndf = benchmark(ndf_at_temperature, 398.15)
    cold_ndf = ndf_at_temperature(233.15)

    sweep = bench_setup.fig8_sweep(np.linspace(-0.1, 0.1, 9))
    __, hot_guard = sweep.detectable_deviation(hot_ndf)

    rows = [[f"{t - 273.15:+.0f} C", f"{h:.4f} V", f"{d:+.1f} mV"]
            for t, h, d in zip(temps, heights, drift_mv)]
    comparisons = [
        Comparison("arc drift over -40..125 C", "tens of mV",
                   f"{np.ptp(drift_mv):.1f} mV span",
                   match=2.0 < np.ptp(drift_mv) < 200.0),
        Comparison("fault-free NDF at +125 C monitor", "> 0 "
                   "(thermal guard band)", round(hot_ndf, 4),
                   match=hot_ndf > 0.0),
        Comparison("equivalent f0 guard band", "significant "
                   "(uncompensated 98 K excursion)",
                   f"{hot_guard:.2%}",
                   match=0.01 < hot_guard < 0.15,
                   note="exceeds a 5 % band: calibrate at temperature"),
        Comparison("cold-side NDF", "-", round(cold_ndf, 4),
                   match=True),
    ]
    report = "\n".join([
        banner("EXTENSION: monitor temperature drift"),
        format_table(["temperature", "curve-3 height @ x=0.25 V",
                      "drift"], rows),
        "",
        comparison_table(comparisons),
        "",
        "Finding: an uncompensated monitor at the far end of the "
        "industrial range consumes MORE than a 5 % f0 tolerance band "
        "-- golden signatures must be calibrated at the test-floor "
        "temperature (or the biases re-trimmed).  The symmetric "
        "curve 6 self-compensates by construction.",
    ])
    report_writer("temperature_drift", report)

    assert hot_ndf > 0.0
    assert 0.01 < hot_guard < 0.15
