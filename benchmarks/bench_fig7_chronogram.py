"""FIG7 -- signature chronograms and the Hamming distance track.

Paper Fig. 7: the decimal-coded zone staircases of the golden and
defective (+10 % f0) signatures over the 200 us period, the Hamming
chronogram below, the headline NDF = 0.1021, and a distance-2 event
where the defective trace skips a zone sequence.
"""


from repro.analysis import (
    Comparison,
    ascii_chronogram,
    banner,
    build_chronogram,
    comparison_table,
    skipped_zone_events,
)
from repro.analysis.reporting import close
from repro.paper import FIG7_NDF_10PCT


def test_fig7_chronogram(benchmark, bench_setup, golden_signature,
                         report_writer):
    defective_cut = bench_setup.deviated_filter(0.10)
    defective = benchmark(bench_setup.tester.signature_of, defective_cut)

    data = build_chronogram(defective, golden_signature)
    events = skipped_zone_events(defective, golden_signature)

    event_lines = [
        f"  [{e['start'] * 1e6:6.1f}, {e['end'] * 1e6:6.1f}] us: "
        f"observed {e['observed']} vs golden {e['golden']} "
        f"(dH = {e['hamming']})"
        for e in events
    ]
    comparisons = [
        Comparison("period (us)", 200.0, data.period * 1e6,
                   match=abs(data.period - 200e-6) < 1e-9),
        Comparison("NDF (+10 % f0)", FIG7_NDF_10PCT, round(data.ndf, 4),
                   match=close(data.ndf, FIG7_NDF_10PCT, rel_tol=0.1),
                   note="paper Fig. 7"),
        Comparison("max Hamming distance", 2, data.max_hamming(),
                   match=data.max_hamming() == 2,
                   note="skipped-zone event"),
        Comparison("distance-2 events", ">= 1", len(events),
                   match=len(events) >= 1),
    ]
    report = "\n".join([
        banner("FIG7: chronogram of digital signatures"),
        "Staircases (golden '.', observed 'o', overlap '#'):",
        ascii_chronogram(data, width=100, height=16),
        "",
        "Skipped-zone (Hamming >= 2) events:",
        *event_lines,
        "",
        comparison_table(comparisons),
    ])
    report_writer("fig7_chronogram", report)

    assert close(data.ndf, FIG7_NDF_10PCT, rel_tol=0.1)
    assert data.max_hamming() == 2
    assert events
