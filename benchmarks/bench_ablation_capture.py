"""XTRA-B -- ablation: asynchronous capture quantization (Fig. 5).

The Fig. 5 capture circuit measures dwell times with an m-bit counter
on a master clock.  This ablation sweeps the clock frequency and the
counter width and reports the NDF error introduced by quantization
relative to the ideal (continuous-time) capture -- the design guidance
a monitor integrator needs when sizing the capture block.
"""


from repro.analysis import Comparison, banner, comparison_table, format_table
from repro.core.capture import AsyncCapture, CaptureConfig
from repro.core.ndf import ndf


def test_capture_quantization_ablation(benchmark, bench_setup,
                                       golden_signature, report_writer):
    tester = bench_setup.tester
    defective_trace = tester.trace_of(bench_setup.deviated_filter(0.10))
    golden_trace = tester.trace_of(bench_setup.golden_filter())
    ideal_defective = tester.signature_of(bench_setup.deviated_filter(0.10))
    ideal_ndf = ndf(ideal_defective, golden_signature)

    def quantized_ndf(clock_hz, bits):
        capture = AsyncCapture(bench_setup.encoder,
                               CaptureConfig(clock_hz, bits))
        sig_g = capture.capture(golden_trace)
        sig_d = capture.capture(defective_trace)
        return ndf(sig_d, sig_g)

    rows = []
    errors = {}
    for clock in (1e6, 3e6, 10e6, 30e6, 100e6):
        value = quantized_ndf(clock, 16)
        errors[clock] = abs(value - ideal_ndf)
        rows.append([f"{clock / 1e6:.0f} MHz", 16, round(value, 4),
                     f"{errors[clock]:.4f}",
                     f"{int(round(200e-6 * clock))} ticks/period"])
    # Counter-width row: a narrow counter saturates on long dwells,
    # corrupting the reported period -- the NDF comparison is then
    # ill-defined.  That failure mode is the sizing rule this ablation
    # documents: 2^m ticks must cover the longest dwell.
    try:
        narrow = quantized_ndf(10e6, 8)
        narrow_note = "saturating dwells"
        narrow_cell = round(narrow, 4)
    except ValueError:
        narrow_note = "REJECTED: saturated dwells corrupt the period"
        narrow_cell = "-"
    rows.append(["10 MHz", 8, narrow_cell, "-", narrow_note])

    benchmark(quantized_ndf, 10e6, 16)

    table = format_table(
        ["clock", "bits", "NDF(+10 %)", "|error| vs ideal", "note"], rows)
    comparisons = [
        Comparison("ideal NDF", "-", round(ideal_ndf, 4), match=True),
        Comparison("10 MHz/16-bit error", "< 1 % of NDF",
                   f"{errors[10e6]:.5f}",
                   match=errors[10e6] < 0.01 * max(ideal_ndf, 1e-9)),
        Comparison("error shrinks with clock", "monotone trend",
                   " > ".join(f"{errors[c]:.5f}"
                              for c in (1e6, 10e6, 100e6)),
                   match=errors[1e6] > errors[100e6]),
    ]
    report = "\n".join([
        banner("ABLATION: capture clock / counter width (Fig. 5)"),
        table,
        "",
        comparison_table(comparisons),
    ])
    report_writer("ablation_capture", report)

    assert errors[10e6] < 0.01 * ideal_ndf
    assert errors[1e6] > errors[100e6]
