"""XTRA (extension) -- production economics: yield loss vs test escapes.

The paper builds the decision band from the Fig. 8 sweep; production
adds a process-spread CUT population.  This benchmark measures a
population of Biquads (sigma(f0) = 3 %), sweeps the NDF threshold and
reports the yield-loss/escape trade-off, including the cost-optimal
threshold under asymmetric economics (an escape costs 10x an overkill).
"""

import numpy as np

from repro.analysis import (
    Comparison,
    CutPopulation,
    banner,
    comparison_table,
    format_table,
    optimal_threshold,
    roc_curve,
    yield_escape_analysis,
)


def test_yield_and_escapes(benchmark, bench_setup, report_writer):
    tolerance = 0.05
    population = CutPopulation(bench_setup.golden_spec, sigma_f0=0.03,
                               rng=7)
    units = benchmark(population.measure, bench_setup.tester, 60)

    sweep_band = bench_setup.fig8_sweep(
        np.linspace(-0.10, 0.10, 9)).band_for_tolerance(tolerance)
    paper_style = yield_escape_analysis(units, sweep_band.threshold,
                                        tolerance)
    best = optimal_threshold(units, tolerance, escape_cost=10.0)

    rows = []
    for report in roc_curve(units, tolerance,
                            thresholds=np.linspace(0.01, 0.09, 9)):
        rows.append([f"{report.threshold:.3f}", report.true_pass,
                     report.true_fail, report.yield_loss,
                     report.escapes])
    table = format_table(
        ["threshold", "true pass", "true fail", "yield loss", "escapes"],
        rows)
    comparisons = [
        Comparison("sweep-derived threshold", "from Fig. 8 band",
                   f"{sweep_band.threshold:.4f} -> "
                   f"{paper_style.yield_loss} overkill, "
                   f"{paper_style.escapes} escapes", match=True),
        Comparison("cost-optimal threshold", "near the sweep threshold "
                   "(the NDF orders units well)",
                   f"{best.threshold:.4f}",
                   match=abs(best.threshold - sweep_band.threshold)
                   < 0.03),
        Comparison("escape rate at optimum", "low",
                   f"{best.escape_rate:.0%}",
                   match=best.escape_rate <= 0.25),
    ]
    report = "\n".join([
        banner("EXTENSION: yield loss vs test escapes (60-unit MC)"),
        table,
        "",
        comparison_table(comparisons),
    ])
    report_writer("yield_escapes", report)

    assert paper_style.total == 60
    assert abs(best.threshold - sweep_band.threshold) < 0.03
