"""XTRA (extension) -- production economics: yield loss vs test escapes.

The paper builds the decision band from the Fig. 8 sweep; production
adds a process-spread CUT population.  This benchmark measures a
population of Biquads (sigma(f0) = 3 %) through the batched campaign
engine, sweeps the NDF threshold and reports the yield-loss/escape
trade-off, including the cost-optimal threshold under asymmetric
economics (an escape costs 10x an overkill).
"""

import numpy as np

from repro.analysis import (
    Comparison,
    CutPopulation,
    banner,
    comparison_table,
    format_table,
    optimal_threshold,
    roc_curve,
)
from repro.campaign import GoldenCache


def test_yield_and_escapes(benchmark, bench_setup, report_writer):
    tolerance = 0.05
    engine = bench_setup.campaign_engine(tolerance=tolerance,
                                         cache=GoldenCache())
    population = CutPopulation(bench_setup.golden_spec, sigma_f0=0.03,
                               rng=7)
    # Draw once (the benchmark fixture re-runs the measurement only).
    dies = population.spec_population(60)

    result = benchmark(engine.run, dies, "auto")
    units = result.to_units()

    sweep_band = engine.band(tolerance)
    paper_style = result.yield_report(tolerance, sweep_band.threshold)
    best = optimal_threshold(units, tolerance, escape_cost=10.0)

    rows = []
    for report in roc_curve(units, tolerance,
                            thresholds=np.linspace(0.01, 0.09, 9)):
        rows.append([f"{report.threshold:.3f}", report.true_pass,
                     report.true_fail, report.yield_loss,
                     report.escapes])
    table = format_table(
        ["threshold", "true pass", "true fail", "yield loss", "escapes"],
        rows)
    comparisons = [
        Comparison("sweep-derived threshold", "from Fig. 8 band",
                   f"{sweep_band.threshold:.4f} -> "
                   f"{paper_style.yield_loss} overkill, "
                   f"{paper_style.escapes} escapes", match=True),
        Comparison("cost-optimal threshold", "near the sweep threshold "
                   "(the NDF orders units well)",
                   f"{best.threshold:.4f}",
                   match=abs(best.threshold - sweep_band.threshold)
                   < 0.03),
        Comparison("escape rate at optimum", "low",
                   f"{best.escape_rate:.0%}",
                   match=best.escape_rate <= 0.25),
    ]
    report = "\n".join([
        banner("EXTENSION: yield loss vs test escapes (60-unit MC "
               "campaign)"),
        table,
        "",
        comparison_table(comparisons),
    ])
    report_writer("yield_escapes", report)

    assert paper_style.total == 60
    assert abs(best.threshold - sweep_band.threshold) < 0.03
