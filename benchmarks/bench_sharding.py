"""Sharded campaign coordinator: scaling, overhead, bit-identity.

Proofs for the shard layer (PR 9):

* **bit-identity at every width** -- ``run_sharded`` over shards in
  {1, 2, 4} returns NDF/verdict/deviation/label vectors byte-for-byte
  equal to the monolithic streamed campaign over the same fleet;
* **1-shard overhead gate** -- a single-shard campaign is the
  streamed campaign plus one worker process; its wall-clock must stay
  within a generous factor of the streamed reference plus a fixed
  worker-startup allowance (interpreter boot + imports dominate small
  fleets);
* **scaling** -- per-shard worker timings, merge-stage timing and
  end-to-end wall-clock per shard count land in the machine-readable
  ``BENCH_9.json`` artifact.  The >= 2x speedup assertion at 4 shards
  only arms on full-sized fleets with >= 4 physical cores
  (``os.cpu_count()`` is recorded in the artifact): on a core-limited
  box the artifact *documents the measured ceiling* instead --
  sharding cannot beat the monolithic run without cores to run the
  workers on, and the committed baseline says exactly what was
  measured where.

PR 10 adds the transport comparison:

* **socket-vs-pipe overhead gate** -- the same fleet run through
  pipe-carried workers (coordinator-spawned, stdio) and through
  TCP-carried workers (``repro shard-worker --connect`` over
  loopback, checkpoints shipped inline as base64) must merge
  bit-identical to the monolithic run on both carriers, and the TCP
  wall-clock must stay within a factor of the pipe wall-clock plus a
  dial-in allowance.  The per-direction ``shard_bytes_total`` deltas
  for the socket run land in ``BENCH_10.json`` so protocol-volume
  regressions show up in the committed baseline.

Sizes honour ``SHARD_BENCH_N`` (fleet, default 20000),
``SHARD_BENCH_CHUNK`` (worker chunk, default 512),
``SHARD_BENCH_SHARDS`` (comma list, default ``1,2,4``),
``SHARD_BENCH_SAMPLES`` (default 512), ``SHARD_BENCH_TOLERANCE``
(1-shard overhead factor, default 1.5) and ``SHARD_BENCH_STARTUP_S``
(startup allowance seconds, default 10) so the CI smoke job can run a
reduced fleet.  The transport gate additionally honours
``SHARD_BENCH_TCP_TOLERANCE`` (socket-vs-pipe factor, default 1.5).
"""

from __future__ import annotations

import json
import os
import pathlib
import socket
import subprocess
import sys
import time

import numpy as np

from repro.campaign import CampaignEngine, stream_montecarlo_dies
from repro.monitor.configurations import table1_encoder
from repro.obs import Tracer, install_tracer, uninstall_tracer
from repro.obs.metrics import default_registry
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS
from repro.shard import MonteCarloFleet

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

SHARD_N = int(os.environ.get("SHARD_BENCH_N", "20000"))
SHARD_CHUNK = int(os.environ.get("SHARD_BENCH_CHUNK", "512"))
SHARD_COUNTS = [int(s) for s in os.environ.get(
    "SHARD_BENCH_SHARDS", "1,2,4").split(",")]
SAMPLES = int(os.environ.get("SHARD_BENCH_SAMPLES", "512"))
TOLERANCE = float(os.environ.get("SHARD_BENCH_TOLERANCE", "1.5"))
STARTUP_S = float(os.environ.get("SHARD_BENCH_STARTUP_S", "10"))
TCP_TOLERANCE = float(os.environ.get("SHARD_BENCH_TCP_TOLERANCE",
                                     "1.5"))
SIGMA = 0.03
SEED = 0

#: The speedup assertion needs real parallel hardware and a fleet
#: large enough that compute dwarfs worker startup.
SPEEDUP_MIN_DIES = 5000
SPEEDUP_FACTOR = 2.0


def _assert_bit_identical(result, reference) -> None:
    np.testing.assert_array_equal(result.ndfs, reference.ndfs)
    np.testing.assert_array_equal(result.verdicts, reference.verdicts)
    np.testing.assert_array_equal(result.f0_deviations,
                                  reference.f0_deviations)
    np.testing.assert_array_equal(result.q_deviations,
                                  reference.q_deviations)
    assert list(result.labels) == list(reference.labels)
    assert result.threshold == reference.threshold


def test_sharded_campaign_scaling():
    engine = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=SAMPLES)
    engine.golden()
    engine.band()  # calibrate outside every timed window

    start = time.perf_counter()
    reference = engine.run_stream(
        stream_montecarlo_dies(PAPER_BIQUAD, SHARD_N,
                               chunk_size=SHARD_CHUNK,
                               sigma_f0=SIGMA, seed=SEED),
        band="auto")
    stream_s = time.perf_counter() - start

    fleet = MonteCarloFleet(PAPER_BIQUAD, SHARD_N, sigma_f0=SIGMA,
                            seed=SEED, chunk_size=SHARD_CHUNK)
    runs = {}
    for shards in SHARD_COUNTS:
        tracer = Tracer()
        install_tracer(tracer)
        start = time.perf_counter()
        try:
            result = engine.run_sharded(fleet, shards=shards,
                                        band="auto", heartbeat=30.0)
        finally:
            uninstall_tracer()
        wall = time.perf_counter() - start
        _assert_bit_identical(result, reference)
        per_shard = {
            int(record.attributes["shard"]): record.duration
            for record in tracer.records()
            if record.name == "shard.worker.run"}
        assert len(per_shard) == result.shard_stats["planned"]
        runs[shards] = {
            "wall_s": wall,
            "per_shard_s": {str(k): per_shard[k]
                            for k in sorted(per_shard)},
            "merge_s": result.shard_stats["merge_seconds"],
            "dispatched": result.shard_stats["dispatched"],
            "reassigned": result.shard_stats["reassigned"],
        }

    cpu_count = os.cpu_count() or 1
    one_shard = runs[min(SHARD_COUNTS)]["wall_s"]
    widest = max(SHARD_COUNTS)
    speedup = one_shard / runs[widest]["wall_s"]
    core_limited = cpu_count < widest or SHARD_N < SPEEDUP_MIN_DIES
    payload = {
        "pr": 9,
        "dies": SHARD_N,
        "chunk": SHARD_CHUNK,
        "samples_per_period": SAMPLES,
        "cpu_count": cpu_count,
        "bit_identical": True,
        "stream_reference_s": stream_s,
        "shards": {str(k): v for k, v in sorted(runs.items())},
        "speedup_widest_vs_1": speedup,
        "core_limited": core_limited,
        "notes": (
            f"measured ceiling on a {cpu_count}-core box: "
            f"{widest}-shard speedup {speedup:.2f}x vs 1 shard; "
            "subprocess workers time-slice one core, so wall-clock "
            "cannot improve until cores >= shards (the >= "
            f"{SPEEDUP_FACTOR:g}x gate arms at cpu_count >= "
            f"{widest} and N >= {SPEEDUP_MIN_DIES})."
            if core_limited else
            f"{widest}-shard speedup {speedup:.2f}x vs 1 shard on "
            f"{cpu_count} cores."),
    }
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / "BENCH_9.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n")

    lines = [f"sharded campaign: {SHARD_N} MC dies, chunk "
             f"{SHARD_CHUNK}, {SAMPLES} samples, "
             f"{cpu_count} core(s)",
             f"  streamed reference: {stream_s:8.3f} s"]
    for shards, row in sorted(runs.items()):
        lines.append(
            f"  shards={shards}: {row['wall_s']:8.3f} s wall, merge "
            f"{row['merge_s'] * 1e3:7.2f} ms, per-shard "
            + "/".join(f"{s:.2f}" for s in
                       row["per_shard_s"].values()) + " s")
    lines.append(f"  {payload['notes']}")
    print("\n" + "\n".join(lines) + f"\n[report saved to {path}]")

    # Gate 1: a single shard is the streamed campaign plus one
    # subprocess -- overhead must stay bounded.
    assert one_shard <= stream_s * TOLERANCE + STARTUP_S, (
        f"1-shard campaign took {one_shard:.2f}s vs streamed "
        f"{stream_s:.2f}s (allowed factor {TOLERANCE} + "
        f"{STARTUP_S}s startup)")
    # Gate 2: real speedup where the hardware can express it;
    # documented ceiling otherwise (the artifact carries both).
    if not core_limited:
        assert speedup >= SPEEDUP_FACTOR, (
            f"{widest} shards on {cpu_count} cores gave only "
            f"{speedup:.2f}x over 1 shard")


def _free_port() -> int:
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    return port


def _bytes_metric(direction: str) -> float:
    return default_registry().counter(
        "shard_bytes_total", direction=direction,
        transport="socket").value


def test_socket_vs_pipe_transport_overhead():
    """TCP-carried workers vs pipe-carried workers, same fleet.

    The socket carrier pays for framing, loopback round trips and
    inline base64 checkpoint shipping; the gate bounds that cost
    against the pipe run and the artifact records exactly how many
    protocol bytes travelled each way.
    """
    engine = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=SAMPLES)
    engine.golden()
    engine.band()

    reference = engine.run_stream(
        stream_montecarlo_dies(PAPER_BIQUAD, SHARD_N,
                               chunk_size=SHARD_CHUNK,
                               sigma_f0=SIGMA, seed=SEED),
        band="auto")
    fleet = MonteCarloFleet(PAPER_BIQUAD, SHARD_N, sigma_f0=SIGMA,
                            seed=SEED, chunk_size=SHARD_CHUNK)

    start = time.perf_counter()
    pipe_result = engine.run_sharded(fleet, shards=2, band="auto",
                                     heartbeat=30.0)
    pipe_s = time.perf_counter() - start
    _assert_bit_identical(pipe_result, reference)

    # TCP run: pick a port, start the workers dialling it (they retry
    # until the coordinator's listener is up), then run the campaign.
    port = _free_port()
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_SHARD_WORKER_FAULTS", None)
    src = str(pathlib.Path(__file__).parent.parent / "src")
    env["PYTHONPATH"] = src + (
        os.pathsep + env["PYTHONPATH"]
        if env.get("PYTHONPATH") else "")
    sent_before = _bytes_metric("sent")
    received_before = _bytes_metric("received")
    workers = [
        subprocess.Popen(
            [sys.executable, "-m", "repro", "shard-worker",
             "--connect", f"127.0.0.1:{port}",
             "--retries", "120", "--retry-delay", "0.25"],
            env=env)
        for _ in range(2)]
    try:
        start = time.perf_counter()
        socket_result = engine.run_sharded(
            fleet, shards=2, band="auto", heartbeat=30.0,
            listen=f"127.0.0.1:{port}")
        socket_s = time.perf_counter() - start
    finally:
        for worker in workers:
            try:
                worker.wait(timeout=30)
            except subprocess.TimeoutExpired:
                worker.kill()
    _assert_bit_identical(socket_result, reference)
    assert socket_result.executor == "sharded-tcp[2]"
    sent = _bytes_metric("sent") - sent_before
    received = _bytes_metric("received") - received_before
    assert sent > 0 and received > 0

    payload = {
        "pr": 10,
        "dies": SHARD_N,
        "chunk": SHARD_CHUNK,
        "samples_per_period": SAMPLES,
        "cpu_count": os.cpu_count() or 1,
        "workers": 2,
        "shards": 2,
        "bit_identical": True,
        "pipe_wall_s": pipe_s,
        "socket_wall_s": socket_s,
        "socket_vs_pipe": socket_s / pipe_s,
        "socket_bytes_sent": sent,
        "socket_bytes_received": received,
        "tolerance_factor": TCP_TOLERANCE,
        "startup_allowance_s": STARTUP_S,
        "notes": (
            f"loopback TCP carried {sent / 1e3:.1f} kB out / "
            f"{received / 1e3:.1f} kB back (checkpoints inline as "
            f"base64 npz) at {socket_s / pipe_s:.2f}x the pipe "
            "wall-clock; both carriers merged bit-identical to the "
            "monolithic run."),
    }
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / "BENCH_10.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n")
    print(f"\nsocket vs pipe: {SHARD_N} MC dies, 2 shards, 2 workers"
          f"\n  pipe:   {pipe_s:8.3f} s wall"
          f"\n  socket: {socket_s:8.3f} s wall "
          f"({socket_s / pipe_s:.2f}x, {sent} B out, "
          f"{received} B back)"
          f"\n[report saved to {path}]")

    # Gate: the socket carrier may pay framing + dial-in, never a
    # different complexity class.
    assert socket_s <= pipe_s * TCP_TOLERANCE + STARTUP_S, (
        f"TCP campaign took {socket_s:.2f}s vs pipe {pipe_s:.2f}s "
        f"(allowed factor {TCP_TOLERANCE} + {STARTUP_S}s dial-in)")
