"""XTRA (extension) -- monitor process variation eats test margin.

The paper validates the monitor's own variability against Monte Carlo
but tests the CUT with a *typical* monitor.  This extension quantifies
the consequence for production: a fault-free CUT measured by a
process-varied monitor bank shows a non-zero NDF against the typical
bank's golden signature; mapped through the Fig. 8 sweep, that NDF is
an *equivalent f0 guard band* that must be budgeted when setting the
tolerance threshold.

Both studies run through the batched campaign engine
(:mod:`repro.campaign`): the golden trace is computed once and
re-encoded per varied bank, instead of re-running the full per-die
capture loop.
"""

import numpy as np

from repro.analysis import (
    Comparison,
    banner,
    comparison_table,
    format_table,
)
from repro.campaign import (
    GoldenCache,
    fault_dictionary,
    montecarlo_monitor_banks,
)
from repro.devices.process import MonteCarloSampler
from repro.monitor.configurations import table1_bank

NUM_MONITOR_DIES = 40


def test_monitor_variation_guard_band(benchmark, bench_setup,
                                      report_writer):
    engine = bench_setup.campaign_engine(samples_per_period=1024,
                                         cache=GoldenCache())
    population = montecarlo_monitor_banks(
        table1_bank(), NUM_MONITOR_DIES,
        sampler=MonteCarloSampler(rng=0))

    result = benchmark(engine.run, population, None)
    values = result.ndfs

    sweep = engine.calibration(np.linspace(-0.1, 0.1, 9))
    # Convert the 95th-percentile NDF into an equivalent f0 deviation.
    p95 = float(np.percentile(values, 95))
    __, guard = sweep.detectable_deviation(p95)

    rows = [["dies", str(result.num_dies)],
            ["mean NDF (fault-free CUT)", f"{np.mean(values):.4f}"],
            ["p95 NDF", f"{p95:.4f}"],
            ["equivalent f0 guard band", f"{guard:.2%}"],
            ["throughput", f"{result.dies_per_second():,.0f} dies/s"]]
    comparisons = [
        Comparison("fault-free NDF under monitor MC", "> 0 (margin loss)",
                   f"mean {np.mean(values):.4f}",
                   match=float(np.mean(values)) > 0.0),
        Comparison("guard band", "real but bounded (< 10 % f0)",
                   f"{guard:.2%}", match=0.0 < guard < 0.10),
    ]
    report = "\n".join([
        banner("EXTENSION: monitor process variation -> guard band"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("process_variation", report)

    assert np.all(values >= 0)
    assert float(np.mean(values)) > 0.0
    assert 0.0 < guard < 0.10


def test_catastrophic_fault_coverage(benchmark, bench_setup,
                                     report_writer):
    """Extension: the open/short universe of the structural Biquad.

    The paper motivates signatures with catastrophic-defect detection
    ("a large set of parametric and catastrophic defects can be
    detected"); this benchmark runs every single open/short through the
    campaign engine as one fault-dictionary population and reports the
    coverage at the 5 % tolerance band.
    """
    from repro.filters import TowThomasValues

    engine = bench_setup.campaign_engine(cache=GoldenCache())
    values = TowThomasValues.from_spec(bench_setup.golden_spec)
    population, faults = fault_dictionary(values)

    result = benchmark(engine.run, population, "auto")

    rows = [[fault.label, round(float(v), 4),
             "escape" if passed else "DETECTED"]
            for fault, v, passed in zip(faults, result.ndfs,
                                        result.verdicts)]
    coverage = result.fail_count / result.num_dies
    comparisons = [
        Comparison("catastrophic coverage",
                   "high ('large set ... detected')",
                   f"{coverage:.0%} ({result.fail_count}"
                   f"/{result.num_dies})", match=coverage >= 0.85),
    ]
    report = "\n".join([
        banner("EXTENSION: catastrophic fault coverage (opens/shorts)"),
        format_table(["fault", "NDF", "verdict"], rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("catastrophic_coverage", report)

    assert coverage >= 0.85
