"""XTRA (extension) -- monitor process variation eats test margin.

The paper validates the monitor's own variability against Monte Carlo
but tests the CUT with a *typical* monitor.  This extension quantifies
the consequence for production: a fault-free CUT measured by a
process-varied monitor bank shows a non-zero NDF; mapped through the
Fig. 8 sweep, that NDF is an *equivalent f0 guard band* that must be
budgeted when setting the tolerance threshold.
"""

import numpy as np

from repro.analysis import (
    Comparison,
    banner,
    comparison_table,
    format_table,
    process_variation_study,
)
from repro.core.testflow import SignatureTester
from repro.devices.process import MonteCarloSampler
from repro.filters.biquad import BiquadFilter
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS


def test_monitor_variation_guard_band(benchmark, bench_setup,
                                      report_writer):
    sampler = MonteCarloSampler(rng=0)

    def tester_factory(encoder):
        return SignatureTester(encoder, PAPER_STIMULUS,
                               BiquadFilter(PAPER_BIQUAD),
                               samples_per_period=1024)

    values = benchmark(
        process_variation_study, bench_setup.encoder.boundaries,
        tester_factory, bench_setup.golden_filter(), sampler, 10)

    sweep = bench_setup.fig8_sweep(np.linspace(-0.1, 0.1, 9))
    # Convert the 95th-percentile NDF into an equivalent f0 deviation.
    p95 = float(np.percentile(values, 95))
    __, guard = sweep.detectable_deviation(p95)

    rows = [["mean NDF (fault-free CUT)", f"{np.mean(values):.4f}"],
            ["p95 NDF", f"{p95:.4f}"],
            ["equivalent f0 guard band", f"{guard:.2%}"]]
    comparisons = [
        Comparison("fault-free NDF under monitor MC", "> 0 (margin loss)",
                   f"mean {np.mean(values):.4f}",
                   match=float(np.mean(values)) > 0.0),
        Comparison("guard band", "small vs 5 % tolerance",
                   f"{guard:.2%}", match=guard < 0.05),
    ]
    report = "\n".join([
        banner("EXTENSION: monitor process variation -> guard band"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("process_variation", report)

    assert np.all(values >= 0)
    assert guard < 0.05


def test_catastrophic_fault_coverage(benchmark, bench_setup,
                                     report_writer):
    """Extension: the open/short universe of the structural Biquad.

    The paper motivates signatures with catastrophic-defect detection
    ("a large set of parametric and catastrophic defects can be
    detected"); this benchmark runs every single open/short through the
    flow and reports the coverage at the 5 % tolerance band.
    """
    from repro.analysis import catastrophic_coverage
    from repro.filters import TowThomasValues

    values = TowThomasValues.from_spec(bench_setup.golden_spec)
    band = bench_setup.fig8_sweep(
        np.linspace(-0.1, 0.1, 9)).band_for_tolerance(0.05)
    rows_data = benchmark(catastrophic_coverage, bench_setup.tester,
                          values, band)

    rows = [[r.fault.label, round(r.ndf, 4),
             "DETECTED" if r.detected else "escape"]
            for r in rows_data]
    coverage = sum(r.detected for r in rows_data) / len(rows_data)
    comparisons = [
        Comparison("catastrophic coverage",
                   "high ('large set ... detected')",
                   f"{coverage:.0%} ({sum(r.detected for r in rows_data)}"
                   f"/{len(rows_data)})", match=coverage >= 0.85),
    ]
    report = "\n".join([
        banner("EXTENSION: catastrophic fault coverage (opens/shorts)"),
        format_table(["fault", "NDF", "verdict"], rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("catastrophic_coverage", report)

    assert coverage >= 0.85
