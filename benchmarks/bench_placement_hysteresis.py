"""XTRA (extensions) -- bias placement optimization and hysteresis.

Two design-space studies the paper's conclusions invite:

* "Zone boundaries can be adjusted by changing the biasing voltages" --
  the placement benchmark tunes the three arc biases (Table I rows 3-5)
  to maximize NDF response at the +-5 % tolerance edge;
* the fabricated comparator's cross-coupled pair adds hysteresis -- the
  hysteresis benchmark quantifies chatter suppression under the paper's
  noise and the (second-order) sensitivity cost.
"""


from repro.analysis import Comparison, banner, comparison_table, format_table
from repro.core import HystereticEncoder, capture_signature, ndf
from repro.core.testflow import SignatureTester
from repro.filters.biquad import BiquadFilter
from repro.monitor import BiasPlacementOptimizer, distinct_bias_values, table1_config
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS
from repro.signals import NoiseModel
from repro.signals.lissajous import LissajousTrace


def _tester_factory(encoder):
    return SignatureTester(encoder, PAPER_STIMULUS,
                           BiquadFilter(PAPER_BIQUAD),
                           samples_per_period=1024)


def _cut_factory(dev):
    return BiquadFilter(PAPER_BIQUAD.with_f0_deviation(dev))


def test_bias_placement_optimization(benchmark, report_writer):
    configs = [table1_config(r) for r in (3, 4, 5)]
    optimizer = BiasPlacementOptimizer(configs, _tester_factory,
                                       _cut_factory,
                                       target_deviation=0.05)
    result = benchmark.pedantic(optimizer.optimize, kwargs={
        "max_iterations": 20}, rounds=1, iterations=1)

    rows = [[c.name,
             "/".join(f"{v:.2f}" for v in distinct_bias_values(o)),
             "/".join(f"{v:.2f}" for v in distinct_bias_values(c))]
            for o, c in zip(configs, result.configs)]
    comparisons = [
        Comparison("objective (mean NDF at +-5 %)",
                   f"start {result.initial_objective:.4f}",
                   f"optimized {result.optimized_objective:.4f}",
                   match=result.optimized_objective
                   >= result.initial_objective),
        Comparison("improvement", ">= 0 (never regress)",
                   f"{result.improvement:+.1%}",
                   match=result.improvement >= 0.0),
    ]
    report = "\n".join([
        banner("EXTENSION: bias placement optimization (arcs 3-5)"),
        format_table(["monitor", "Table I biases (V)",
                      "optimized biases (V)"], rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("placement_optimization", report)

    assert result.optimized_objective >= result.initial_objective


def test_hysteresis_chatter_study(benchmark, bench_setup, report_writer):
    tester = bench_setup.tester
    golden_trace = tester.trace_of(bench_setup.golden_filter())
    noise = NoiseModel(0.015, rng=9)
    x, y = noise.corrupt_pair(golden_trace.x, golden_trace.y)
    noisy = LissajousTrace(x, y, golden_trace.period)

    clean_len = len(capture_signature(bench_setup.encoder, golden_trace,
                                      refine=False))
    memoryless_len = len(capture_signature(bench_setup.encoder, noisy,
                                           refine=False))

    rows = []
    for margin in (0.002, 0.005, 0.01, 0.02):
        hyst = HystereticEncoder(bench_setup.encoder, margin)
        noisy_len = len(benchmark.pedantic(
            hyst.capture, args=(noisy,), rounds=1, iterations=1)) \
            if margin == 0.005 else len(hyst.capture(noisy))
        sig_g = hyst.capture(golden_trace)
        sig_d = hyst.capture(
            tester.trace_of(bench_setup.deviated_filter(0.10)))
        rows.append([f"{margin * 1e3:.0f} mV", noisy_len,
                     round(ndf(sig_d, sig_g), 4)])

    table = format_table(
        ["hysteresis", "noisy transitions/period",
         "clean NDF(+10 %)"], rows)
    comparisons = [
        Comparison("noise-free transitions", clean_len, clean_len,
                   match=True),
        Comparison("memoryless noisy transitions",
                   "hundreds (chatter)", memoryless_len,
                   match=memoryless_len > 5 * clean_len),
        Comparison("hysteresis collapses chatter",
                   f"towards {clean_len}", rows[-1][1],
                   match=int(rows[-1][1]) < 3 * clean_len),
        Comparison("sensitivity preserved", "NDF(+10 %) ~ 0.10",
                   rows[1][2], match=abs(float(rows[1][2]) - 0.10)
                   < 0.02),
    ]
    report = "\n".join([
        banner("EXTENSION: comparator hysteresis vs noise chatter"),
        table,
        "",
        comparison_table(comparisons),
    ])
    report_writer("hysteresis_noise", report)

    assert memoryless_len > 5 * clean_len
    assert int(rows[-1][1]) < 3 * clean_len
