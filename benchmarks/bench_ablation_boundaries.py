"""XTRA-A -- ablation: nonlinear monitor curves vs straight-line zoning.

The paper's Section II motivates nonlinear boundaries by monitor
simplicity; prior work ([12], [13]) used straight lines.  This ablation
holds the test flow fixed and swaps the boundary family:

* the paper's six nonlinear monitor curves;
* their least-squares straight-line fits (best-effort linear monitor);
* a naive axis-parallel grid with the same number of comparators.

Reported: NDF sensitivity (slope of NDF vs |deviation|) and the NDF at
small deviations -- the quantity that decides how tight a tolerance the
method can test.
"""

import numpy as np

from repro.analysis import Comparison, banner, comparison_table, format_table
from repro.baselines import fitted_line_encoder, grid_line_encoder
from repro.core.testflow import SignatureTester
from repro.core.zones import ZoneEncoder
from repro.filters.biquad import BiquadFilter
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS


def _sweep(encoder, deviations):
    tester = SignatureTester(encoder, PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=2048)
    golden_spec = PAPER_BIQUAD

    def cut(dev):
        return BiquadFilter(golden_spec.with_f0_deviation(dev))

    return tester.sweep_with(deviations, cut)


def test_boundary_shape_ablation(benchmark, bench_setup, report_writer):
    deviations = [-0.10, -0.05, -0.02, 0.02, 0.05, 0.10]

    nonlinear = benchmark(_sweep, bench_setup.encoder, deviations)
    fitted = _sweep(fitted_line_encoder(bench_setup.encoder.boundaries),
                    deviations)
    grid = _sweep(grid_line_encoder(3, 3), deviations)

    def sensitivity(cal):
        """Mean NDF per unit |deviation| over the sweep."""
        mask = cal.deviations != 0
        return float(np.mean(cal.ndfs[mask]
                             / np.abs(cal.deviations[mask])))

    rows = []
    for name, cal in (("nonlinear (paper)", nonlinear),
                      ("fitted lines", fitted),
                      ("3x3 grid lines", grid)):
        rows.append([name, round(cal.ndf_at(0.02), 4),
                     round(cal.ndf_at(0.10), 4),
                     round(sensitivity(cal), 3)])
    table = format_table(
        ["boundary family", "NDF(2 %)", "NDF(10 %)", "NDF/|dev|"], rows)

    comparisons = [
        Comparison("nonlinear detects 2 %", "NDF > 0",
                   round(nonlinear.ndf_at(0.02), 4),
                   match=nonlinear.ndf_at(0.02) > 0.005),
        Comparison("fitted lines comparable", "same order of magnitude",
                   f"{fitted.ndf_at(0.10):.3f} vs "
                   f"{nonlinear.ndf_at(0.10):.3f}",
                   match=fitted.ndf_at(0.10)
                   > 0.3 * nonlinear.ndf_at(0.10),
                   note="lines work too; the paper's win is monitor area"),
        Comparison("grid is usable but coarser placed", "lower or similar"
                   " sensitivity", round(sensitivity(grid), 3),
                   match=True),
    ]
    report = "\n".join([
        banner("ABLATION: boundary shape (nonlinear vs straight lines)"),
        table,
        "",
        comparison_table(comparisons),
        "",
        "Note: the paper adopts nonlinear boundaries for *circuit* "
        "simplicity (a 4-input current comparator vs weighted adders); "
        "the metric-level sensitivity is comparable when line placement "
        "is fit fairly.",
    ])
    report_writer("ablation_boundaries", report)

    assert nonlinear.ndf_at(0.02) > 0.005
    assert nonlinear.ndf_at(0.10) > 0.05


def test_monitor_count_ablation(benchmark, bench_setup, report_writer):
    """How many monitors does the method need?

    The paper uses six; this ablation re-runs the f0 sweep with nested
    subsets of the Table I bank.  More monitors mean more boundary
    crossings per period and a smoother, steeper NDF ramp -- but even
    three arcs already detect the 2 % deviation.
    """
    from repro.monitor import table1_bank

    subsets = {
        "arcs only (3,4,5)": [3, 4, 5],
        "arcs + diagonal (3-6)": [3, 4, 5, 6],
        "full Table I (1-6)": [1, 2, 3, 4, 5, 6],
    }
    deviations = [-0.10, -0.02, 0.02, 0.10]
    results = {}
    for label, rows_sel in subsets.items():
        encoder = ZoneEncoder(table1_bank(rows=rows_sel))
        results[label] = benchmark.pedantic(
            _sweep, args=(encoder, deviations), rounds=1, iterations=1) \
            if label == "full Table I (1-6)" else _sweep(encoder,
                                                         deviations)

    rows = [[label, cal.ndf_at(0.02), cal.ndf_at(0.10)]
            for label, cal in results.items()]
    full = results["full Table I (1-6)"]
    three = results["arcs only (3,4,5)"]
    comparisons = [
        Comparison("3 arcs detect 2 %", "NDF > 0",
                   round(three.ndf_at(0.02), 4),
                   match=three.ndf_at(0.02) > 0.003),
        Comparison("six monitors steepest", "full bank >= subsets",
                   f"{full.ndf_at(0.10):.4f} vs "
                   f"{three.ndf_at(0.10):.4f}",
                   match=full.ndf_at(0.10) >= three.ndf_at(0.10) - 1e-6),
    ]
    report = "\n".join([
        banner("ABLATION: number of monitors"),
        format_table(["bank", "NDF(2 %)", "NDF(10 %)"], rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("ablation_monitor_count", report)

    assert three.ndf_at(0.02) > 0.003
    assert full.ndf_at(0.10) >= three.ndf_at(0.10) - 1e-6
