"""FIG8 -- NDF vs f0 deviation, PASS/FAIL bands and the noise study.

Paper Fig. 8: "The discrepancy factor increases almost linearly with
the amount of deviation and quite symmetrically with positive and
negative f0 parameter deviations"; the acceptance band on the NDF
implements the test decision; and with white noise of 3-sigma 0.015 V,
"deviations as low as 1 % in the natural frequency of the filter are
detected".
"""

import numpy as np

from repro.analysis import (
    Comparison,
    ascii_xy_plot,
    banner,
    comparison_table,
    format_table,
    noise_detection_study,
)
from repro.analysis.reporting import close
from repro.paper import noisy_paper_setup
from repro.signals.noise import NoiseModel


def test_fig8_ndf_sweep(benchmark, bench_setup, report_writer):
    deviations = np.linspace(-0.20, 0.20, 21)
    calibration = benchmark(bench_setup.fig8_sweep, deviations)

    r2_neg, r2_pos = calibration.linearity_r2()
    sym = calibration.symmetry_error()
    band = calibration.band_for_tolerance(0.05)

    sweep_rows = [[f"{d:+.0%}", round(v, 4)]
                  for d, v in zip(calibration.deviations,
                                  calibration.ndfs)]
    comparisons = [
        Comparison("NDF(+10 %)", "~0.10 (Fig. 8)",
                   round(calibration.ndf_at(0.10), 4),
                   match=close(calibration.ndf_at(0.10), 0.10, 0.15)),
        Comparison("NDF(+20 %)", "~0.19 (Fig. 8 right edge)",
                   round(calibration.ndf_at(0.20), 4),
                   match=close(calibration.ndf_at(0.20), 0.19, 0.2)),
        Comparison("NDF(-20 %)", "~0.19 (Fig. 8 left edge)",
                   round(calibration.ndf_at(-0.20), 4),
                   match=close(calibration.ndf_at(-0.20), 0.19, 0.35)),
        Comparison("almost linear", "yes",
                   f"R^2 = {r2_neg:.3f} / {r2_pos:.3f}",
                   match=min(r2_neg, r2_pos) > 0.97),
        Comparison("quite symmetric", "yes",
                   f"mean |NDF(+d) - NDF(-d)| = {sym:.4f}",
                   match=sym < 0.03),
        Comparison("PASS/FAIL band (5 % tol)", "threshold on NDF",
                   f"NDF <= {band.threshold:.4f}", match=True),
    ]
    report_lines = [
        banner("FIG8: normalized discrepancy factor vs f0 deviation"),
        ascii_xy_plot(calibration.deviations, calibration.ndfs,
                      width=72, height=20, x_label="f0 deviation",
                      y_label="NDF"),
        "",
        format_table(["deviation", "NDF"], sweep_rows),
        "",
        comparison_table(comparisons),
    ]
    report_writer("fig8_ndf_sweep", "\n".join(report_lines))

    assert close(calibration.ndf_at(0.10), 0.10, 0.15)
    assert min(r2_neg, r2_pos) > 0.97
    assert sym < 0.03


def test_fig8_noise_study(benchmark, report_writer):
    """Section IV-C: 1 % deviations detectable under the quoted noise."""
    bench = noisy_paper_setup(samples_per_period=4096)
    noise = NoiseModel(0.015, rng=5)

    study = benchmark(
        noise_detection_study, bench.tester, bench.golden_spec, noise,
        (-0.02, -0.01, 0.01, 0.02), 10)

    rates = study.detection_rates()
    rows = [["golden", f"{np.mean(study.golden_population):.4f}",
             f"{np.max(study.golden_population):.4f}",
             f"{study.false_alarm_rate():.0%}"]]
    for dev in sorted(study.deviation_populations):
        pop = study.deviation_populations[dev]
        rows.append([f"{dev:+.0%}", f"{np.mean(pop):.4f}",
                     f"{np.min(pop):.4f}", f"{rates[dev]:.0%}"])
    comparisons = [
        Comparison("noise model", "white, 3-sigma = 0.015 V",
                   "same + 200 kHz front-end pole", match=True,
                   note="see DESIGN.md"),
        Comparison("1 % deviation detected", "yes (paper)",
                   f"+1 %: {rates[0.01]:.0%}, -1 %: {rates[-0.01]:.0%}",
                   match=rates[0.01] >= 0.9 and rates[-0.01] >= 0.9,
                   note="single-shot rate vs a 3-sigma guard band"),
        Comparison("2 % deviation detected", "yes",
                   f"+2 %: {rates[0.02]:.0%}, -2 %: {rates[-0.02]:.0%}",
                   match=rates[0.02] == 1.0 and rates[-0.02] == 1.0),
        Comparison("false alarms", "low",
                   f"{study.false_alarm_rate():.0%}",
                   match=study.false_alarm_rate() <= 0.1),
    ]
    report = "\n".join([
        banner("FIG8 (noise study): detection under 3-sigma = 0.015 V"),
        format_table(["unit", "mean NDF", "min/max NDF", "FAIL rate"],
                     rows),
        f"decision threshold: NDF > {study.threshold:.4f}",
        "",
        comparison_table(comparisons),
    ])
    report_writer("fig8_noise_study", report)

    # The 3-sigma guard band over a 10-sample golden population leaves
    # a small tail at exactly +-1 %; >= 90 % single-shot detection (and
    # 100 % at +-2 %) reproduces the paper's "as low as 1 % detected".
    assert rates[0.01] >= 0.9
    assert rates[-0.01] >= 0.9
    assert rates[0.02] == 1.0
    assert rates[-0.02] == 1.0
    assert study.false_alarm_rate() <= 0.1
