"""TAB1 -- Table I: the six monitor input configurations.

Regenerates each configured monitor's control curve and verifies the
qualitative behaviour the paper attributes to each row:

* rows 1-2 (asymmetric widths, one signal per branch): positive-slope
  segments;
* rows 3-5 (equal widths, both signals on the left): negative-slope
  arcs ordered by their DC bias (0.3 < 0.55 < 0.75);
* row 6 (zero biases): the 45-degree line.
"""


from repro.analysis import Comparison, banner, comparison_table, format_table
from repro.monitor import characterize, diagonal_deviation, table1_monitor
from repro.monitor.configurations import TABLE1_ROWS


def test_table1_configurations(benchmark, report_writer):
    characterizations = benchmark(
        lambda: {row: characterize(table1_monitor(row))
                 for row in range(1, 7)})

    slope_words = {1: "positive", -1: "negative", 0: "mixed"}
    rows = []
    for row in range(1, 7):
        widths, hookups = TABLE1_ROWS[row]
        ch = characterizations[row]
        rows.append([
            f"curve {row}",
            "/".join(f"{int(w)}" for w in widths),
            ",".join(str(h) for h in hookups),
            slope_words[ch.slope_sign],
            f"{ch.coverage:.0%}",
            f"{ch.mean_slope:+.2f}",
        ])
    table = format_table(
        ["row", "widths (nm)", "V1..V4", "slope", "in-window", "dy/dx"],
        rows)

    arc_heights = {row: characterizations[row].crossing_at(0.25)
                   for row in (3, 4, 5)}
    diag_dev = diagonal_deviation(table1_monitor(6))
    comparisons = [
        Comparison("curves 1-2 slope", "positive",
                   slope_words[characterizations[1].slope_sign] + "/"
                   + slope_words[characterizations[2].slope_sign],
                   match=(characterizations[1].slope_sign == 1
                          and characterizations[2].slope_sign == 1)),
        Comparison("curves 3-5 slope", "negative",
                   "/".join(slope_words[characterizations[r].slope_sign]
                            for r in (3, 4, 5)),
                   match=all(characterizations[r].slope_sign == -1
                             for r in (3, 4, 5))),
        Comparison("arc order by bias", "curve4 < curve3 < curve5",
                   " < ".join(f"{arc_heights[r]:.2f}" for r in (4, 3, 5)),
                   match=arc_heights[4] < arc_heights[3] < arc_heights[5]),
        Comparison("curve 6", "45-degree line",
                   f"max |y-x| = {diag_dev:.3f} V", match=diag_dev < 0.02),
    ]
    report = "\n".join([
        banner("TABLE I: monitor configurations and control curves"),
        table,
        "",
        comparison_table(comparisons),
    ])
    report_writer("table1_configs", report)

    assert characterizations[1].slope_sign == 1
    assert characterizations[2].slope_sign == 1
    assert all(characterizations[r].slope_sign == -1 for r in (3, 4, 5))
    assert arc_heights[4] < arc_heights[3] < arc_heights[5]
    assert diag_dev < 0.02
