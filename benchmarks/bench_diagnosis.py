"""Fault-dictionary diagnosis at fleet scale: speedup, parity, guard.

Proofs for the :mod:`repro.diagnosis` subsystem:

* **one-pass fleet matching** -- the batched matcher diagnoses a
  >= 1000-die failing fleet against the full fault universe in a
  single call, and beats the per-die reference loop (unpacked
  ``Signature`` objects + scalar ``ndf()`` per dictionary fault) by a
  wide margin;
* **reference parity** -- batched distances, top-k candidate order
  and margins are identical to the per-die loop (the fleet-NDF kernel
  is bit-compatible with the scalar metric);
* **diagnosis quality** -- on the perturbed fleet, top-1 accuracy up
  to ambiguity groups stays high; the confusion matrix is persisted
  as a CI artifact;
* **batched dictionary compilation** -- fault-universe netlists
  synthesize through one stacked MNA sweep
  (:func:`repro.circuits.ac.ac_analysis_batch` +
  :func:`repro.circuits.dc.dc_solve_batch`) instead of per-cut,
  per-frequency rebuild/solve loops, measurably faster than the
  sequential per-cut reference with bit-identical traces and NDFs;
* **stage-timing regression guard** -- per-die match cost is compared
  against the committed ``diagnosis_per_die_s`` baseline in
  ``benchmarks/baselines/campaign_stages.json`` with the same
  ``CAMPAIGN_STAGE_TOLERANCE`` budget as the campaign stages.

Population sizes honour ``DIAG_BENCH_FLEET`` (failing-fleet target,
default 1000) and ``DIAG_BENCH_REFERENCE`` (per-die reference
subsample, default 200) so the CI smoke job can run a reduced fleet.
Timing/confusion JSON lands under ``benchmarks/reports/`` for the CI
artifact upload.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.analysis import (
    Comparison,
    banner,
    comparison_table,
    format_table,
)
from repro.campaign import GoldenCache
from repro.diagnosis import (
    DictionaryMatcher,
    ambiguity_groups,
    compile_fault_dictionary,
    fault_distance_matrix,
    perturbed_fault_fleet,
)
from repro.filters.towthomas import TowThomasValues

REPORT_DIR = pathlib.Path(__file__).parent / "reports"
BASELINE_PATH = (pathlib.Path(__file__).parent / "baselines"
                 / "campaign_stages.json")

FLEET_N = int(os.environ.get("DIAG_BENCH_FLEET", "1000"))
REFERENCE_N = int(os.environ.get("DIAG_BENCH_REFERENCE", "200"))
STAGE_TOLERANCE = float(os.environ.get("CAMPAIGN_STAGE_TOLERANCE",
                                       "5.0"))
SECOND_SIG_PER_FAULT = int(os.environ.get("SECOND_SIG_PER_FAULT",
                                          "10"))


def _write_json(name: str, payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[timing JSON saved to {path}]")


def _screened_fleet(bench_setup, target_failing: int, seed: int):
    """(engine, dictionary, truth, campaign result) of a faulty fleet.

    ``per_fault`` is sized so at least ``target_failing`` dies fail
    the screen (the escapes of undetectable faults never reach the
    matcher).
    """
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         tolerance=0.05,
                                         cache=GoldenCache())
    dictionary = compile_fault_dictionary(engine)
    detectable = int(np.count_nonzero(dictionary.detectable()))
    per_fault = -(-target_failing // max(1, detectable))
    values = TowThomasValues.from_spec(bench_setup.golden_spec)
    population, truth = perturbed_fault_fleet(
        values, dictionary.faults, per_fault=per_fault, sigma=0.02,
        seed=seed)
    result = engine.run(population, band=float(dictionary.threshold),
                        keep_signatures=True)
    return engine, dictionary, truth, result


def test_fleet_matching_scales_and_matches_reference(bench_setup,
                                                     report_writer):
    """>= 1000 failing dies x full universe in one batched pass."""
    target = FLEET_N
    __, dictionary, truth, result = _screened_fleet(bench_setup,
                                                    target, seed=101)
    failing = result.failing_indices()
    batch = result.signature_batch.select(failing)
    matcher = DictionaryMatcher(dictionary)

    t0 = time.perf_counter()
    diagnosis = matcher.match(batch, top_k=3)
    t_batched = time.perf_counter() - t0

    # Per-die reference on a subsample (the loop is the slow part
    # being replaced; extrapolating its cost from a subsample is fair
    # because it is embarrassingly linear in N).
    sub = min(REFERENCE_N, len(batch))
    sub_batch = batch.select(np.arange(sub))
    t0 = time.perf_counter()
    reference = matcher.match_reference(sub_batch, top_k=3)
    t_reference_sub = time.perf_counter() - t0
    t_reference = t_reference_sub * (len(batch) / max(1, sub))

    identical_distances = bool(np.array_equal(
        diagnosis.distances[:sub], reference.distances))
    identical_topk = bool(np.array_equal(
        diagnosis.top_indices[:sub], reference.top_indices))
    speedup = t_reference / t_batched
    accuracy = diagnosis.accuracy(truth[failing])
    groups = ambiguity_groups(
        dictionary, matrix=fault_distance_matrix(dictionary))
    group_accuracy = diagnosis.group_accuracy(truth[failing], groups)

    required_speedup = 3.0 if len(batch) >= 500 else 1.5
    rows = [["failing dies", str(len(batch))],
            ["dictionary faults", str(len(dictionary))],
            ["batched match", f"{t_batched * 1e3:.1f} ms"],
            ["per-die reference (extrapolated)",
             f"{t_reference * 1e3:.1f} ms"],
            ["speedup", f"{speedup:.1f}x"],
            ["top-1 accuracy", f"{accuracy:.1%}"],
            ["group-aware top-1", f"{group_accuracy:.1%}"]]
    comparisons = [
        Comparison("fleet size", f">= {min(target, FLEET_N)}",
                   str(len(batch)), match=len(batch) >= target),
        Comparison("distances vs per-die loop", "identical",
                   str(identical_distances),
                   match=identical_distances),
        Comparison("top-k order vs per-die loop", "identical",
                   str(identical_topk), match=identical_topk),
        Comparison("batched speedup", f">= {required_speedup:.0f}x",
                   f"{speedup:.1f}x", match=speedup >= required_speedup),
        Comparison("group-aware top-1", ">= 80%",
                   f"{group_accuracy:.1%}", match=group_accuracy >= 0.8),
    ]
    report_writer("diagnosis_fleet_matching", "\n".join([
        banner(f"DIAGNOSIS: {len(batch)}-die fleet matching"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("diagnosis_scaling", {
        "failing_dies": len(batch),
        "dictionary_faults": len(dictionary),
        "t_batched_match_s": t_batched,
        "t_reference_subsample_s": t_reference_sub,
        "reference_subsample": sub,
        "t_reference_extrapolated_s": t_reference,
        "speedup": speedup,
        "top1_accuracy": accuracy,
        "group_top1_accuracy": group_accuracy,
        "match_sections": diagnosis.timing,
    })

    assert len(batch) >= target
    assert identical_distances
    assert identical_topk
    assert speedup >= required_speedup
    assert group_accuracy >= 0.8


def test_confusion_artifact_and_stage_guard(bench_setup,
                                            report_writer):
    """Confusion JSON artifact plus the per-die match-cost guard."""
    from repro.diagnosis import confusion_study

    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         tolerance=0.05,
                                         cache=GoldenCache())
    dictionary = compile_fault_dictionary(engine)
    study = confusion_study(engine, dictionary,
                            per_fault=max(3, min(10, FLEET_N // 50)),
                            sigma=0.02, seed=7)
    groups = ambiguity_groups(
        dictionary, matrix=fault_distance_matrix(dictionary))

    # Per-die match cost guard: best of three fleet matches against
    # the committed diagnosis baseline.
    failing = study.diagnosis
    n = max(1, failing.num_dies)
    matcher = DictionaryMatcher(dictionary)
    batch = failing.batch
    best = float("inf")
    for __ in range(3):
        t0 = time.perf_counter()
        matcher.match(batch, top_k=3)
        best = min(best, time.perf_counter() - t0)
    per_die = best / n

    baseline = json.loads(BASELINE_PATH.read_text())
    budget_per_die = (baseline["diagnosis_per_die_s"]["match"]
                      * STAGE_TOLERANCE)
    rows = [["detected dies", str(failing.num_dies)],
            ["accuracy", f"{study.accuracy:.1%}"],
            ["group-aware accuracy",
             f"{study.group_accuracy(groups):.1%}"],
            ["match/die", f"{per_die * 1e6:.1f} us"],
            ["budget/die", f"{budget_per_die * 1e6:.1f} us"]]
    comparisons = [
        Comparison("match cost per die",
                   f"<= {budget_per_die * 1e6:.1f} us "
                   f"({STAGE_TOLERANCE:.0f}x baseline)",
                   f"{per_die * 1e6:.1f} us",
                   match=per_die <= budget_per_die),
    ]
    report_writer("diagnosis_confusion", "\n".join([
        banner("DIAGNOSIS: confusion study + stage guard"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
        "",
        study.summary(),
    ]))
    _write_json("diagnosis_confusion", {
        "confusion": study.to_payload(),
        "group_accuracy": study.group_accuracy(groups),
        "ambiguity_groups": [[dictionary.labels[i] for i in group]
                             for group in groups if len(group) > 1],
        "match_per_die_s": per_die,
        "baseline_match_per_die_s":
            baseline["diagnosis_per_die_s"]["match"],
        "tolerance": STAGE_TOLERANCE,
    })

    assert per_die <= budget_per_die, (
        f"diagnosis match stage regressed beyond "
        f"{STAGE_TOLERANCE:.0f}x the committed baseline")


def test_second_signature_search_and_split(bench_setup,
                                           report_writer):
    """The adaptive second signature: search cost + diagnosis delta.

    Runs the candidate search (fault traces synthesized once, one
    fused encode per candidate), compiles the two-channel dictionary
    and re-diagnoses the same perturbed fleet through both channels.
    Asserts the PR's acceptance criteria -- {r1-open, r5-short}
    splits, {r4-open, r4-short} is reported invisible, group-aware
    accuracy does not regress, the split members improve -- and lands
    the timings in the JSON artifact.
    """
    from repro.diagnosis import (
        compile_multi_fault_dictionary,
        confusion_study,
        search_second_signature,
    )

    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         tolerance=0.05,
                                         cache=GoldenCache())
    dictionary = compile_fault_dictionary(engine)

    t0 = time.perf_counter()
    search = search_second_signature(engine, dictionary)
    t_search = time.perf_counter() - t0
    t0 = time.perf_counter()
    multi = compile_multi_fault_dictionary(engine, search.encoders)
    t_compile = time.perf_counter() - t0

    per_fault = SECOND_SIG_PER_FAULT
    t0 = time.perf_counter()
    single_study = confusion_study(engine, dictionary,
                                   per_fault=per_fault, sigma=0.02,
                                   seed=42)
    multi_study = confusion_study(engine, multi, per_fault=per_fault,
                                  sigma=0.02, seed=42)
    t_studies = time.perf_counter() - t0
    groups = ambiguity_groups(
        dictionary, matrix=fault_distance_matrix(dictionary))

    labels = dictionary.labels
    split_ok = ["r1-open", "r5-short"] in search.resolved_groups
    invisible_ok = ["r4-open", "r4-short"] in search.invisible_groups
    b = labels.index("r5-short")
    before = (single_study.matrix[b, b]
              / max(1, single_study.detected[b]))
    after = multi_study.matrix[b, b] / max(1, multi_study.detected[b])

    rows = [["candidates searched", str(len(search.scores))],
            ["chosen bank", search.best.name],
            ["search", f"{t_search * 1e3:.1f} ms"],
            ["two-channel compile", f"{t_compile * 1e3:.1f} ms"],
            ["confusion studies", f"{t_studies * 1e3:.1f} ms"],
            ["top-1 accuracy",
             f"{single_study.accuracy:.1%} -> "
             f"{multi_study.accuracy:.1%}"],
            ["group-aware accuracy",
             f"{single_study.group_accuracy(groups):.1%} -> "
             f"{multi_study.group_accuracy(groups):.1%}"],
            ["r5-short top-1", f"{before:.0%} -> {after:.0%}"]]
    comparisons = [
        Comparison("{r1-open, r5-short}", "resolved", str(split_ok),
                   match=split_ok),
        Comparison("{r4-open, r4-short}", "invisible",
                   str(invisible_ok), match=invisible_ok),
        Comparison("group-aware accuracy", "no regression",
                   f"{multi_study.group_accuracy(groups):.1%}",
                   match=multi_study.group_accuracy(groups)
                   >= single_study.group_accuracy(groups)),
        Comparison("r5-short top-1 improves", f"> {before:.0%}",
                   f"{after:.0%}", match=after > before),
    ]
    report_writer("second_signature", "\n".join([
        banner("DIAGNOSIS: adaptive second-signature search"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
        "",
        search.summary(),
    ]))
    _write_json("second_signature", {
        "candidates": len(search.scores),
        "chosen": search.best.name,
        "t_search_s": t_search,
        "t_compile_s": t_compile,
        "t_studies_s": t_studies,
        "search_sections": search.timing,
        "per_fault": per_fault,
        "resolved_groups": search.resolved_groups,
        "partial_groups": search.partial_groups,
        "invisible_groups": search.invisible_groups,
        "unresolved_groups": search.unresolved_groups,
        "top1_before": single_study.accuracy,
        "top1_after": multi_study.accuracy,
        "group_top1_before": single_study.group_accuracy(groups),
        "group_top1_after": multi_study.group_accuracy(groups),
    })

    assert split_ok
    assert invisible_ok
    assert multi_study.group_accuracy(groups) \
        >= single_study.group_accuracy(groups)
    # Plain top-1 is expected to rise, but only group-aware accuracy
    # is *provably* no-regress (a cross-group near-tie can flip under
    # platform-dependent low-order bits); allow one die of slack.
    slack = 1.0 / max(1, int(single_study.detected.sum()))
    assert multi_study.accuracy >= single_study.accuracy - slack
    assert after > before


def test_dictionary_compile_batched_vs_sequential(bench_setup,
                                                  report_writer):
    """Stacked-MNA fault synthesis vs the per-cut response() loop.

    A perturbed fault fleet (same-topology Tow-Thomas netlists, the
    exact shape dictionary compilation and confusion studies screen)
    is synthesized both ways; the batched front half must be faster
    with bit-identical traces and NDFs.
    """
    from repro.campaign.batch import (
        batch_codes,
        batch_extract,
        batch_multitone_eval,
        batch_netlist_traces,
        batch_responses,
    )
    from repro.diagnosis import perturbed_fault_fleet
    from repro.filters.faults import catastrophic_fault_universe

    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    golden = engine.golden()
    values = TowThomasValues.from_spec(bench_setup.golden_spec)
    faults = catastrophic_fault_universe()
    per_fault = max(2, min(30, FLEET_N // max(1, len(faults))))
    population, __ = perturbed_fault_fleet(values, faults,
                                           per_fault=per_fault,
                                           sigma=0.02, seed=13)
    cuts = population.cuts

    t0 = time.perf_counter()
    y_batched = batch_netlist_traces(cuts, bench_setup.stimulus,
                                     golden.times)
    t_batched = time.perf_counter() - t0
    assert y_batched is not None

    t0 = time.perf_counter()
    responses = batch_responses(cuts, bench_setup.stimulus)
    y_sequential = batch_multitone_eval(responses, golden.times)
    t_sequential = time.perf_counter() - t0

    identical_traces = bool(np.array_equal(y_batched, y_sequential))
    codes = batch_codes(engine.config.encoder, golden.x, y_batched)
    ndfs_batched = batch_extract(golden.times, codes,
                                 golden.period).ndf_to(
                                     golden.signature)
    codes_seq = batch_codes(engine.config.encoder, golden.x,
                            y_sequential)
    ndfs_sequential = batch_extract(golden.times, codes_seq,
                                    golden.period).ndf_to(
                                        golden.signature)
    identical_ndfs = bool(np.array_equal(ndfs_batched,
                                         ndfs_sequential))
    speedup = t_sequential / t_batched
    required = 1.3 if len(cuts) >= 100 else 1.05

    rows = [["netlist cuts", str(len(cuts))],
            ["sequential per-cut synthesis",
             f"{t_sequential * 1e3:.1f} ms"],
            ["stacked MNA synthesis", f"{t_batched * 1e3:.1f} ms"],
            ["speedup", f"{speedup:.2f}x"]]
    comparisons = [
        Comparison("netlist synthesis speedup",
                   f">= {required:.2f}x", f"{speedup:.2f}x",
                   match=speedup >= required),
        Comparison("trace stacks", "bit-identical",
                   str(identical_traces), match=identical_traces),
        Comparison("NDF vectors", "bit-identical",
                   str(identical_ndfs), match=identical_ndfs),
    ]
    report_writer("diagnosis_compile", "\n".join([
        banner(f"DIAGNOSIS: batched dictionary synthesis "
               f"({len(cuts)} netlists)"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("diagnosis_compile", {
        "netlist_cuts": len(cuts),
        "t_sequential_s": t_sequential,
        "t_batched_s": t_batched,
        "speedup": speedup,
        "bit_identical_traces": identical_traces,
        "bit_identical_ndfs": identical_ndfs,
    })

    assert identical_traces
    assert identical_ndfs
    assert speedup >= required
