"""XTRA (extension) -- multi-parameter verification and diagnosis.

The paper verifies f0 through one observable output.  Two extension
questions the evaluation invites:

* what does the same instrument say about *Q* deviations?  (the NDF
  surface over the (f0, Q) plane, including the ambiguity of a scalar
  metric);
* does observing the Tow-Thomas band-pass tap as a second channel add
  diagnostic power?  (the channel-NDF ratio separating f0 faults from
  Q faults).
"""

import numpy as np

from repro.analysis import (
    Comparison,
    banner,
    comparison_table,
    format_table,
    ndf_surface,
)
from repro.core import BiquadTwoTapCut, ChannelSpec, MultiChannelTester
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS


def test_multiparameter_surface(benchmark, bench_setup, report_writer):
    # The whole 25-point grid runs as one batched campaign.
    engine = bench_setup.campaign_engine()
    surface = benchmark(
        ndf_surface, None, PAPER_BIQUAD,
        np.linspace(-0.10, 0.10, 5), np.linspace(-0.20, 0.20, 5),
        engine=engine)

    header = ["q dev \\ f0 dev"] + [f"{d:+.0%}"
                                    for d in surface.f0_deviations]
    rows = []
    for i, q_dev in enumerate(surface.q_deviations):
        rows.append([f"{q_dev:+.0%}"]
                    + [round(v, 3) for v in surface.ndf[i]])

    f_slope = float(np.max(surface.f0_only_profile())) / 0.10
    q_slope = float(np.max(surface.q_only_profile())) / 0.20
    level = surface.at(0.05, 0.0)
    ambiguity = surface.ambiguity_index(level, tolerance=0.3)

    comparisons = [
        Comparison("f0 sensitivity (NDF per unit dev)", "~1.0 (Fig. 8 "
                   "slope)", round(f_slope, 2),
                   match=0.7 < f_slope < 1.3),
        Comparison("Q sensitivity", "weaker than f0",
                   round(q_slope, 2), match=q_slope < 0.55 * f_slope),
        Comparison("scalar-NDF ambiguity", "> 0 (level sets are "
                   "contours)", round(ambiguity, 2),
                   match=ambiguity > 0.0),
    ]
    report = "\n".join([
        banner("EXTENSION: NDF surface over (f0, Q) deviations"),
        format_table(header, rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("multiparam_surface", report)

    assert 0.7 < f_slope < 1.3
    assert q_slope < 0.55 * f_slope


def test_two_channel_diagnosis(benchmark, bench_setup, report_writer):
    channels = [ChannelSpec("lp", bench_setup.encoder),
                ChannelSpec("bp", bench_setup.encoder)]
    tester = MultiChannelTester(channels, PAPER_STIMULUS,
                                BiquadTwoTapCut(PAPER_BIQUAD),
                                samples_per_period=2048)

    def measure(cut):
        return tester.channel_ndfs(cut)

    f0_fault = benchmark(measure, BiquadTwoTapCut(
        PAPER_BIQUAD.with_f0_deviation(0.10)))
    q_fault = measure(BiquadTwoTapCut(PAPER_BIQUAD.with_q_deviation(0.20)))

    r_f0 = f0_fault["lp"] / f0_fault["bp"]
    r_q = q_fault["lp"] / q_fault["bp"]
    rows = [["f0 +10 %", round(f0_fault["lp"], 4),
             round(f0_fault["bp"], 4), round(r_f0, 2)],
            ["Q +20 %", round(q_fault["lp"], 4),
             round(q_fault["bp"], 4), round(r_q, 2)]]
    comparisons = [
        Comparison("channel ratio separates fault classes",
                   "r(Q) >> r(f0)", f"{r_q:.2f} vs {r_f0:.2f}",
                   match=r_q > 1.4 * r_f0,
                   note="scalar NDF cannot do this"),
    ]
    report = "\n".join([
        banner("EXTENSION: two-channel (LP + BP) fault diagnosis"),
        format_table(["fault", "NDF(lp)", "NDF(bp)", "lp/bp ratio"],
                     rows),
        "",
        comparison_table(comparisons),
    ])
    report_writer("multichannel_diagnosis", report)

    assert r_q > 1.4 * r_f0
