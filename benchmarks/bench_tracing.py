"""Telemetry overhead guards: disabled tracing must stay free.

The pipeline is now instrumented with spans at every stage boundary.
Disabled tracing costs one branch per span site, so the per-die stage
timings of an *untraced* campaign must stay inside the same committed
budget (``benchmarks/baselines/campaign_stages.json`` x
``CAMPAIGN_STAGE_TOLERANCE``) as before the instrumentation landed --
this is the tracing-off regression gate CI runs.  Enabled tracing is
reported for scale but only sanity-bounded: spans are per-chunk/stage,
not per-die, so the cost amortizes to noise at fleet sizes.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.analysis import banner, format_table
from repro.campaign import GoldenCache, montecarlo_dies
from repro.obs import Tracer, install_tracer, tracing_enabled

BASELINE_PATH = (pathlib.Path(__file__).parent / "baselines"
                 / "campaign_stages.json")
STAGE_TOLERANCE = float(os.environ.get("CAMPAIGN_STAGE_TOLERANCE",
                                       "5.0"))
TRACE_N = int(os.environ.get("CAMPAIGN_BENCH_TRACE_N", "1000"))


def _best_stage_timings(engine, population, repeats=3):
    best = {}
    for __ in range(repeats):
        result = engine.run(population, band=None)
        for stage in ("traces", "encode", "signature", "ndf"):
            value = result.timing[stage]
            if stage not in best or value < best[stage]:
                best[stage] = value
    return best, result


def test_tracing_off_overhead_vs_committed_baseline(bench_setup,
                                                    report_writer):
    """Instrumented-but-untraced stages must hold the committed budget."""
    assert not tracing_enabled(), \
        "the overhead gate measures the disabled path"
    n = min(TRACE_N, 1000)
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    engine.golden()  # warm: measure marginal per-die cost only
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=47)
    best, __ = _best_stage_timings(engine, population)
    per_die = {stage: value / n for stage, value in best.items()}

    budgets = json.loads(BASELINE_PATH.read_text())["per_die_s"]
    rows = []
    failures = []
    for stage, measured in per_die.items():
        budget = budgets[stage] * STAGE_TOLERANCE
        rows.append([stage, f"{measured * 1e6:.2f} us",
                     f"{budgets[stage] * 1e6:.2f} us",
                     f"{budget * 1e6:.2f} us"])
        if measured > budget:
            failures.append(stage)
    report_writer("tracing_off_overhead", "\n".join([
        banner(f"TELEMETRY: tracing-off overhead gate ({n} dies, "
               f"tolerance {STAGE_TOLERANCE:.0f}x)"),
        format_table(["stage", "measured/die", "baseline/die",
                      "budget/die"], rows),
    ]))
    assert not failures, (
        f"null-span instrumentation pushed stages past "
        f"{STAGE_TOLERANCE:.0f}x the committed baseline: {failures}")


def test_tracing_on_cost_is_bounded_and_bit_identical(bench_setup,
                                                      report_writer):
    """Enabled tracing: bounded slowdown, zero effect on verdicts."""
    n = min(TRACE_N, 500)
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    engine.golden()
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=48)

    t0 = time.perf_counter()
    baseline = engine.run(population, band=0.05)
    t_off = time.perf_counter() - t0

    tracer = Tracer()
    previous = install_tracer(tracer)
    try:
        t0 = time.perf_counter()
        traced = engine.run(population, band=0.05)
        t_on = time.perf_counter() - t0
    finally:
        install_tracer(previous)

    assert np.array_equal(baseline.ndfs, traced.ndfs)
    assert np.array_equal(baseline.verdicts, traced.verdicts)
    spans = len(tracer)
    overhead = t_on - t_off
    report_writer("tracing_on_overhead", "\n".join([
        banner(f"TELEMETRY: tracing-on cost ({n} dies)"),
        format_table(["quantity", "value"], [
            ["untraced run", f"{t_off * 1e3:.2f} ms"],
            ["traced run", f"{t_on * 1e3:.2f} ms"],
            ["spans recorded", str(spans)],
            ["overhead/span", f"{overhead / max(spans, 1) * 1e6:.2f} us"
             if overhead > 0 else "(noise)"],
        ]),
    ]))
    assert spans >= 5  # submit + the stage spans
    # Spans are per-stage/per-chunk, so even a noisy runner keeps the
    # traced run within a small multiple of the untraced one.
    assert t_on <= t_off * 5 + 0.05
