"""Campaign engine at fleet scale: speedup, scaling, executor parity.

Three proofs for the batched campaign engine:

* **speedup** -- the campaign beats the seed's per-die
  :class:`~repro.core.testflow.SignatureTester` loop by >= 5x at
  N = 500 dies (the per-die loop is timed for real, not extrapolated);
* **near-linear scaling** -- doubling the population roughly doubles
  campaign wall-clock (golden work is cached, the hot path is
  vectorized);
* **executor parity** -- serial and process-pool executors return
  bit-identical NDF and verdict vectors for the same seeded population.

Population sizes honour ``CAMPAIGN_BENCH_N`` (speedup study, default
500) and ``CAMPAIGN_BENCH_SCALING`` (comma-separated N list, default
``60,120,240,480``) so the CI smoke job can run a reduced fleet.
Timings are persisted as JSON under ``benchmarks/reports/`` for the CI
artifact upload.
"""

import json
import os
import pathlib
import time

import numpy as np

from repro.analysis import (
    Comparison,
    banner,
    comparison_table,
    format_table,
)
from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    ProcessPoolExecutor,
    montecarlo_dies,
)
from repro.core.testflow import SignatureTester
from repro.filters.biquad import BiquadFilter

REPORT_DIR = pathlib.Path(__file__).parent / "reports"

SPEEDUP_N = int(os.environ.get("CAMPAIGN_BENCH_N", "500"))
SCALING_NS = [int(n) for n in os.environ.get(
    "CAMPAIGN_BENCH_SCALING", "60,120,240,480").split(",")]


def _write_json(name: str, payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[timing JSON saved to {path}]")


def test_campaign_speedup_vs_per_die_loop(bench_setup, report_writer):
    """The acceptance proof: campaign vs the seed per-die loop."""
    n = SPEEDUP_N
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=7)

    # Same sampling density on both sides for a fair comparison.
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    t0 = time.perf_counter()
    result = engine.run(population, band=None)
    t_campaign = time.perf_counter() - t0

    # The seed flow: one SignatureTester, one refined capture per die.
    tester = SignatureTester(bench_setup.encoder, bench_setup.stimulus,
                             bench_setup.golden_filter(),
                             samples_per_period=2048)
    t0 = time.perf_counter()
    loop_ndfs = np.asarray([tester.ndf_of(BiquadFilter(spec))
                            for spec in population.specs])
    t_loop = time.perf_counter() - t0

    speedup = t_loop / t_campaign
    max_diff = float(np.max(np.abs(loop_ndfs - result.ndfs)))
    required = 5.0 if n >= 500 else 2.0

    rows = [["dies", str(n)],
            ["per-die loop", f"{t_loop:.2f} s"],
            ["campaign", f"{t_campaign:.3f} s"],
            ["speedup", f"{speedup:.1f}x"],
            ["max |NDF| gap (refined vs batched)", f"{max_diff:.4f}"]]
    comparisons = [
        Comparison("campaign speedup", f">= {required:.0f}x",
                   f"{speedup:.1f}x", match=speedup >= required),
        Comparison("NDF agreement with refined per-die flow",
                   "within capture quantization (< 0.005)",
                   f"{max_diff:.4f}", match=max_diff < 0.005),
    ]
    report_writer("campaign_speedup", "\n".join([
        banner(f"CAMPAIGN: {n}-die speedup vs per-die loop"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("campaign_speedup", {
        "dies": n, "t_per_die_loop_s": t_loop,
        "t_campaign_s": t_campaign, "speedup": speedup,
        "max_ndf_gap": max_diff,
        "campaign_sections": result.timing,
    })

    assert speedup >= required
    assert max_diff < 0.005


def test_campaign_scaling_near_linear(bench_setup, report_writer):
    """Doubling N must roughly double campaign wall-clock."""
    ns = sorted(SCALING_NS)
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    engine.golden()  # warm the cache: measure marginal cost only
    times = {}
    for n in ns:
        population = montecarlo_dies(bench_setup.golden_spec, n,
                                     sigma_f0=0.03, seed=3)
        # Min of three repeats: scheduler noise on shared CI runners
        # otherwise dominates the sub-100 ms small-N points.
        best = float("inf")
        for __ in range(3):
            t0 = time.perf_counter()
            engine.run(population, band=None)
            best = min(best, time.perf_counter() - t0)
        times[n] = best

    per_die = {n: times[n] / n for n in ns}
    growth = (times[ns[-1]] / times[ns[0]]) / (ns[-1] / ns[0])

    rows = [[str(n), f"{times[n] * 1e3:.1f} ms",
             f"{per_die[n] * 1e6:.0f} us/die"] for n in ns]
    comparisons = [
        Comparison("scaling exponent vs linear", "~1 (within 2.5x)",
                   f"{growth:.2f}", match=growth < 2.5),
    ]
    report_writer("campaign_scaling", "\n".join([
        banner("CAMPAIGN: wall-clock scaling in population size"),
        format_table(["dies", "wall-clock", "per die"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("campaign_scaling", {
        "times_s": {str(n): times[n] for n in ns},
        "per_die_s": {str(n): per_die[n] for n in ns},
        "linear_growth_factor": growth,
    })

    # Near-linear: per-die cost must not grow faster than 2.5x across
    # the population span.  The generous bound absorbs the CPU-cache
    # cliff the working set crosses between small and large N, plus
    # shared-CI timing noise; a quadratic engine would blow through it.
    assert growth < 2.5


def test_executor_parity_bit_identical(bench_setup, report_writer):
    """Serial and process-pool runs must agree bit for bit."""
    n = min(SPEEDUP_N, 120)
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=11)
    config = bench_setup.campaign_engine(samples_per_period=2048).config
    serial = CampaignEngine(config, cache=GoldenCache()).run(
        population, band="auto")
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = CampaignEngine(config, cache=GoldenCache(),
                                executor=pool).run(population,
                                                   band="auto")

    identical_ndfs = bool(np.array_equal(serial.ndfs, pooled.ndfs))
    identical_verdicts = bool(np.array_equal(serial.verdicts,
                                             pooled.verdicts))
    comparisons = [
        Comparison("NDF vectors", "bit-identical", str(identical_ndfs),
                   match=identical_ndfs),
        Comparison("verdict vectors", "bit-identical",
                   str(identical_verdicts), match=identical_verdicts),
    ]
    report_writer("campaign_executor_parity", "\n".join([
        banner(f"CAMPAIGN: serial vs {pooled.executor} parity "
               f"({n} dies)"),
        comparison_table(comparisons),
    ]))

    assert identical_ndfs
    assert identical_verdicts
