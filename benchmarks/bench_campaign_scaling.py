"""Campaign engine at fleet scale: speedup, scaling, executor parity.

Proofs for the batched campaign engine:

* **speedup** -- the campaign beats the seed's per-die
  :class:`~repro.core.testflow.SignatureTester` loop by >= 5x at
  N = 500 dies (the per-die loop is timed for real, not extrapolated);
* **near-linear scaling** -- doubling the population roughly doubles
  campaign wall-clock (golden work is cached, the hot path is
  vectorized);
* **executor parity** -- serial and process-pool executors return
  bit-identical NDF and verdict vectors for the same seeded population;
* **packed-pipeline speedup** -- the CSR signature extraction plus
  fleet-NDF kernel beats the unpacked per-die reference
  (``batch_signatures`` + ``batch_ndf``, the PR 1 back half) by >= 5x
  at N = 2000, and the end-to-end campaign beats the reconstructed
  PR 1 pipeline by >= 2x at N = 5000 -- with bit-identical NDFs;
* **front-half speedup** -- the fused traces+encode front half (PR 4:
  object-free closed-form synthesis plus the fused shared-branch
  encoder) beats the live-reconstructed PR 2 front half with
  bit-identical codes; the before/after per-die stage timings land in
  the machine-readable ``BENCH_4.json`` artifact;
* **stage-timing regression guard** -- per-die stage timings
  (trace/encode/signature/ndf) are compared against the committed
  baseline ``benchmarks/baselines/campaign_stages.json`` with a
  generous threshold, so only real regressions fail the job.

Population sizes honour ``CAMPAIGN_BENCH_N`` (speedup study, default
500), ``CAMPAIGN_BENCH_SCALING`` (comma-separated N list, default
``60,120,240,480``), ``CAMPAIGN_BENCH_STAGE_N`` (packed-pipeline
study, default 2000), ``CAMPAIGN_BENCH_E2E_N`` (end-to-end study,
default 5000) and ``CAMPAIGN_BENCH_FRONT_N`` (front-half study,
default 5000) so the CI smoke job can run a reduced fleet; the
regression threshold honours ``CAMPAIGN_STAGE_TOLERANCE`` (default
5x).  Timings are persisted as JSON under ``benchmarks/reports/`` for
the CI artifact upload.
"""

import json
import os
import pathlib
import time
import tracemalloc

import numpy as np

from repro.analysis import (
    Comparison,
    banner,
    comparison_table,
    format_table,
)
from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    ProcessPoolExecutor,
    batch_biquad_traces,
    batch_codes,
    batch_extract,
    batch_multitone_eval,
    batch_ndf,
    batch_signatures,
    montecarlo_dies,
    stream_montecarlo_dies,
)
from repro.core.scratch import SCRATCH
from repro.core.testflow import SignatureTester
from repro.filters.biquad import BiquadFilter
from repro.monitor.bank_encode import monitor_bank_codes_reference

REPORT_DIR = pathlib.Path(__file__).parent / "reports"
BASELINE_PATH = (pathlib.Path(__file__).parent / "baselines"
                 / "campaign_stages.json")

SPEEDUP_N = int(os.environ.get("CAMPAIGN_BENCH_N", "500"))
SCALING_NS = [int(n) for n in os.environ.get(
    "CAMPAIGN_BENCH_SCALING", "60,120,240,480").split(",")]
STAGE_N = int(os.environ.get("CAMPAIGN_BENCH_STAGE_N", "2000"))
E2E_N = int(os.environ.get("CAMPAIGN_BENCH_E2E_N", "5000"))
FRONT_N = int(os.environ.get("CAMPAIGN_BENCH_FRONT_N", "5000"))
STAGE_TOLERANCE = float(os.environ.get("CAMPAIGN_STAGE_TOLERANCE",
                                       "5.0"))


def _write_json(name: str, payload: dict) -> None:
    REPORT_DIR.mkdir(exist_ok=True)
    path = REPORT_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    print(f"[timing JSON saved to {path}]")


def test_campaign_speedup_vs_per_die_loop(bench_setup, report_writer):
    """The acceptance proof: campaign vs the seed per-die loop."""
    n = SPEEDUP_N
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=7)

    # Same sampling density on both sides for a fair comparison.
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    t0 = time.perf_counter()
    result = engine.run(population, band=None)
    t_campaign = time.perf_counter() - t0

    # The seed flow: one SignatureTester, one refined capture per die.
    tester = SignatureTester(bench_setup.encoder, bench_setup.stimulus,
                             bench_setup.golden_filter(),
                             samples_per_period=2048)
    t0 = time.perf_counter()
    loop_ndfs = np.asarray([tester.ndf_of(BiquadFilter(spec))
                            for spec in population.specs])
    t_loop = time.perf_counter() - t0

    speedup = t_loop / t_campaign
    max_diff = float(np.max(np.abs(loop_ndfs - result.ndfs)))
    required = 5.0 if n >= 500 else 2.0

    rows = [["dies", str(n)],
            ["per-die loop", f"{t_loop:.2f} s"],
            ["campaign", f"{t_campaign:.3f} s"],
            ["speedup", f"{speedup:.1f}x"],
            ["max |NDF| gap (refined vs batched)", f"{max_diff:.4f}"]]
    comparisons = [
        Comparison("campaign speedup", f">= {required:.0f}x",
                   f"{speedup:.1f}x", match=speedup >= required),
        Comparison("NDF agreement with refined per-die flow",
                   "within capture quantization (< 0.005)",
                   f"{max_diff:.4f}", match=max_diff < 0.005),
    ]
    report_writer("campaign_speedup", "\n".join([
        banner(f"CAMPAIGN: {n}-die speedup vs per-die loop"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("campaign_speedup", {
        "dies": n, "t_per_die_loop_s": t_loop,
        "t_campaign_s": t_campaign, "speedup": speedup,
        "max_ndf_gap": max_diff,
        "campaign_sections": result.timing,
    })

    assert speedup >= required
    assert max_diff < 0.005


def test_campaign_scaling_near_linear(bench_setup, report_writer):
    """Doubling N must roughly double campaign wall-clock."""
    ns = sorted(SCALING_NS)
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    engine.golden()  # warm the cache: measure marginal cost only
    times = {}
    for n in ns:
        population = montecarlo_dies(bench_setup.golden_spec, n,
                                     sigma_f0=0.03, seed=3)
        # Min of three repeats: scheduler noise on shared CI runners
        # otherwise dominates the sub-100 ms small-N points.
        best = float("inf")
        for __ in range(3):
            t0 = time.perf_counter()
            engine.run(population, band=None)
            best = min(best, time.perf_counter() - t0)
        times[n] = best

    per_die = {n: times[n] / n for n in ns}
    growth = (times[ns[-1]] / times[ns[0]]) / (ns[-1] / ns[0])

    rows = [[str(n), f"{times[n] * 1e3:.1f} ms",
             f"{per_die[n] * 1e6:.0f} us/die"] for n in ns]
    comparisons = [
        Comparison("scaling exponent vs linear", "~1 (within 2.5x)",
                   f"{growth:.2f}", match=growth < 2.5),
    ]
    report_writer("campaign_scaling", "\n".join([
        banner("CAMPAIGN: wall-clock scaling in population size"),
        format_table(["dies", "wall-clock", "per die"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("campaign_scaling", {
        "times_s": {str(n): times[n] for n in ns},
        "per_die_s": {str(n): per_die[n] for n in ns},
        "linear_growth_factor": growth,
    })

    # Near-linear: per-die cost must not grow faster than 2.5x across
    # the population span.  The generous bound absorbs the CPU-cache
    # cliff the working set crosses between small and large N, plus
    # shared-CI timing noise; a quadratic engine would blow through it.
    assert growth < 2.5


def test_executor_parity_bit_identical(bench_setup, report_writer):
    """Serial and process-pool runs must agree bit for bit."""
    n = min(SPEEDUP_N, 120)
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=11)
    config = bench_setup.campaign_engine(samples_per_period=2048).config
    serial = CampaignEngine(config, cache=GoldenCache()).run(
        population, band="auto")
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = CampaignEngine(config, cache=GoldenCache(),
                                executor=pool).run(population,
                                                   band="auto")

    identical_ndfs = bool(np.array_equal(serial.ndfs, pooled.ndfs))
    identical_verdicts = bool(np.array_equal(serial.verdicts,
                                             pooled.verdicts))
    comparisons = [
        Comparison("NDF vectors", "bit-identical", str(identical_ndfs),
                   match=identical_ndfs),
        Comparison("verdict vectors", "bit-identical",
                   str(identical_verdicts), match=identical_verdicts),
    ]
    report_writer("campaign_executor_parity", "\n".join([
        banner(f"CAMPAIGN: serial vs {pooled.executor} parity "
               f"({n} dies)"),
        comparison_table(comparisons),
    ]))

    assert identical_ndfs
    assert identical_verdicts


# ----------------------------------------------------------------------
# Packed signature pipeline (PR 2)
# ----------------------------------------------------------------------
def _code_stack(bench_setup, n: int, seed: int):
    """(engine, golden, code stack) of an n-die Monte Carlo fleet."""
    from repro.campaign.batch import batch_codes

    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    golden = engine.golden()
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=seed)
    responses = [BiquadFilter(s).response(bench_setup.stimulus)
                 for s in population.specs]
    y = batch_multitone_eval(responses, golden.times)
    codes = batch_codes(engine.config.encoder, golden.x, y)
    return engine, golden, population, codes


def test_signature_ndf_stage_speedup(bench_setup, report_writer):
    """Packed extract + fleet NDF vs the PR 1 per-die back half."""
    n = STAGE_N
    engine, golden, __, codes = _code_stack(bench_setup, n, seed=19)

    t0 = time.perf_counter()
    batch = batch_extract(golden.times, codes, golden.period)
    t_extract = time.perf_counter() - t0
    t0 = time.perf_counter()
    packed_values = batch.ndf_to(golden.signature)
    t_fleet_ndf = time.perf_counter() - t0

    t0 = time.perf_counter()
    signatures = batch_signatures(golden.times, codes, golden.period)
    t_signatures = time.perf_counter() - t0
    t0 = time.perf_counter()
    reference = batch_ndf(signatures, golden.signature)
    t_ndf_loop = time.perf_counter() - t0

    packed = t_extract + t_fleet_ndf
    unpacked = t_signatures + t_ndf_loop
    speedup = unpacked / packed
    identical = bool(np.array_equal(packed_values, reference))
    required = 5.0 if n >= 1000 else 2.0

    rows = [["dies", str(n)],
            ["per-die Signature objects + ndf()",
             f"{unpacked * 1e3:.1f} ms"],
            ["packed extract + fleet NDF", f"{packed * 1e3:.1f} ms"],
            ["speedup", f"{speedup:.1f}x"]]
    comparisons = [
        Comparison("signature+NDF stage speedup",
                   f">= {required:.0f}x", f"{speedup:.1f}x",
                   match=speedup >= required),
        Comparison("NDF vectors", "bit-identical", str(identical),
                   match=identical),
    ]
    report_writer("campaign_stage_speedup", "\n".join([
        banner(f"CAMPAIGN: packed signature pipeline ({n} dies)"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("campaign_stage_speedup", {
        "dies": n,
        "t_unpacked_signature_s": t_signatures,
        "t_unpacked_ndf_s": t_ndf_loop,
        "t_packed_extract_s": t_extract,
        "t_packed_fleet_ndf_s": t_fleet_ndf,
        "stage_speedup": speedup,
        "bit_identical": identical,
    })

    assert identical
    assert speedup >= required


def test_e2e_campaign_speedup_vs_pr1_pipeline(bench_setup,
                                              report_writer):
    """End-to-end campaign vs the reconstructed PR 1 hot path.

    The PR 1 pipeline is timed for real from its retained pieces:
    broadcast zone encoding (``encoder.code`` on a broadcast X),
    per-die ``Signature.from_samples`` extraction and the per-die
    ``ndf()`` loop.  The packed engine must beat it >= 2x at N = 5000
    with bit-identical NDFs.
    """
    n = E2E_N
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    golden = engine.golden()
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=29)

    t0 = time.perf_counter()
    result = engine.run(population, band=None)
    t_campaign = time.perf_counter() - t0

    # PR 1 reconstruction, chunked like the engine to keep the
    # comparison fair (same cache behaviour, same working-set size).
    chunk = engine.config.chunk_size
    t0 = time.perf_counter()
    pr1_values = []
    for lo in range(0, n, chunk):
        specs = population.specs[lo:lo + chunk]
        responses = [BiquadFilter(s).response(bench_setup.stimulus)
                     for s in specs]
        y = batch_multitone_eval(responses, golden.times)
        x = np.broadcast_to(golden.x, y.shape)
        codes = np.asarray(engine.config.encoder.code(x, y),
                           dtype=np.int64)
        signatures = batch_signatures(golden.times, codes,
                                      golden.period)
        pr1_values.append(batch_ndf(signatures, golden.signature))
    pr1_values = np.concatenate(pr1_values)
    t_pr1 = time.perf_counter() - t0

    speedup = t_pr1 / t_campaign
    identical = bool(np.array_equal(pr1_values, result.ndfs))
    required = 2.0 if n >= 2000 else 1.2

    rows = [["dies", str(n)],
            ["PR 1 pipeline", f"{t_pr1:.2f} s"],
            ["packed campaign", f"{t_campaign:.2f} s"],
            ["speedup", f"{speedup:.1f}x"]]
    comparisons = [
        Comparison("end-to-end speedup", f">= {required:.1f}x",
                   f"{speedup:.1f}x", match=speedup >= required),
        Comparison("NDF vectors", "bit-identical", str(identical),
                   match=identical),
    ]
    report_writer("campaign_e2e_speedup", "\n".join([
        banner(f"CAMPAIGN: end-to-end vs PR 1 pipeline ({n} dies)"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("campaign_e2e_speedup", {
        "dies": n, "t_pr1_pipeline_s": t_pr1,
        "t_campaign_s": t_campaign, "e2e_speedup": speedup,
        "bit_identical": identical,
        "campaign_sections": result.timing,
    })

    assert identical
    assert speedup >= required


def test_front_half_speedup_vs_pr2(bench_setup, report_writer):
    """Fused traces+encode vs the PR 2 front half, reconstructed live.

    The PR 2 front half is timed for real from its retained pieces:
    per-die ``BiquadFilter(...).response()`` objects pushed through
    :func:`batch_multitone_eval`, then the pre-fusion shared-branch
    encoder (:func:`monitor_bank_codes_reference`).  The fused front
    half (:func:`batch_biquad_traces` + :func:`batch_codes`) must beat
    it on the combined traces+encode per-die time with bit-identical
    codes.  Both sides run chunked like the engine, on the same
    machine, same day -- the fair comparison the committed
    cross-machine baseline cannot give.

    Note on the required factor: the irreducible transcendental work
    (``np.sin`` per trace sample, ``exp``/``log1p`` per EKV table
    entry) is common to both pipelines and bounds the ratio wherever
    numpy's sin falls back to scalar libm; the asserted floor is set
    below the ~2x/~2.3x measured on the (scalar-sin) reference
    machine, and machines with SIMD transcendentals land well above
    it.  BENCH_4.json records the absolute before/after stage numbers
    so the trajectory stays machine-readable either way.
    """
    n = FRONT_N
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    golden = engine.golden()
    encoder = engine.config.encoder
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=43)
    chunk = engine.config.chunk_size

    def run_fused():
        t_traces = t_encode = 0.0
        codes = []
        for lo in range(0, n, chunk):
            specs = population.specs[lo:lo + chunk]
            t0 = time.perf_counter()
            y = batch_biquad_traces(specs, bench_setup.stimulus,
                                    golden.times)
            t1 = time.perf_counter()
            codes.append(batch_codes(encoder, golden.x, y))
            t_encode += time.perf_counter() - t1
            t_traces += t1 - t0
            SCRATCH.give(y)
        return t_traces, t_encode, np.concatenate(codes)

    def run_pr2():
        t_traces = t_encode = 0.0
        codes = []
        for lo in range(0, n, chunk):
            specs = population.specs[lo:lo + chunk]
            t0 = time.perf_counter()
            responses = [BiquadFilter(s).response(bench_setup.stimulus)
                         for s in specs]
            y = batch_multitone_eval(responses, golden.times)
            t1 = time.perf_counter()
            codes.append(monitor_bank_codes_reference(encoder,
                                                      golden.x, y))
            t_encode += time.perf_counter() - t1
            t_traces += t1 - t0
        return t_traces, t_encode, np.concatenate(codes)

    fused = min((run_fused() for __ in range(3)),
                key=lambda r: r[0] + r[1])
    pr2 = min((run_pr2() for __ in range(3)),
              key=lambda r: r[0] + r[1])
    identical = bool(np.array_equal(fused[2], pr2[2]))
    combined_speedup = (pr2[0] + pr2[1]) / (fused[0] + fused[1])
    traces_speedup = pr2[0] / fused[0]
    encode_speedup = pr2[1] / fused[1]
    # Typical measurements on the scalar-sin reference machine:
    # combined 1.6-2.0x, encode 2.0-2.8x.  The floors sit below the
    # observed range so shared-runner noise cannot flake the job.
    required_combined = 1.4 if n >= 2000 else 1.1
    required_encode = 1.6 if n >= 2000 else 1.2

    rows = [["dies", str(n)],
            ["PR 2 traces / encode",
             f"{pr2[0] / n * 1e6:.1f} / {pr2[1] / n * 1e6:.1f} us/die"],
            ["fused traces / encode",
             f"{fused[0] / n * 1e6:.1f} / "
             f"{fused[1] / n * 1e6:.1f} us/die"],
            ["combined speedup", f"{combined_speedup:.2f}x"],
            ["encode speedup", f"{encode_speedup:.2f}x"]]
    comparisons = [
        Comparison("combined front-half speedup",
                   f">= {required_combined:.2f}x",
                   f"{combined_speedup:.2f}x",
                   match=combined_speedup >= required_combined),
        Comparison("encode speedup", f">= {required_encode:.2f}x",
                   f"{encode_speedup:.2f}x",
                   match=encode_speedup >= required_encode),
        Comparison("zone codes", "bit-identical", str(identical),
                   match=identical),
    ]
    report_writer("campaign_front_half", "\n".join([
        banner(f"CAMPAIGN: fused front half vs PR 2 ({n} dies)"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))

    baseline = json.loads(BASELINE_PATH.read_text())
    _write_json("BENCH_4", {
        "pr": 4,
        "dies": n,
        "samples_per_period": 2048,
        "front_half_per_die_s": {
            "before": {"traces": pr2[0] / n, "encode": pr2[1] / n,
                       "combined": (pr2[0] + pr2[1]) / n},
            "after": {"traces": fused[0] / n, "encode": fused[1] / n,
                      "combined": (fused[0] + fused[1]) / n},
        },
        "speedup": {"combined": combined_speedup,
                    "traces": traces_speedup,
                    "encode": encode_speedup},
        "committed_baseline_per_die_s": baseline["per_die_s"],
        "bit_identical_codes": identical,
    })

    assert identical
    assert combined_speedup >= required_combined
    assert encode_speedup >= required_encode


def test_stage_timings_vs_committed_baseline(bench_setup,
                                             report_writer):
    """Per-die stage timings must stay within the committed budget.

    The baseline records seconds-per-die for every pipeline stage on
    the reference machine; a stage slower than ``baseline *
    CAMPAIGN_STAGE_TOLERANCE`` (default 5x -- generous enough for
    shared-CI noise and slower runners, tight enough to catch a
    de-vectorized stage) fails the job.
    """
    n = min(STAGE_N, 1000)
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    engine.golden()  # warm: the guard measures marginal per-die cost
    population = montecarlo_dies(bench_setup.golden_spec, n,
                                 sigma_f0=0.03, seed=31)
    best: dict = {}
    for __ in range(3):
        result = engine.run(population, band=None)
        for stage in ("traces", "encode", "signature", "ndf"):
            value = result.timing[stage]
            if stage not in best or value < best[stage]:
                best[stage] = value
    per_die = {stage: value / n for stage, value in best.items()}

    baseline = json.loads(BASELINE_PATH.read_text())
    budgets = baseline["per_die_s"]
    rows = []
    failures = []
    for stage, measured in per_die.items():
        budget = budgets[stage] * STAGE_TOLERANCE
        rows.append([stage, f"{measured * 1e6:.2f} us",
                     f"{budgets[stage] * 1e6:.2f} us",
                     f"{budget * 1e6:.2f} us"])
        if measured > budget:
            failures.append(stage)
    report_writer("campaign_stage_guard", "\n".join([
        banner(f"CAMPAIGN: stage-timing regression guard ({n} dies, "
               f"tolerance {STAGE_TOLERANCE:.0f}x)"),
        format_table(["stage", "measured/die", "baseline/die",
                      "budget/die"], rows),
    ]))
    _write_json("campaign_stages", {
        "dies": n,
        "per_die_s": per_die,
        "baseline_per_die_s": budgets,
        "tolerance": STAGE_TOLERANCE,
        "regressed_stages": failures,
    })

    assert not failures, (
        f"stages regressed beyond {STAGE_TOLERANCE:.0f}x the committed "
        f"baseline: {failures}")


def test_streamed_campaign_bounds_memory(bench_setup, report_writer):
    """Streaming a fleet must not allocate the whole population.

    Peak traced allocations of a streamed run (small chunks) must stay
    well under the monolithic run's peak, and the verdicts must match
    bit for bit.
    """
    n = max(512, min(STAGE_N, 2000))
    chunk = 128
    engine = bench_setup.campaign_engine(samples_per_period=2048,
                                         cache=GoldenCache())
    engine.golden()

    tracemalloc.start()
    monolithic = engine.run(
        montecarlo_dies(bench_setup.golden_spec, n, sigma_f0=0.03,
                        seed=37), band=None)
    __, peak_monolithic = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    tracemalloc.start()
    streamed = engine.run_stream(
        stream_montecarlo_dies(bench_setup.golden_spec, n,
                               chunk_size=chunk, sigma_f0=0.03,
                               seed=37), band=None)
    __, peak_streamed = tracemalloc.get_traced_memory()
    tracemalloc.stop()

    identical = bool(np.array_equal(monolithic.ndfs, streamed.ndfs))
    ratio = peak_streamed / peak_monolithic
    rows = [["dies / chunk", f"{n} / {chunk}"],
            ["monolithic peak", f"{peak_monolithic / 1e6:.1f} MB"],
            ["streamed peak", f"{peak_streamed / 1e6:.1f} MB"],
            ["peak ratio", f"{ratio:.2f}"]]
    comparisons = [
        Comparison("streamed/monolithic peak", "< 0.7",
                   f"{ratio:.2f}", match=ratio < 0.7),
        Comparison("NDF vectors", "bit-identical", str(identical),
                   match=identical),
    ]
    report_writer("campaign_stream_memory", "\n".join([
        banner(f"CAMPAIGN: streamed memory bound ({n} dies)"),
        format_table(["quantity", "value"], rows),
        "",
        comparison_table(comparisons),
    ]))
    _write_json("campaign_stream_memory", {
        "dies": n, "chunk": chunk,
        "peak_monolithic_bytes": peak_monolithic,
        "peak_streamed_bytes": peak_streamed,
        "peak_ratio": ratio,
        "bit_identical": identical,
    })

    assert identical
    assert ratio < 0.7
