"""XTRA-D -- transistor-level Fig. 2 stage vs the analytic balance.

The signature flow uses the analytic current-balance monitor; the paper
fabricated the Fig. 2 circuit.  This benchmark DC-sweeps the simulated
transistor stage over a coarse grid and reports how far its trip locus
sits from the analytic boundary -- the modelling error of using the
balance equation in place of the full stage (channel-length modulation
and load asymmetry).
"""

import numpy as np

from repro.analysis import Comparison, banner, comparison_table, format_table
from repro.monitor import (
    TransistorMonitor,
    locus_rms_difference,
    table1_config,
    table1_monitor,
)


def test_transistor_vs_analytic(benchmark, report_writer):
    rows = []
    worst = 0.0
    for row in (3, 6):  # one arc, one diagonal
        analytic = table1_monitor(row)
        xtor = TransistorMonitor(table1_config(row))
        rms = benchmark.pedantic(
            locus_rms_difference, args=(analytic, xtor),
            kwargs={"points": 9}, rounds=1, iterations=1) \
            if row == 3 else locus_rms_difference(analytic, xtor, points=9)
        rows.append([f"curve {row}", f"{rms * 1e3:.1f} mV"])
        worst = max(worst, rms)

    # Bit agreement on a coarse grid away from the boundary.
    analytic = table1_monitor(3)
    xtor = TransistorMonitor(table1_config(3))
    scale = abs(analytic.decision(1.0, 1.0))
    agree = 0
    total = 0
    for x in np.linspace(0.1, 0.9, 5):
        for y in np.linspace(0.1, 0.9, 5):
            if abs(analytic.decision(x, y)) < 0.05 * scale:
                continue
            total += 1
            agree += int(analytic.bit(x, y) == xtor.bit(x, y))

    table = format_table(["monitor", "locus RMS gap"], rows)
    comparisons = [
        Comparison("trip-locus RMS gap", "small (balance ~ stage)",
                   f"{worst * 1e3:.1f} mV", match=worst < 0.03),
        Comparison("bit agreement off-boundary", f"{total}/{total}",
                   f"{agree}/{total}", match=agree == total),
    ]
    report = "\n".join([
        banner("TRANSISTOR-LEVEL: Fig. 2 stage vs analytic balance"),
        table,
        "",
        comparison_table(comparisons),
    ])
    report_writer("monitor_transistor", report)

    assert worst < 0.03
    assert agree == total
