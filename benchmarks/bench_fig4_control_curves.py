"""FIG4 -- experimental control curves + Monte Carlo range.

Paper Fig. 4 shows the six measured control curves; the paper validates
silicon against the foundry Monte Carlo envelope ("results lie in the
predicted range for Monte Carlo simulations").  The reproduction
regenerates the loci, the +-3 sigma process+mismatch envelope for a
representative curve, and asserts the containment the paper reports.
"""

import numpy as np

from repro.analysis import Comparison, ascii_xy_plot, banner, comparison_table
from repro.devices.process import MonteCarloSampler
from repro.monitor import boundary_spread, extract_locus, table1_monitor


def test_fig4_control_curves(benchmark, report_writer):
    loci = {row: extract_locus(table1_monitor(row), points=101)
            for row in range(1, 7)}

    sampler = MonteCarloSampler(rng=0)
    spread = benchmark(boundary_spread, table1_monitor(3), sampler, 40,
                       (0.0, 1.0), 41)

    # Overlay all six curves in one ASCII panel.
    all_x = np.concatenate([xs[~np.isnan(ys)]
                            for xs, ys in loci.values()])
    all_y = np.concatenate([ys[~np.isnan(ys)]
                            for xs, ys in loci.values()])
    overlay = ascii_xy_plot(all_x, all_y, width=61, height=21,
                            x_label="X (V)", y_label="Y (V)")

    fresh_die = MonteCarloSampler(rng=77).sample_die()
    fresh = table1_monitor(3).with_die(fresh_die)
    fresh_locus = fresh.locus_points(spread.xs)

    comparisons = [
        Comparison("curves extracted", 6,
                   sum(1 for xs, ys in loci.values()
                       if np.any(~np.isnan(ys))), match=True),
        Comparison("nominal inside MC envelope", "yes",
                   "yes" if spread.contains(spread.nominal) else "no",
                   match=spread.contains(spread.nominal)),
        Comparison("fresh die inside MC envelope",
                   "yes (paper: silicon in range)",
                   "yes" if spread.contains(fresh_locus, 0.9) else "no",
                   match=spread.contains(fresh_locus, 0.9)),
        Comparison("3-sigma spread (mV)", "tens of mV",
                   f"{spread.max_spread() * 1e3:.1f}",
                   match=5.0 < spread.max_spread() * 1e3 < 300.0),
    ]
    report = "\n".join([
        banner("FIG4: control curves and Monte Carlo envelope"),
        "All six control curves (X-Y window 0-1 V):",
        overlay,
        "",
        comparison_table(comparisons),
    ])
    report_writer("fig4_control_curves", report)

    assert spread.contains(spread.nominal)
    assert spread.contains(fresh_locus, 0.9)
