"""Shared fixtures for the benchmark/reproduction harness.

Each ``bench_*`` module regenerates one table or figure of the paper,
prints a paper-vs-measured comparison block, persists it under
``benchmarks/reports/`` and asserts the shape-level anchors.  The
``benchmark`` fixture times the central computation of each artifact.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.paper import paper_setup

REPORT_DIR = pathlib.Path(__file__).parent / "reports"


@pytest.fixture(scope="session")
def bench_setup():
    """One calibrated paper bench shared by all benchmarks."""
    return paper_setup()


@pytest.fixture(scope="session")
def golden_signature(bench_setup):
    return bench_setup.tester.golden_signature()


@pytest.fixture(scope="session")
def report_writer():
    """Callable persisting a report block and echoing it to stdout."""
    REPORT_DIR.mkdir(exist_ok=True)

    def write(name: str, text: str) -> None:
        path = REPORT_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print(f"\n{text}\n[report saved to {path}]")

    return write
