"""Black-box smoke test of a running screening service.

Fires concurrent ``/campaign`` and ``/diagnose`` requests from
several client identities at a live ``repro serve`` process, then
asserts the service contract from the outside:

* every client's reply is **bit-identical** to a solo library run of
  the same lot (coalescing is invisible);
* ``/diagnose`` returns ranked dictionary matches for failing dies;
* ``/metrics`` is a non-empty scrape carrying request counts, stage
  timings, engine-level stage histograms and coalesced batch sizes;
* the ``X-Repro-Request-Id`` a client sends comes back in the
  response body, joining the client's story to the server's
  spans/log lines.

Usage (the CI ``service-smoke`` job)::

    repro serve --port 8766 --samples 512 &
    python scripts/service_smoke.py --url http://127.0.0.1:8766 \
        --samples 512 --clients 4 --dies 8 \
        --metrics-out metrics-scrape.txt

Exits non-zero on the first violated assertion.
"""

from __future__ import annotations

import argparse
import sys
import threading

from repro.campaign import montecarlo_dies
from repro.paper import paper_setup
from repro.service import ServiceClient


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--url", default="http://127.0.0.1:8766")
    parser.add_argument("--samples", type=int, default=512,
                        help="must match the server's --samples")
    parser.add_argument("--clients", type=int, default=4)
    parser.add_argument("--dies", type=int, default=8)
    parser.add_argument("--sigma", type=float, default=0.05)
    parser.add_argument("--metrics-out", default=None,
                        help="write the final /metrics scrape here")
    args = parser.parse_args(argv)

    probe = ServiceClient(args.url, client_id="smoke-probe")
    health = probe.wait_ready(timeout=180.0)
    print(f"service ready: {health}")

    # The solo references: same bench, same deterministic lots.
    setup = paper_setup(samples_per_period=args.samples)
    engine = setup.campaign_engine(samples_per_period=args.samples)
    seeds = list(range(args.clients))
    lots = {seed: montecarlo_dies(setup.golden_spec, args.dies,
                                  sigma_f0=args.sigma, seed=seed)
            for seed in seeds}
    solo = {seed: engine.run(lot) for seed, lot in lots.items()}

    # Concurrent campaigns, one client identity per lot: the server
    # coalesces these into shared passes; replies must not care.
    replies = {}
    errors = []
    barrier = threading.Barrier(len(seeds))

    def fire(seed: int) -> None:
        try:
            barrier.wait()
            client = ServiceClient(args.url, client_id=f"lot-{seed}")
            reply = client.campaign(kind="mc", dies=args.dies,
                                    sigma=args.sigma, seed=seed)
            assert reply["request_id"] == client.last_request_id, \
                f"lot {seed}: request id did not round-trip"
            replies[seed] = reply
        except BaseException as error:
            errors.append((seed, error))

    threads = [threading.Thread(target=fire, args=(seed,))
               for seed in seeds]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    if errors:
        for seed, error in errors:
            print(f"lot {seed} failed: {error}", file=sys.stderr)
        return 1

    for seed in seeds:
        reference, reply = solo[seed], replies[seed]
        assert reply["ndfs"] == [float(v) for v in reference.ndfs], \
            f"lot {seed}: NDFs differ from the solo run"
        assert reply["verdicts"] == [bool(v)
                                     for v in reference.verdicts], \
            f"lot {seed}: verdicts differ from the solo run"
        assert reply["threshold"] == reference.threshold, \
            f"lot {seed}: threshold differs"
        assert reply["labels"] == reference.labels, \
            f"lot {seed}: labels differ"
    print(f"{len(seeds)} concurrent campaigns bit-identical to solo "
          f"runs ({args.dies} dies each)")

    # One diagnose round-trip: clearly-failing sweep dies must come
    # back with ranked fault candidates.
    diagnosis = probe.diagnose(kind="sweep",
                               deviations=[-0.15, 0.15],
                               top_k=3)["diagnosis"]
    assert diagnosis["dies"] == 2, diagnosis
    assert all(match["candidates"] for match in diagnosis["matches"])
    print(f"diagnose: {diagnosis['dies']} failing dies matched "
          f"against {diagnosis['faults']} dictionary faults")

    # The scrape must report the traffic this script just generated.
    scrape = probe.metrics_text()
    assert scrape.strip(), "empty /metrics scrape"
    for needle in ("repro_requests_total",
                   "repro_session_requests_total",
                   "repro_stage_seconds_sum",
                   "repro_coalesced_requests_count",
                   "repro_coalesced_dies_sum",
                   "repro_uptime_seconds",
                   # Engine-level series recorded by the pipeline
                   # itself (repro.obs): stage histograms + campaign
                   # counter must surface on the server scrape.
                   "repro_engine_stage_seconds_bucket",
                   "repro_engine_stage_seconds_bucket{le=\"+Inf\","
                   "stage=\"encode\"}",
                   "repro_engine_campaigns_total"):
        assert needle in scrape, f"missing {needle} in /metrics"
    lines = len(scrape.strip().splitlines())
    print(f"/metrics scrape: {lines} series lines")
    print(f"request-id round-trip verified for {len(seeds)} lots")
    if args.metrics_out:
        with open(args.metrics_out, "w", encoding="utf-8") as sink:
            sink.write(scrape)
        print(f"scrape written to {args.metrics_out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
