"""Sharded-campaign smoke: kill a worker mid-shard, merge bit-identical.

What the CI ``sharded-campaign-smoke`` job runs:

**Phase A -- worker-loss drill (library).**  Run a sharded campaign
with ``shard.worker.kill`` armed in the first worker's environment
(through ``REPRO_SHARD_WORKER_FAULTS``): the worker SIGKILLs itself
right after a progress report.  The coordinator must notice, respawn
the slot, reassign the shard *resuming from its checkpoint*, and the
merged result must still be **bit-identical** to the monolithic
in-process run.  The whole drill is traced; the exported Chrome trace
must show the re-dispatch (a ``shard.dispatch`` span with
``attempt > 1``) and the worker-side spans on their own pid tracks.
The ``shard_reassigned_total`` metric must tick.

**Phase B -- CLI equivalence.**  ``repro campaign --shards N --json``
and ``--shards 1 --json`` must answer identically (everything except
wall-clock timings and the shard stats themselves).

**Phase C -- loopback-TCP partition drill.**  The coordinator listens
on ``127.0.0.1`` and two ``repro shard-worker --connect`` processes
dial in; one is partitioned mid-shard (its connection severs abruptly
right after a progress report, checkpoints having travelled inline --
no shared filesystem).  The survivor must take the shard over,
resume from the shipped checkpoint, and the merged verdicts must be
**bit-identical** to the monolithic run.

Usage::

    python scripts/sharded_smoke.py --dies 24 --samples 512 --shards 3

Exits non-zero on the first violated assertion.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys


def _parse_args() -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--dies", type=int, default=24)
    parser.add_argument("--samples", type=int, default=512)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--chunk", type=int, default=2,
                        help="worker chunk size (small: several "
                             "checkpoints per shard)")
    parser.add_argument("--seed", type=int, default=3)
    parser.add_argument("--sigma", type=float, default=0.05)
    parser.add_argument("--trace-out", default="shard-trace.json")
    return parser.parse_args()


def phase_a_kill_drill(args) -> None:
    """Kill one worker mid-shard; assert reassignment + bit-identity."""
    import numpy as np

    from repro.campaign import CampaignEngine, montecarlo_dies
    from repro.monitor.configurations import table1_encoder
    from repro.obs import Tracer, install_tracer, uninstall_tracer
    from repro.obs.metrics import default_registry
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS
    from repro.shard import MonteCarloFleet

    engine = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=args.samples)
    reference = engine.run(
        montecarlo_dies(PAPER_BIQUAD, args.dies, sigma_f0=args.sigma,
                        seed=args.seed), band="auto")
    fleet = MonteCarloFleet(PAPER_BIQUAD, args.dies,
                            sigma_f0=args.sigma, seed=args.seed,
                            chunk_size=args.chunk)
    # Arm the kill in the first worker: SIGKILL right after its
    # second progress report (so a durable mid-shard checkpoint
    # exists and the resume is a true resume, not a restart).
    os.environ["REPRO_SHARD_WORKER_FAULTS"] = "shard.worker.kill:1:1"
    before = default_registry().counter("shard_reassigned_total").value
    tracer = Tracer()
    install_tracer(tracer)
    try:
        sharded = engine.run_sharded(fleet, shards=args.shards,
                                     band="auto", heartbeat=15.0)
    finally:
        uninstall_tracer()
        os.environ.pop("REPRO_SHARD_WORKER_FAULTS", None)

    assert np.array_equal(sharded.ndfs, reference.ndfs), \
        "merged NDFs differ from the monolithic run"
    assert np.array_equal(sharded.verdicts, reference.verdicts)
    assert np.array_equal(sharded.f0_deviations,
                          reference.f0_deviations)
    assert list(sharded.labels) == list(reference.labels)
    assert sharded.threshold == reference.threshold
    stats = sharded.shard_stats
    assert stats["reassigned"] >= 1, stats
    assert stats["completed"] == stats["planned"], stats
    after = default_registry().counter("shard_reassigned_total").value
    assert after > before, "shard_reassigned_total did not tick"

    path = tracer.write_chrome_trace(args.trace_out)
    events = json.load(open(path))["traceEvents"]
    dispatches = [e for e in events if e["name"] == "shard.dispatch"]
    redispatches = [e for e in dispatches
                    if e["args"].get("attempt", 1) > 1]
    assert redispatches, "no re-dispatch span in the trace"
    worker_pids = {e["pid"] for e in events
                   if e["name"] == "shard.worker.run"}
    assert worker_pids and os.getpid() not in worker_pids, \
        "worker spans must ride home on their own pid tracks"
    resumed = [e for e in events if e["name"] == "shard.worker.run"
               and e["args"]["resume_at"] > e["args"]["lo"]]
    assert resumed, \
        "reassigned shard restarted from zero instead of resuming"
    print(f"phase A ok: {int(stats['reassigned'])} reassignment(s), "
          f"bit-identical merge, {len(events)} spans -> {path} "
          f"(resumed at die {resumed[0]['args']['resume_at']} of "
          f"shard [{resumed[0]['args']['lo']}, "
          f"{resumed[0]['args']['hi']}))")


def phase_b_cli_equivalence(args) -> None:
    """--shards N and --shards 1 answer identically over the CLI."""
    def run(shards: int) -> dict:
        command = [sys.executable, "-m", "repro", "campaign",
                   "--dies", str(args.dies), "--seed", str(args.seed),
                   "--sigma", str(args.sigma),
                   "--samples", str(args.samples),
                   "--shards", str(shards), "--json"]
        if shards > 1:
            command += ["--shard-chunk", str(args.chunk)]
        out = subprocess.run(command, capture_output=True, text=True,
                             timeout=600)
        assert out.returncode == 0, out.stderr
        payload = json.loads(out.stdout)
        payload.pop("timing")
        payload.pop("executor")
        payload.pop("shards")
        return payload

    many, one = run(args.shards), run(1)
    assert many == one, (many, one)
    print(f"phase B ok: --shards {args.shards} == --shards 1 "
          f"({args.dies} dies over the CLI)")


def phase_c_tcp_partition_drill(args) -> None:
    """Two TCP workers over loopback; one partitioned mid-shard."""
    import threading

    import numpy as np

    from repro.campaign import CampaignEngine, montecarlo_dies
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS
    from repro.shard import MonteCarloFleet, ShardCoordinator

    engine = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=args.samples)
    reference = engine.run(
        montecarlo_dies(PAPER_BIQUAD, args.dies, sigma_f0=args.sigma,
                        seed=args.seed), band="auto")
    fleet = MonteCarloFleet(PAPER_BIQUAD, args.dies,
                            sigma_f0=args.sigma, seed=args.seed,
                            chunk_size=args.chunk)
    coordinator = ShardCoordinator(
        engine.config, engine.band().threshold, fleet,
        shards=args.shards, heartbeat=15.0,
        listen=("127.0.0.1", 0))
    host, port = coordinator.address
    outcome = {}

    def run() -> None:
        try:
            outcome["result"] = coordinator.run()
        except BaseException as error:
            outcome["error"] = error

    thread = threading.Thread(target=run, daemon=True)
    thread.start()

    def start_worker(faults=None):
        env = dict(os.environ)
        env.pop("REPRO_FAULTS", None)
        env.pop("REPRO_SHARD_WORKER_FAULTS", None)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + (
            os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH") else "")
        if faults:
            env["REPRO_FAULTS"] = faults
        return subprocess.Popen(
            [sys.executable, "-m", "repro", "shard-worker",
             "--connect", f"{host}:{port}"], env=env)

    # The doomed worker's connection severs right after its second
    # progress report -- past an inline-shipped checkpoint.
    doomed = start_worker(faults="shard.worker.kill:1:1")
    survivor = start_worker()
    thread.join(timeout=600)
    doomed.wait(timeout=30)
    survivor.wait(timeout=30)
    assert not thread.is_alive(), "TCP campaign did not finish"
    assert "error" not in outcome, outcome.get("error")
    merged, stats = outcome["result"]
    assert np.array_equal(merged.values(np.empty(0)),
                          reference.ndfs), \
        "TCP merge differs from the monolithic run"
    assert merged.complete
    assert stats["reassigned"] >= 1, stats
    assert stats["completed"] == stats["planned"], stats
    print(f"phase C ok: partition mid-shard over loopback TCP, "
          f"{int(stats['reassigned'])} reassignment(s), "
          f"bit-identical merge from inline checkpoints "
          f"({int(stats['workers'])} workers on {host}:{port})")


def main() -> int:
    args = _parse_args()
    phase_a_kill_drill(args)
    phase_b_cli_equivalence(args)
    phase_c_tcp_partition_drill(args)
    print("sharded smoke: all assertions held")
    return 0


if __name__ == "__main__":
    sys.exit(main())
