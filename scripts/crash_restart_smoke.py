"""Crash-restart smoke: kill -9 everything, lose nothing.

Two phases, both driven against real processes (the CI
``crash-restart-smoke`` job):

**Phase A -- warm-state persistence.**  Boot ``repro serve --store``,
warm it (golden + band + dictionary written through to the store),
screen a lot, then ``kill -9`` the server.  A restarted server over
the same store must come up warm with **zero recompute** -- the
``/healthz``/``/metrics`` store counters prove it (hits only, no
writes) -- and re-screening the same lot must answer bit-identically.

**Phase B -- crash-safe streamed campaign.**  Launch
``repro campaign --stream --checkpoint`` as a subprocess and
``kill -9`` it the moment its first checkpoint lands.  Re-running the
same command resumes behind the checkpoint; the persisted fleet stats
(NDFs, deviations, verdict threshold, labels) must match an
uninterrupted in-process reference **bit for bit**.

Usage::

    python scripts/crash_restart_smoke.py --port 8767 --samples 512

Exits non-zero on the first violated assertion.
"""

from __future__ import annotations

import argparse
import os
import signal
import subprocess
import sys
import tempfile
import time

import numpy as np


def _spawn_serve(args, store_root: str) -> subprocess.Popen:
    command = [
        sys.executable, "-m", "repro", "serve",
        "--port", str(args.port), "--samples", str(args.samples),
        "--window-ms", "5", "--store", store_root,
    ]
    return subprocess.Popen(command, env=_env(),
                            stdout=subprocess.DEVNULL,
                            stderr=subprocess.STDOUT)


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(sys.path)
    return env


def _kill9(process: subprocess.Popen) -> None:
    process.send_signal(signal.SIGKILL)
    process.wait(timeout=30)


def phase_a_server_restart(args, store_root: str) -> None:
    from repro.service import ServiceClient

    client = ServiceClient(f"http://127.0.0.1:{args.port}",
                           client_id="crash-smoke")

    server = _spawn_serve(args, store_root)
    try:
        health = client.wait_ready(timeout=300.0)
        store = health["store"]
        assert store["writes"] >= 3, \
            f"cold boot should write golden+band+dictionary: {store}"
        first = client.campaign(kind="mc", dies=args.dies,
                                sigma=0.05, seed=17)
        print(f"phase A: cold boot wrote {store['writes']} artifacts, "
              f"screened {first['dies']} dies "
              f"({first['pass']} pass)")
    finally:
        _kill9(server)

    server = _spawn_serve(args, store_root)
    try:
        health = client.wait_ready(timeout=300.0)
        store = health["store"]
        assert store["writes"] == 0, \
            f"restart must not recompute anything: {store}"
        assert store["hits"] >= 3, \
            f"restart must warm from the store: {store}"
        assert store["quarantined"] == 0, f"unexpected damage: {store}"
        second = client.campaign(kind="mc", dies=args.dies,
                                 sigma=0.05, seed=17)
        assert second["ndfs"] == first["ndfs"], \
            "restarted server's NDFs differ"
        assert second["verdicts"] == first["verdicts"], \
            "restarted server's verdicts differ"
        assert second["threshold"] == first["threshold"], \
            "restarted server's threshold differs"
        scrape = client.metrics_text()
        assert "repro_store_hits" in scrape, "store metrics missing"
        hits_line = [line for line in scrape.splitlines()
                     if line.startswith("repro_store_hits")]
        print(f"phase A: restart warm with zero recompute "
              f"({hits_line[0].strip()}), replies bit-identical")
    finally:
        _kill9(server)


def phase_b_campaign_resume(args, work_dir: str) -> None:
    from repro.campaign import StreamCheckpoint, stream_montecarlo_dies
    from repro.paper import paper_setup

    checkpoint = os.path.join(work_dir, "campaign.npz")
    command = [
        sys.executable, "-m", "repro", "campaign",
        "--dies", str(args.stream_dies), "--stream",
        "--chunk", str(args.chunk), "--sigma", "0.05", "--seed", "29",
        "--samples", str(args.samples),
        "--checkpoint", checkpoint, "--json",
    ]

    victim = subprocess.Popen(command, env=_env(),
                              stdout=subprocess.DEVNULL,
                              stderr=subprocess.STDOUT)
    deadline = time.monotonic() + 600.0
    while not os.path.exists(checkpoint) \
            and victim.poll() is None \
            and time.monotonic() < deadline:
        time.sleep(0.002)
    assert os.path.exists(checkpoint), \
        "campaign never wrote its first checkpoint"
    _kill9(victim)
    assert victim.returncode == -signal.SIGKILL, \
        f"expected SIGKILL death, got {victim.returncode}"

    partial = StreamCheckpoint.load(checkpoint)
    assert not partial.complete, "campaign finished before the kill"
    assert 0 < partial.next_index < args.stream_dies, \
        f"kill did not land mid-campaign (at {partial.next_index})"
    print(f"phase B: killed -9 at die {partial.next_index}"
          f"/{args.stream_dies}")

    rerun = subprocess.run(command, env=_env(),
                           stdout=subprocess.PIPE,
                           stderr=subprocess.STDOUT, timeout=600)
    assert rerun.returncode == 0, \
        f"resume failed:\n{rerun.stdout.decode(errors='replace')}"

    final = StreamCheckpoint.load(checkpoint)
    assert final.complete and final.num_dies == args.stream_dies

    # Uninterrupted reference, built exactly the way the CLI builds
    # its engine and stream.
    setup = paper_setup(samples_per_period=2048)
    engine = setup.campaign_engine(samples_per_period=args.samples,
                                   tolerance=0.05)
    reference = engine.run_stream(
        stream_montecarlo_dies(setup.golden_spec, args.stream_dies,
                               chunk_size=args.chunk, sigma_f0=0.05,
                               seed=29),
        band="auto")
    resumed_ndfs = final.values(np.empty(0))
    np.testing.assert_array_equal(resumed_ndfs, reference.ndfs)
    np.testing.assert_array_equal(final.f0_deviations(),
                                  reference.f0_deviations)
    assert final.threshold == reference.threshold
    assert final.labels == reference.labels
    verdicts = resumed_ndfs <= final.threshold
    np.testing.assert_array_equal(verdicts, reference.verdicts)
    print(f"phase B: resumed campaign bit-identical over "
          f"{args.stream_dies} dies "
          f"({int(verdicts.sum())} pass / "
          f"{int((~verdicts).sum())} fail)")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=8767)
    parser.add_argument("--samples", type=int, default=512)
    parser.add_argument("--dies", type=int, default=16,
                        help="lot size for the served phase")
    parser.add_argument("--stream-dies", type=int, default=3000,
                        help="fleet size of the killed campaign")
    parser.add_argument("--chunk", type=int, default=100)
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-crash-") as work:
        phase_a_server_restart(args, os.path.join(work, "store"))
        phase_b_campaign_resume(args, work)
    print("crash-restart smoke: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
