"""Multi-signature campaigns: the channel-0 bit-identity contract.

``engine.run(..., encoders=[enc0, enc1])`` screens through two monitor
banks off one front-half pass.  The contract, mirrored after
``test_front_half.py``: for every population kind and every executor,

* channel 0 of the multi-signature result (NDFs, verdicts, packed
  batch) is **bit-identical** to the plain single-channel run;
* channel k equals an independent single-channel engine configured
  with encoder k -- nothing leaks between channels;
* the combined OR-verdict fails a die iff any channel fails it.
"""

import numpy as np
import pytest

from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    ProcessPoolExecutor,
    SharedMemoryExecutor,
    fault_dictionary,
    montecarlo_dies,
    montecarlo_monitor_banks,
    stream_montecarlo_dies,
    trace_population,
)
from repro.campaign.batch import batch_biquad_traces
from repro.filters.towthomas import TowThomasValues
from repro.monitor.configurations import table1_bank, table1_encoder
from repro.monitor.second_signature import second_signature_bank
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def encoders():
    return [table1_encoder(), second_signature_bank(-0.10, 1e-5)]


@pytest.fixture(scope="module")
def engine(encoders):
    return CampaignEngine.from_parts(encoders[0], PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


def _assert_channel0_identity(single, multi):
    assert multi.channel_ndfs is not None
    assert multi.channel_ndfs.shape == (single.num_dies, 2)
    assert np.array_equal(multi.ndfs, single.ndfs)
    assert np.array_equal(multi.channel_ndfs[:, 0], single.ndfs)
    if single.verdicts is not None:
        assert np.array_equal(multi.verdicts, single.verdicts)
        assert np.array_equal(multi.channel_verdicts[:, 0],
                              single.verdicts)
        assert multi.channel_thresholds[0] == single.threshold
    if single.signature_batch is not None:
        assert multi.multi_signature_batch is not None
        for a, b in ((multi.signature_batch, single.signature_batch),
                     (multi.multi_signature_batch.channel(0),
                      single.signature_batch)):
            assert np.array_equal(a.codes, b.codes)
            assert np.array_equal(a.durations, b.durations)
            assert np.array_equal(a.row_offsets, b.row_offsets)


def _assert_channel1_matches_independent(engine, encoders, population,
                                         multi):
    other = CampaignEngine.from_parts(encoders[1], PAPER_STIMULUS,
                                      PAPER_BIQUAD,
                                      samples_per_period=SAMPLES,
                                      cache=GoldenCache())
    reference = other.run(population, band="auto",
                          keep_signatures=True)
    assert np.array_equal(multi.channel_ndfs[:, 1], reference.ndfs)
    assert multi.channel_thresholds[1] == reference.threshold
    assert np.array_equal(multi.channel_verdicts[:, 1],
                          reference.verdicts)
    channel = multi.multi_signature_batch.channel(1)
    assert np.array_equal(channel.codes,
                          reference.signature_batch.codes)
    assert np.array_equal(channel.durations,
                          reference.signature_batch.durations)


def test_spec_population_channel0_identity(engine, encoders):
    population = montecarlo_dies(PAPER_BIQUAD, 20, sigma_f0=0.05,
                                 seed=11)
    single = engine.run(population, band="auto", keep_signatures=True)
    multi = engine.run(population, band="auto", keep_signatures=True,
                       encoders=encoders)
    _assert_channel0_identity(single, multi)
    _assert_channel1_matches_independent(engine, encoders, population,
                                         multi)


def test_fault_population_channel0_identity(engine, encoders):
    population, __ = fault_dictionary(
        TowThomasValues.from_spec(PAPER_BIQUAD))
    single = engine.run(population, band="auto", keep_signatures=True)
    multi = engine.run(population, band="auto", keep_signatures=True,
                       encoders=encoders)
    _assert_channel0_identity(single, multi)
    _assert_channel1_matches_independent(engine, encoders, population,
                                         multi)


def test_trace_population_channel0_identity(engine, encoders):
    golden = engine.golden()
    dies = montecarlo_dies(PAPER_BIQUAD, 12, sigma_f0=0.06, seed=3)
    stack = batch_biquad_traces(dies.specs, PAPER_STIMULUS,
                                golden.times)
    population = trace_population(np.array(stack))
    single = engine.run(population, band="auto", keep_signatures=True)
    multi = engine.run(population, band="auto", keep_signatures=True,
                       encoders=encoders)
    _assert_channel0_identity(single, multi)
    _assert_channel1_matches_independent(engine, encoders, population,
                                         multi)


@pytest.mark.parametrize("executor_factory", [
    lambda: ProcessPoolExecutor(max_workers=2),
    lambda: SharedMemoryExecutor(max_workers=2),
], ids=["pool", "shm"])
def test_executors_bit_identical_multichannel(encoders,
                                              executor_factory):
    population = montecarlo_dies(PAPER_BIQUAD, 24, sigma_f0=0.05,
                                 seed=7)
    serial_engine = CampaignEngine.from_parts(
        encoders[0], PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=SAMPLES, cache=GoldenCache())
    serial = serial_engine.run(population, band="auto",
                               keep_signatures=True, encoders=encoders)
    executor = executor_factory()
    try:
        pooled_engine = CampaignEngine.from_parts(
            encoders[0], PAPER_STIMULUS, PAPER_BIQUAD,
            samples_per_period=SAMPLES, cache=GoldenCache(),
            executor=executor)
        pooled = pooled_engine.run(population, band="auto",
                                   keep_signatures=True,
                                   encoders=encoders)
    finally:
        executor.shutdown()
    assert np.array_equal(serial.channel_ndfs, pooled.channel_ndfs)
    assert np.array_equal(serial.channel_verdicts,
                          pooled.channel_verdicts)
    for k in range(2):
        a = serial.multi_signature_batch.channel(k)
        b = pooled.multi_signature_batch.channel(k)
        assert np.array_equal(a.codes, b.codes)
        assert np.array_equal(a.durations, b.durations)


def test_streamed_multichannel_matches_monolithic(engine, encoders):
    population = montecarlo_dies(PAPER_BIQUAD, 30, sigma_f0=0.05,
                                 seed=13)
    monolithic = engine.run(population, band="auto",
                            keep_signatures=True, encoders=encoders)
    streamed = engine.run_stream(
        stream_montecarlo_dies(PAPER_BIQUAD, 30, chunk_size=7,
                               sigma_f0=0.05, seed=13),
        band="auto", keep_signatures=True, encoders=encoders)
    assert np.array_equal(monolithic.channel_ndfs,
                          streamed.channel_ndfs)
    assert np.array_equal(monolithic.channel_verdicts,
                          streamed.channel_verdicts)
    for k in range(2):
        a = monolithic.multi_signature_batch.channel(k)
        b = streamed.multi_signature_batch.channel(k)
        assert np.array_equal(a.codes, b.codes)
        assert np.array_equal(a.durations, b.durations)
        assert np.array_equal(a.row_offsets, b.row_offsets)


def test_combined_verdict_is_or_over_channels(engine, encoders):
    population = montecarlo_dies(PAPER_BIQUAD, 25, sigma_f0=0.05,
                                 seed=21)
    multi = engine.run(population, band="auto", encoders=encoders)
    expected = np.all(multi.channel_verdicts, axis=1)
    assert np.array_equal(multi.combined_verdicts, expected)
    assert multi.combined_fail_count \
        == int(np.count_nonzero(~expected))
    # The OR can only tighten the screen, never loosen it.
    assert multi.combined_fail_count >= multi.fail_count
    # Single-channel results degrade to the plain verdict.
    single = engine.run(population, band="auto")
    assert np.array_equal(single.combined_verdicts, single.verdicts)
    assert single.num_channels == 1


def test_empty_population_multichannel(engine, encoders):
    multi = engine.run([], band="auto", keep_signatures=True,
                       encoders=encoders)
    assert multi.num_dies == 0
    assert multi.channel_ndfs.shape == (0, 2)
    assert multi.multi_signature_batch.num_channels == 2
    assert len(multi.multi_signature_batch) == 0


def test_unsupported_populations_raise(engine, encoders):
    multi_engine = engine.with_encoders(encoders)
    with pytest.raises(ValueError, match="single-channel"):
        multi_engine.run_noise(
            montecarlo_dies(PAPER_BIQUAD, 2, sigma_f0=0.03, seed=1),
            repeats=2)
    with pytest.raises(ValueError, match="primary monitor bank"):
        multi_engine.run(
            montecarlo_monitor_banks(table1_bank(), 2, seed=4),
            band=None)


def test_diagnose_requires_multi_batch(engine, encoders):
    from repro.diagnosis import compile_multi_fault_dictionary

    multi_dict = compile_multi_fault_dictionary(engine, encoders)
    population = montecarlo_dies(PAPER_BIQUAD, 4, sigma_f0=0.2,
                                 seed=2)
    plain = engine.run(population, band="auto", keep_signatures=True)
    with pytest.raises(ValueError, match="multi-signature"):
        plain.diagnose(multi_dict)
