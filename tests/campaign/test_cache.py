"""Golden-cache behaviour: content keys, hits/misses, eviction."""

import pytest

from repro.campaign import CampaignConfig, CampaignEngine, GoldenCache
from repro.campaign.cache import encoder_key, spec_key, stimulus_key
from repro.devices.process import MonteCarloSampler
from repro.monitor.configurations import table1_bank, table1_encoder
from repro.monitor.montecarlo import encoder_samples
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign


def _config(encoder=None, samples=512, spec=PAPER_BIQUAD):
    return CampaignConfig(encoder if encoder is not None
                          else table1_encoder(), PAPER_STIMULUS, spec,
                          samples_per_period=samples)


def test_golden_miss_then_hit():
    cache = GoldenCache()
    engine = CampaignEngine(_config(), cache=cache)
    engine.golden()
    assert cache.info.misses == 1
    assert cache.info.hits == 0
    engine.golden()
    assert cache.info.hits == 1
    assert cache.info.misses == 1


def test_rebuilt_identical_encoder_hits():
    """Content keying: a fresh-but-equal Table I bank must hit."""
    cache = GoldenCache()
    CampaignEngine(_config(table1_encoder()), cache=cache).golden()
    CampaignEngine(_config(table1_encoder()), cache=cache).golden()
    assert cache.info.hits == 1
    assert cache.info.misses == 1


def test_varied_encoder_misses():
    """A Monte Carlo-varied bank is different content: must miss."""
    cache = GoldenCache()
    CampaignEngine(_config(), cache=cache).golden()
    varied = encoder_samples(table1_bank(),
                             MonteCarloSampler(rng=0), 1)[0]
    CampaignEngine(_config(varied), cache=cache).golden()
    assert cache.info.misses == 2
    assert cache.info.hits == 0


def test_different_spec_and_sampling_miss():
    cache = GoldenCache()
    engine = CampaignEngine(_config(samples=512), cache=cache)
    engine.golden()
    CampaignEngine(_config(samples=1024), cache=cache).golden()
    CampaignEngine(
        _config(spec=PAPER_BIQUAD.with_f0_deviation(0.1)),
        cache=cache).golden()
    assert cache.info.misses == 3
    assert cache.info.hits == 0


def test_calibration_cached_per_deviation_set():
    cache = GoldenCache()
    engine = CampaignEngine(_config(), cache=cache)
    cal_a = engine.calibration([-0.05, 0.0, 0.05])
    cal_b = engine.calibration([-0.05, 0.0, 0.05])
    assert cal_a is cal_b
    cal_c = engine.calibration([-0.10, 0.0, 0.10])
    assert cal_c is not cal_a


def test_lru_eviction():
    cache = GoldenCache(maxsize=2)
    for samples in (256, 512, 1024):
        CampaignEngine(_config(samples=samples), cache=cache).golden()
    assert cache.info.size == 2
    # Oldest (256) evicted: next lookup is a miss again.
    CampaignEngine(_config(samples=256), cache=cache).golden()
    assert cache.info.misses == 4


def test_content_key_helpers_stable():
    assert stimulus_key(PAPER_STIMULUS) == stimulus_key(PAPER_STIMULUS)
    assert spec_key(PAPER_BIQUAD) == spec_key(PAPER_BIQUAD)
    assert (spec_key(PAPER_BIQUAD)
            != spec_key(PAPER_BIQUAD.with_f0_deviation(0.01)))
    assert encoder_key(table1_encoder()) == encoder_key(table1_encoder())


def test_cache_clear_resets_counters():
    cache = GoldenCache()
    engine = CampaignEngine(_config(), cache=cache)
    engine.golden()
    cache.clear()
    info = cache.info
    assert (info.hits, info.misses, info.size) == (0, 0, 0)
    assert info.requests == 0
