"""Campaign engine: equivalence with the per-die flow, edge cases."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    deviation_sweep_population,
    fault_dictionary,
    montecarlo_dies,
    montecarlo_monitor_banks,
    parameter_grid,
    temperature_corners,
)
from repro.core.decision import DecisionBand
from repro.core.testflow import SignatureTester
from repro.devices.process import MonteCarloSampler
from repro.filters.biquad import BiquadFilter
from repro.filters.towthomas import TowThomasValues
from repro.monitor.configurations import table1_bank, table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 1024


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


def test_bit_identical_with_per_die_flow(engine):
    """Batched NDFs must equal the serial refine-off flow bit for bit."""
    population = montecarlo_dies(PAPER_BIQUAD, 12, sigma_f0=0.04,
                                 seed=5)
    result = engine.run(population, band=None)
    tester = SignatureTester(table1_encoder(), PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=SAMPLES, refine=False)
    serial = np.asarray([tester.ndf_of(BiquadFilter(s))
                         for s in population.specs])
    assert np.array_equal(serial, result.ndfs)


def test_close_to_refined_flow(engine):
    """Grid quantization keeps NDFs within a small gap of refined."""
    population = deviation_sweep_population(
        PAPER_BIQUAD, [-0.10, -0.05, 0.05, 0.10])
    result = engine.run(population, band=None)
    tester = SignatureTester(table1_encoder(), PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=SAMPLES, refine=True)
    refined = np.asarray(
        [tester.ndf_of(BiquadFilter(s)) for s in population.specs])
    assert np.max(np.abs(refined - result.ndfs)) < 0.01


def test_empty_population(engine):
    result = engine.run(montecarlo_dies(PAPER_BIQUAD, 0), band="auto")
    assert result.num_dies == 0
    assert result.ndfs.shape == (0,)
    assert result.verdicts.shape == (0,)
    assert result.pass_rate == 1.0
    assert np.isnan(result.ndf_percentile(95))


def test_single_die(engine):
    result = engine.run(montecarlo_dies(PAPER_BIQUAD, 1, sigma_f0=0.0),
                        band="auto")
    assert result.num_dies == 1
    # A zero-deviation die is the golden unit: NDF must be exactly 0.
    assert result.ndfs[0] == 0.0
    assert bool(result.verdicts[0])


def test_band_modes(engine):
    population = deviation_sweep_population(PAPER_BIQUAD, [0.0, 0.15])
    no_band = engine.run(population, band=None)
    assert no_band.verdicts is None
    assert no_band.threshold is None
    explicit = engine.run(population, band=DecisionBand(0.05))
    assert explicit.threshold == 0.05
    raw = engine.run(population, band=0.05)
    assert np.array_equal(explicit.verdicts, raw.verdicts)
    auto = engine.run(population, band="auto")
    assert auto.verdicts[0] and not auto.verdicts[1]


def test_raw_spec_list(engine):
    specs = [PAPER_BIQUAD, PAPER_BIQUAD.with_f0_deviation(0.2)]
    result = engine.run(specs, band="auto")
    assert result.num_dies == 2
    assert result.ndfs[0] == 0.0
    assert not result.verdicts[1]


def test_deterministic_seeding_is_chunk_invariant():
    """Die i's parameters depend on (seed, i) only."""
    small = montecarlo_dies(PAPER_BIQUAD, 5, sigma_f0=0.03, seed=9)
    large = montecarlo_dies(PAPER_BIQUAD, 50, sigma_f0=0.03, seed=9)
    assert np.array_equal(small.f0_deviations,
                          large.f0_deviations[:5])
    other_seed = montecarlo_dies(PAPER_BIQUAD, 5, sigma_f0=0.03,
                                 seed=10)
    assert not np.array_equal(small.f0_deviations,
                              other_seed.f0_deviations)


def test_monitor_variation_measures_nonzero_margin(engine):
    """Varied banks vs the nominal golden: margin loss is visible."""
    population = montecarlo_monitor_banks(
        table1_bank(), 4, sampler=MonteCarloSampler(rng=0))
    result = engine.run(population, band=None)
    assert result.num_dies == 4
    assert np.all(result.ndfs > 0)
    assert np.all(result.ndfs < 0.15)


def test_temperature_corner_labels(engine):
    result = engine.run(temperature_corners([233.15, 398.15]),
                        band=None)
    assert result.labels == ["-40C", "+125C"]
    assert np.all(result.ndfs >= 0)


def test_fault_dictionary_matches_per_die_coverage(engine):
    """The batched fault campaign reproduces catastrophic_coverage."""
    from repro.analysis import catastrophic_coverage

    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    band = DecisionBand(0.05)
    population, faults = fault_dictionary(values)
    result = engine.run(population, band=band)

    tester = SignatureTester(table1_encoder(), PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=SAMPLES, refine=False)
    rows = catastrophic_coverage(tester, values, band, faults)
    per_die = np.asarray([r.ndf for r in rows])
    assert np.array_equal(per_die, result.ndfs)
    assert [not v for v in result.verdicts] == [r.detected for r in rows]


def test_parameter_grid_row_major(engine):
    population = parameter_grid(PAPER_BIQUAD, [-0.1, 0.1], [0.0])
    assert len(population) == 2
    assert np.array_equal(population.q_deviations, [0.0, 0.0])
    result = engine.run(population, band=None)
    assert np.all(result.ndfs > 0)


def test_timing_sections_recorded(engine):
    result = engine.run(montecarlo_dies(PAPER_BIQUAD, 3), band=None)
    assert result.timing["total"] > 0
    assert "golden" in result.timing
    for stage in ("traces", "encode", "signature", "ndf"):
        assert result.timing[stage] >= 0
    assert result.dies_per_second() > 0


# ----------------------------------------------------------------------
# Streaming
# ----------------------------------------------------------------------
def test_streamed_run_bit_identical_to_monolithic(engine):
    from repro.campaign import stream_montecarlo_dies

    monolithic = engine.run(
        montecarlo_dies(PAPER_BIQUAD, 40, sigma_f0=0.03, seed=21),
        band="auto")
    streamed = engine.run_stream(
        stream_montecarlo_dies(PAPER_BIQUAD, 40, chunk_size=7,
                               sigma_f0=0.03, seed=21), band="auto")
    assert np.array_equal(monolithic.ndfs, streamed.ndfs)
    assert np.array_equal(monolithic.verdicts, streamed.verdicts)
    assert monolithic.labels == streamed.labels
    assert np.array_equal(monolithic.f0_deviations,
                          streamed.f0_deviations)
    assert streamed.executor.endswith("+stream")


def test_run_accepts_iterator_of_raw_specs(engine):
    """PR 1 behaviour preserved: a spec iterator is not a stream."""
    specs = [PAPER_BIQUAD, PAPER_BIQUAD.with_f0_deviation(0.2)]
    result = engine.run(iter(specs), band="auto")
    assert result.num_dies == 2
    assert not result.executor.endswith("+stream")
    reference = engine.run(specs, band="auto")
    assert np.array_equal(result.ndfs, reference.ndfs)
    empty = engine.run(iter(()), band="auto")
    assert empty.num_dies == 0


def test_run_dispatches_generators_to_stream(engine):
    from repro.campaign import stream_montecarlo_dies

    result = engine.run(stream_montecarlo_dies(PAPER_BIQUAD, 9,
                                               chunk_size=4, seed=2),
                        band="auto")
    assert result.num_dies == 9
    assert result.executor.endswith("+stream")


def test_stream_generator_matches_monolithic_dies():
    from repro.campaign import stream_montecarlo_dies

    whole = montecarlo_dies(PAPER_BIQUAD, 25, sigma_f0=0.04, seed=6)
    chunks = list(stream_montecarlo_dies(PAPER_BIQUAD, 25,
                                         chunk_size=10, sigma_f0=0.04,
                                         seed=6))
    assert [len(c) for c in chunks] == [10, 10, 5]
    streamed_devs = np.concatenate([c.f0_deviations for c in chunks])
    assert np.array_equal(whole.f0_deviations, streamed_devs)
    streamed_labels = [label for c in chunks for label in c.labels]
    assert whole.labels == streamed_labels


def test_empty_stream(engine):
    result = engine.run_stream(iter(()), band="auto")
    assert result.num_dies == 0
    assert result.verdicts.shape == (0,)


def test_streamed_raw_spec_chunks_get_global_labels(engine):
    chunks = iter([[PAPER_BIQUAD, PAPER_BIQUAD],
                   [PAPER_BIQUAD.with_f0_deviation(0.2)]])
    result = engine.run_stream(chunks, band=None)
    assert result.labels == ["die00000", "die00001", "die00002"]


# ----------------------------------------------------------------------
# Trace populations (measured waveform stacks)
# ----------------------------------------------------------------------
def test_trace_population_matches_spec_population(engine):
    from repro.campaign import trace_population
    from repro.campaign.batch import batch_multitone_eval

    population = montecarlo_dies(PAPER_BIQUAD, 10, sigma_f0=0.04,
                                 seed=8)
    via_specs = engine.run(population, band="auto")
    golden = engine.golden()
    responses = [BiquadFilter(s).response(PAPER_STIMULUS)
                 for s in population.specs]
    stack = batch_multitone_eval(responses, golden.times)
    via_traces = engine.run(trace_population(stack), band="auto")
    assert np.array_equal(via_specs.ndfs, via_traces.ndfs)
    assert np.array_equal(via_specs.verdicts, via_traces.verdicts)


# ----------------------------------------------------------------------
# Noise campaigns (Section IV-C repeats)
# ----------------------------------------------------------------------
def test_noise_campaign_matches_per_die_reference(engine):
    """The (N, R) stack equals a per-die loop with the same seeding."""
    from repro.campaign.batch import (
        batch_codes,
        batch_extract,
        batch_multitone_eval,
    )

    population = montecarlo_dies(PAPER_BIQUAD, 4, sigma_f0=0.04,
                                 seed=3)
    repeats, three_sigma, seed = 3, 0.015, 11
    result = engine.run_noise(population, repeats=repeats,
                              noise=three_sigma, seed=seed, band=None)
    assert result.ndf_matrix.shape == (4, repeats)

    from repro.campaign.engine import NOISE_SEED_DOMAIN

    golden = engine.golden()
    sigma = three_sigma / 3.0
    children = np.random.SeedSequence(
        [seed, NOISE_SEED_DOMAIN]).spawn(len(population))
    for i, (spec, child) in enumerate(zip(population.specs, children)):
        rng = np.random.default_rng(child)
        noise = rng.normal(0.0, sigma,
                           size=(repeats, 2, golden.times.size))
        response = BiquadFilter(spec).response(PAPER_STIMULUS)
        y = batch_multitone_eval([response], golden.times)[0]
        for r in range(repeats):
            codes = batch_codes(engine.config.encoder,
                                golden.x + noise[r, 0],
                                (y + noise[r, 1])[None, :])
            batch = batch_extract(golden.times, codes, golden.period)
            expected = batch.ndf_to(golden.signature)[0]
            assert result.ndf_matrix[i, r] == expected


def test_noise_campaign_chunk_invariant(engine):
    """Die seeding must not depend on the engine's chunking."""
    import dataclasses

    from repro.campaign import CampaignEngine, GoldenCache

    population = montecarlo_dies(PAPER_BIQUAD, 6, sigma_f0=0.03,
                                 seed=4)
    small_chunks = CampaignEngine(
        dataclasses.replace(engine.config, chunk_size=4),
        cache=GoldenCache())
    one = engine.run_noise(population, repeats=4, seed=9, band=None)
    other = small_chunks.run_noise(population, repeats=4, seed=9,
                                   band=None)
    assert np.array_equal(one.ndf_matrix, other.ndf_matrix)


def test_noise_campaign_zero_noise_collapses_to_clean(engine):
    population = montecarlo_dies(PAPER_BIQUAD, 5, sigma_f0=0.04,
                                 seed=5)
    clean = engine.run(population, band="auto")
    noisy = engine.run_noise(population, repeats=2, noise=0.0,
                             band="auto")
    assert np.array_equal(noisy.ndf_matrix[:, 0], clean.ndfs)
    assert np.array_equal(noisy.ndf_matrix[:, 1], clean.ndfs)
    assert np.array_equal(noisy.detection_rates() == 0.0,
                          clean.verdicts)


def test_noise_is_decorrelated_from_die_parameters(engine):
    """Same user seed for dies and noise must not correlate them.

    Regression: noise children used to spawn from the bare
    ``SeedSequence(seed)`` -- identical to ``montecarlo_dies`` -- so
    die i's first noise sample was exactly its f0 deviation rescaled.
    """
    sigma_f0, three_sigma, seed = 0.03, 0.015, 5
    population = montecarlo_dies(PAPER_BIQUAD, 30, sigma_f0=sigma_f0,
                                 seed=seed)
    from repro.campaign.engine import NOISE_SEED_DOMAIN

    children = np.random.SeedSequence(
        [seed, NOISE_SEED_DOMAIN]).spawn(len(population))
    first_noise = np.asarray([
        np.random.default_rng(child).normal(0.0, three_sigma / 3.0)
        for child in children])
    normalized_noise = first_noise / (three_sigma / 3.0)
    normalized_devs = population.f0_deviations / sigma_f0
    assert not np.any(np.isclose(normalized_noise, normalized_devs))


def test_noise_campaign_validates_arguments(engine):
    population = montecarlo_dies(PAPER_BIQUAD, 2)
    with pytest.raises(ValueError):
        engine.run_noise(population, repeats=0)


def test_noise_campaign_executor_parity_bit_identical(engine):
    """Pool-fanned noise chunks must equal the serial path bit for bit
    (ROADMAP open item: executor-parallel noise campaigns)."""
    from repro.campaign import (
        CampaignEngine,
        GoldenCache,
        ProcessPoolExecutor,
    )

    population = montecarlo_dies(PAPER_BIQUAD, 10, sigma_f0=0.04,
                                 seed=21)
    serial = engine.run_noise(population, repeats=3, seed=13,
                              band="auto")
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = CampaignEngine(engine.config, cache=GoldenCache(),
                                executor=pool).run_noise(
            population, repeats=3, seed=13, band="auto")
    assert pooled.executor.startswith("process-pool")
    assert np.array_equal(serial.ndf_matrix, pooled.ndf_matrix)
    assert np.array_equal(serial.detection_rates(),
                          pooled.detection_rates())


# ----------------------------------------------------------------------
# Signature retention (the diagnosis edge)
# ----------------------------------------------------------------------
def test_keep_signatures_matches_per_die_extraction(engine):
    """Retained batch rows must equal per-die Signature.from_samples."""
    from repro.campaign.batch import (
        batch_codes,
        batch_multitone_eval,
    )
    from repro.core.signature import Signature

    population = montecarlo_dies(PAPER_BIQUAD, 6, sigma_f0=0.04,
                                 seed=23)
    result = engine.run(population, band="auto", keep_signatures=True)
    batch = result.signature_batch
    assert batch is not None and len(batch) == 6
    golden = engine.golden()
    responses = [BiquadFilter(s).response(PAPER_STIMULUS)
                 for s in population.specs]
    y = batch_multitone_eval(responses, golden.times)
    codes = batch_codes(engine.config.encoder, golden.x, y)
    for i in range(6):
        expected = Signature.from_samples(golden.times, codes[i],
                                          golden.period)
        row = batch.row(i)
        assert row.codes() == expected.codes()
        assert np.array_equal(row.durations(), expected.durations())


def test_keep_signatures_off_by_default(engine):
    population = montecarlo_dies(PAPER_BIQUAD, 2, seed=1)
    result = engine.run(population, band=None)
    assert result.signature_batch is None
    with pytest.raises(ValueError, match="keep_signatures"):
        result.diagnose(None)


def test_keep_signatures_executor_parity(engine):
    """Serial and pool runs retain bit-identical batches."""
    from repro.campaign import (
        CampaignEngine,
        GoldenCache,
        ProcessPoolExecutor,
    )

    population = montecarlo_dies(PAPER_BIQUAD, 9, sigma_f0=0.03,
                                 seed=31)
    serial = engine.run(population, band=None, keep_signatures=True)
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = CampaignEngine(engine.config, cache=GoldenCache(),
                                executor=pool).run(
            population, band=None, keep_signatures=True)
    for attribute in ("codes", "durations", "row_offsets", "periods"):
        assert np.array_equal(
            getattr(serial.signature_batch, attribute),
            getattr(pooled.signature_batch, attribute))


def test_keep_signatures_streamed(engine):
    """Streamed retention concatenates chunks in fleet order."""
    from repro.campaign import stream_montecarlo_dies

    monolithic = engine.run(
        montecarlo_dies(PAPER_BIQUAD, 12, sigma_f0=0.03, seed=41),
        band=None, keep_signatures=True)
    streamed = engine.run_stream(
        stream_montecarlo_dies(PAPER_BIQUAD, 12, chunk_size=5,
                               sigma_f0=0.03, seed=41),
        band=None, keep_signatures=True)
    for attribute in ("codes", "durations", "row_offsets", "periods"):
        assert np.array_equal(
            getattr(monolithic.signature_batch, attribute),
            getattr(streamed.signature_batch, attribute))


def test_failing_selection_helpers(engine):
    population = deviation_sweep_population(PAPER_BIQUAD,
                                            [-0.15, 0.0, 0.15])
    result = engine.run(population, band="auto",
                        keep_signatures=True)
    failing = result.failing_indices()
    assert np.array_equal(failing, [0, 2])
    assert result.failing_labels() == [result.labels[0],
                                       result.labels[2]]
    carved = result.signature_batch.select(failing)
    assert len(carved) == 2
    assert carved.row(0).codes() \
        == result.signature_batch.row(0).codes()
    assert carved.row(1).codes() \
        == result.signature_batch.row(2).codes()
