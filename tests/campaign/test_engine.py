"""Campaign engine: equivalence with the per-die flow, edge cases."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    deviation_sweep_population,
    fault_dictionary,
    montecarlo_dies,
    montecarlo_monitor_banks,
    parameter_grid,
    temperature_corners,
)
from repro.core.decision import DecisionBand
from repro.core.testflow import SignatureTester
from repro.devices.process import MonteCarloSampler
from repro.filters.biquad import BiquadFilter
from repro.filters.towthomas import TowThomasValues
from repro.monitor.configurations import table1_bank, table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 1024


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


def test_bit_identical_with_per_die_flow(engine):
    """Batched NDFs must equal the serial refine-off flow bit for bit."""
    population = montecarlo_dies(PAPER_BIQUAD, 12, sigma_f0=0.04,
                                 seed=5)
    result = engine.run(population, band=None)
    tester = SignatureTester(table1_encoder(), PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=SAMPLES, refine=False)
    serial = np.asarray([tester.ndf_of(BiquadFilter(s))
                         for s in population.specs])
    assert np.array_equal(serial, result.ndfs)


def test_close_to_refined_flow(engine):
    """Grid quantization keeps NDFs within a small gap of refined."""
    population = deviation_sweep_population(
        PAPER_BIQUAD, [-0.10, -0.05, 0.05, 0.10])
    result = engine.run(population, band=None)
    tester = SignatureTester(table1_encoder(), PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=SAMPLES, refine=True)
    refined = np.asarray(
        [tester.ndf_of(BiquadFilter(s)) for s in population.specs])
    assert np.max(np.abs(refined - result.ndfs)) < 0.01


def test_empty_population(engine):
    result = engine.run(montecarlo_dies(PAPER_BIQUAD, 0), band="auto")
    assert result.num_dies == 0
    assert result.ndfs.shape == (0,)
    assert result.verdicts.shape == (0,)
    assert result.pass_rate == 1.0
    assert np.isnan(result.ndf_percentile(95))


def test_single_die(engine):
    result = engine.run(montecarlo_dies(PAPER_BIQUAD, 1, sigma_f0=0.0),
                        band="auto")
    assert result.num_dies == 1
    # A zero-deviation die is the golden unit: NDF must be exactly 0.
    assert result.ndfs[0] == 0.0
    assert bool(result.verdicts[0])


def test_band_modes(engine):
    population = deviation_sweep_population(PAPER_BIQUAD, [0.0, 0.15])
    no_band = engine.run(population, band=None)
    assert no_band.verdicts is None
    assert no_band.threshold is None
    explicit = engine.run(population, band=DecisionBand(0.05))
    assert explicit.threshold == 0.05
    raw = engine.run(population, band=0.05)
    assert np.array_equal(explicit.verdicts, raw.verdicts)
    auto = engine.run(population, band="auto")
    assert auto.verdicts[0] and not auto.verdicts[1]


def test_raw_spec_list(engine):
    specs = [PAPER_BIQUAD, PAPER_BIQUAD.with_f0_deviation(0.2)]
    result = engine.run(specs, band="auto")
    assert result.num_dies == 2
    assert result.ndfs[0] == 0.0
    assert not result.verdicts[1]


def test_deterministic_seeding_is_chunk_invariant():
    """Die i's parameters depend on (seed, i) only."""
    small = montecarlo_dies(PAPER_BIQUAD, 5, sigma_f0=0.03, seed=9)
    large = montecarlo_dies(PAPER_BIQUAD, 50, sigma_f0=0.03, seed=9)
    assert np.array_equal(small.f0_deviations,
                          large.f0_deviations[:5])
    other_seed = montecarlo_dies(PAPER_BIQUAD, 5, sigma_f0=0.03,
                                 seed=10)
    assert not np.array_equal(small.f0_deviations,
                              other_seed.f0_deviations)


def test_monitor_variation_measures_nonzero_margin(engine):
    """Varied banks vs the nominal golden: margin loss is visible."""
    population = montecarlo_monitor_banks(
        table1_bank(), 4, sampler=MonteCarloSampler(rng=0))
    result = engine.run(population, band=None)
    assert result.num_dies == 4
    assert np.all(result.ndfs > 0)
    assert np.all(result.ndfs < 0.15)


def test_temperature_corner_labels(engine):
    result = engine.run(temperature_corners([233.15, 398.15]),
                        band=None)
    assert result.labels == ["-40C", "+125C"]
    assert np.all(result.ndfs >= 0)


def test_fault_dictionary_matches_per_die_coverage(engine):
    """The batched fault campaign reproduces catastrophic_coverage."""
    from repro.analysis import catastrophic_coverage

    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    band = DecisionBand(0.05)
    population, faults = fault_dictionary(values)
    result = engine.run(population, band=band)

    tester = SignatureTester(table1_encoder(), PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=SAMPLES, refine=False)
    rows = catastrophic_coverage(tester, values, band, faults)
    per_die = np.asarray([r.ndf for r in rows])
    assert np.array_equal(per_die, result.ndfs)
    assert [not v for v in result.verdicts] == [r.detected for r in rows]


def test_parameter_grid_row_major(engine):
    population = parameter_grid(PAPER_BIQUAD, [-0.1, 0.1], [0.0])
    assert len(population) == 2
    assert np.array_equal(population.q_deviations, [0.0, 0.0])
    result = engine.run(population, band=None)
    assert np.all(result.ndfs > 0)


def test_timing_sections_recorded(engine):
    result = engine.run(montecarlo_dies(PAPER_BIQUAD, 3), band=None)
    assert result.timing["total"] > 0
    assert "golden" in result.timing
    assert result.dies_per_second() > 0
