"""CampaignResult statistics and the vectorized batch kernels."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignResult,
    batch_codes,
    batch_multitone_eval,
    batch_signatures,
    sample_times,
)
from repro.core.signature import Signature, run_length_starts
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS
from repro.filters.biquad import BiquadFilter

pytestmark = pytest.mark.campaign


# ----------------------------------------------------------------------
# Batch kernels
# ----------------------------------------------------------------------
def test_run_length_starts():
    starts = run_length_starts(np.asarray([4, 4, 7, 7, 7, 4]))
    assert np.array_equal(starts, [0, 2, 5])
    assert np.array_equal(run_length_starts(np.asarray([1])), [0])
    with pytest.raises(ValueError):
        run_length_starts(np.asarray([]))


def test_sample_times_matches_waveform_grid():
    period = PAPER_STIMULUS.period()
    times = sample_times(period, 256)
    wave = PAPER_STIMULUS.sample(256)
    assert np.array_equal(times, wave.times)
    with pytest.raises(ValueError):
        sample_times(period, 1)


def test_batch_multitone_eval_matches_scalar_eval():
    times = sample_times(PAPER_STIMULUS.period(), 128)
    response = BiquadFilter(PAPER_BIQUAD).response(PAPER_STIMULUS)
    stack = batch_multitone_eval([PAPER_STIMULUS, response], times)
    assert stack.shape == (2, 128)
    assert np.array_equal(stack[0], PAPER_STIMULUS(times))
    assert np.array_equal(stack[1], response(times))


def test_batch_multitone_eval_empty():
    times = sample_times(PAPER_STIMULUS.period(), 64)
    assert batch_multitone_eval([], times).shape == (0, 64)


def test_batch_multitone_eval_rejects_mixed_frequencies():
    from repro.signals.multitone import Multitone, Tone

    times = sample_times(1.0, 32)
    with pytest.raises(ValueError):
        batch_multitone_eval(
            [Multitone([Tone(1.0, 1.0)]), Multitone([Tone(2.0, 1.0)])],
            times)


def test_batch_codes_broadcasts_shared_x():
    encoder = table1_encoder()
    times = sample_times(PAPER_STIMULUS.period(), 128)
    x = np.asarray(PAPER_STIMULUS(times))
    y = batch_multitone_eval(
        [BiquadFilter(PAPER_BIQUAD).response(PAPER_STIMULUS)], times)
    codes = batch_codes(encoder, x, y)
    assert codes.shape == (1, 128)
    assert np.array_equal(codes[0], encoder.code(x, y[0]))


def test_shared_branch_codes_bit_identical_on_varied_bank():
    """The memoized EKV fast path must not mix up varied model cards."""
    from repro.devices.process import MonteCarloSampler
    from repro.monitor.configurations import table1_bank
    from repro.monitor.montecarlo import bank_samples
    from repro.core.zones import ZoneEncoder

    sampler = MonteCarloSampler(rng=5)
    varied = bank_samples(table1_bank(), sampler, 2)
    times = sample_times(PAPER_STIMULUS.period(), 128)
    x = np.asarray(PAPER_STIMULUS(times))
    y = batch_multitone_eval(
        [BiquadFilter(PAPER_BIQUAD).response(PAPER_STIMULUS),
         BiquadFilter(
             PAPER_BIQUAD.with_f0_deviation(0.1)).response(
                 PAPER_STIMULUS)], times)
    for bank in varied:
        encoder = ZoneEncoder(bank)
        fast = batch_codes(encoder, x, y)
        reference = encoder.code(np.broadcast_to(x, y.shape), y)
        assert np.array_equal(fast, reference)


def test_batch_codes_generic_fallback_for_linear_banks():
    """Non-monitor boundaries take the generic broadcast path."""
    from repro.baselines.straight_zoning import grid_line_encoder

    encoder = grid_line_encoder(2, 2)
    times = sample_times(PAPER_STIMULUS.period(), 64)
    x = np.asarray(PAPER_STIMULUS(times))
    y = batch_multitone_eval(
        [BiquadFilter(PAPER_BIQUAD).response(PAPER_STIMULUS)], times)
    codes = batch_codes(encoder, x, y)
    assert np.array_equal(codes[0], encoder.code(x, y[0]))


def test_batch_signatures_shares_from_samples_semantics():
    period = 1.0
    times = sample_times(period, 8)
    codes = np.asarray([[0, 0, 1, 1, 3, 3, 1, 1],
                        [2, 2, 2, 2, 2, 2, 2, 2]])
    signatures = batch_signatures(times, codes, period)
    assert signatures[0] == Signature.from_samples(times, codes[0],
                                                   period)
    assert signatures[1].codes() == [2]


# ----------------------------------------------------------------------
# CampaignResult statistics
# ----------------------------------------------------------------------
def _result():
    return CampaignResult(
        ndfs=np.asarray([0.0, 0.02, 0.08, 0.03]),
        threshold=0.05,
        verdicts=np.asarray([True, True, False, True]),
        f0_deviations=np.asarray([0.0, 0.02, 0.09, 0.06]),
        q_deviations=np.zeros(4),
        labels=["a", "b", "c", "d"],
        tolerance=0.05,
        timing={"total": 0.5},
    )


def test_result_counts_and_rates():
    result = _result()
    assert result.num_dies == 4
    assert result.pass_count == 3
    assert result.fail_count == 1
    assert result.pass_rate == 0.75
    assert result.dies_per_second() == pytest.approx(8.0)


def test_result_yield_report():
    report = _result().yield_report()
    # die d: |dev| 0.06 > tol but NDF 0.03 <= 0.05 -> escape
    assert report.escapes == 1
    assert report.true_fail == 1
    assert report.true_pass == 2
    assert report.yield_loss == 0
    assert _result().escape_rate() == 0.5
    assert _result().yield_loss_rate() == 0.0


def test_result_matches_list_based_analysis():
    from repro.analysis import yield_escape_analysis

    result = _result()
    legacy = yield_escape_analysis(result.to_units(), 0.05, 0.05)
    batch = result.yield_report()
    assert (legacy.true_pass, legacy.true_fail, legacy.yield_loss,
            legacy.escapes) == (batch.true_pass, batch.true_fail,
                                batch.yield_loss, batch.escapes)


def test_result_requires_ground_truth_for_yield():
    result = CampaignResult(ndfs=np.asarray([0.1]), threshold=0.05,
                            verdicts=np.asarray([False]))
    with pytest.raises(ValueError):
        result.yield_report(0.05, 0.05)
    with pytest.raises(ValueError):
        result.to_units()


def test_result_verdict_shape_checked():
    with pytest.raises(ValueError):
        CampaignResult(ndfs=np.asarray([0.1, 0.2]),
                       verdicts=np.asarray([True]))


def test_summary_renders():
    text = _result().summary()
    assert "3 PASS / 1 FAIL" in text
    assert "escapes" in text
