"""Packed SignatureBatch: extraction, fleet NDF, batched quantize."""

import numpy as np
import pytest

from repro.campaign import (
    GoldenCache,
    batch_codes,
    batch_extract,
    batch_multitone_eval,
    batch_ndf,
    batch_signatures,
    montecarlo_dies,
    sample_times,
)
from repro.core.capture import AsyncCapture, CaptureConfig
from repro.core.ndf import ndf
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch, fleet_ndf
from repro.filters.biquad import BiquadFilter
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def population_codes():
    """(times, code stack, period, golden signature) of a small fleet."""
    from repro.campaign import CampaignEngine

    engine = CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                       PAPER_BIQUAD,
                                       samples_per_period=SAMPLES,
                                       cache=GoldenCache())
    golden = engine.golden()
    dies = montecarlo_dies(PAPER_BIQUAD, 24, sigma_f0=0.05, seed=17)
    responses = [BiquadFilter(s).response(PAPER_STIMULUS)
                 for s in dies.specs]
    y = batch_multitone_eval(responses, golden.times)
    codes = batch_codes(engine.config.encoder, golden.x, y)
    return golden.times, codes, golden.period, golden.signature


# ----------------------------------------------------------------------
# Extraction
# ----------------------------------------------------------------------
def test_rows_bit_identical_to_from_samples(population_codes):
    times, codes, period, __ = population_codes
    batch = SignatureBatch.from_code_stack(times, codes, period)
    assert len(batch) == codes.shape[0]
    for i in range(len(batch)):
        reference = Signature.from_samples(times, codes[i], period)
        row = batch.row(i)
        assert np.array_equal(row._codes, reference._codes)
        assert np.array_equal(row.durations(), reference.durations())
        assert np.array_equal(row._starts, reference._starts)


def test_start_times_match_signature_starts(population_codes):
    times, codes, period, __ = population_codes
    batch = SignatureBatch.from_code_stack(times, codes, period)
    starts = batch.start_times()
    for i in range(len(batch)):
        lo, hi = batch.row_offsets[i], batch.row_offsets[i + 1]
        reference = Signature.from_samples(times, codes[i], period)
        assert np.array_equal(starts[lo:hi], reference._starts[:-1])


def test_constant_row_is_single_run():
    times = sample_times(1.0, 16)
    codes = np.vstack([np.full(16, 5), [0] * 8 + [1] * 8])
    batch = SignatureBatch.from_code_stack(times, codes, 1.0)
    assert np.array_equal(batch.runs_per_row, [1, 2])
    assert batch.row(0).codes() == [5]
    assert batch.row(0).durations()[0] == 1.0


def test_from_code_stack_validates_times():
    codes = np.zeros((2, 8), dtype=int)
    good = sample_times(1.0, 8)
    with pytest.raises(ValueError):
        SignatureBatch.from_code_stack(good + 0.1, codes, 1.0)
    with pytest.raises(ValueError):
        SignatureBatch.from_code_stack(good, codes, 0.5)
    with pytest.raises(ValueError):
        SignatureBatch.from_code_stack(good[::-1], codes, 1.0)


def test_from_signatures_roundtrip(population_codes):
    times, codes, period, __ = population_codes
    signatures = batch_signatures(times, codes, period)
    packed = SignatureBatch.from_signatures(signatures)
    assert len(packed) == len(signatures)
    for original, row in zip(signatures, packed.to_signatures()):
        assert np.array_equal(original._codes, row._codes)
        assert np.array_equal(original.durations(), row.durations())
    empty = SignatureBatch.from_signatures([])
    assert len(empty) == 0


def test_batch_extract_is_batch_signatures_source(population_codes):
    times, codes, period, __ = population_codes
    packed = batch_extract(times, codes, period)
    unpacked = batch_signatures(times, codes, period)
    assert [s.codes() for s in packed.to_signatures()] \
        == [s.codes() for s in unpacked]


# ----------------------------------------------------------------------
# Fleet NDF
# ----------------------------------------------------------------------
def test_fleet_ndf_bit_identical_to_per_die(population_codes):
    """The tentpole guarantee: no drift at all vs the scalar metric."""
    times, codes, period, golden = population_codes
    batch = SignatureBatch.from_code_stack(times, codes, period)
    packed = batch.ndf_to(golden)
    reference = batch_ndf(batch.to_signatures(), golden)
    assert np.array_equal(packed, reference)
    assert np.array_equal(fleet_ndf(batch, golden), packed)


def test_fleet_ndf_zero_against_itself(population_codes):
    times, codes, period, golden = population_codes
    golden_stack = np.tile(golden.code_at(times), (3, 1))
    batch = SignatureBatch.from_code_stack(times, golden_stack, period)
    assert np.array_equal(batch.ndf_to(golden), np.zeros(3))


def test_fleet_ndf_rejects_period_mismatch(population_codes):
    times, codes, period, golden = population_codes
    other = SignatureBatch.from_code_stack(
        times / 2.0, codes, period / 2.0)
    with pytest.raises(ValueError):
        other.ndf_to(golden)


def test_fleet_ndf_empty_batch(population_codes):
    *_, golden = population_codes
    assert SignatureBatch.from_signatures([]).ndf_to(golden).shape == (0,)


def test_fleet_ndf_handles_hand_built_signatures():
    golden = Signature.from_pairs([(0, 0.25), (1, 0.5), (3, 0.25)], 1.0)
    rows = [
        Signature.from_pairs([(0, 0.25), (1, 0.5), (3, 0.25)], 1.0),
        Signature.from_pairs([(2, 0.6), (0, 0.4)], 1.0),
        Signature.from_pairs([(7, 1.0)], 1.0),
    ]
    packed = SignatureBatch.from_signatures(rows)
    expected = np.asarray([ndf(r, golden) for r in rows])
    assert np.array_equal(packed.ndf_to(golden), expected)


# ----------------------------------------------------------------------
# Batched asynchronous capture
# ----------------------------------------------------------------------
@pytest.mark.parametrize("config", [
    CaptureConfig(clock_hz=10e6, counter_bits=16),
    CaptureConfig(clock_hz=2e6, counter_bits=6),      # saturating
    CaptureConfig(clock_hz=2e6, counter_bits=6, wrap=True),
])
def test_quantize_batch_bit_identical_to_scalar(population_codes,
                                                config):
    times, codes, period, golden = population_codes
    capture = AsyncCapture(table1_encoder(), config)
    batch = SignatureBatch.from_code_stack(times, codes, period)
    quantized = capture.quantize_batch(batch)
    assert len(quantized) == len(batch)
    scalars = [capture.quantize(batch.row(i))
               for i in range(len(batch))]
    for i, scalar in enumerate(scalars):
        row = quantized.row(i)
        assert row.codes() == scalar.codes()
        assert np.array_equal(row.durations(), scalar.durations())
        assert quantized.periods[i] == scalar.period
    # The packed quantized batch must also score bit-identically to
    # the scalar quantize -> ndf path.
    reference = np.asarray([ndf(s, golden) for s in scalars])
    assert np.array_equal(quantized.ndf_to(golden), reference)


def test_quantize_batch_empty():
    capture = AsyncCapture(table1_encoder())
    empty = SignatureBatch.from_signatures([])
    assert len(capture.quantize_batch(empty)) == 0


def test_quantize_batch_rejects_subtick_period():
    capture = AsyncCapture(table1_encoder(),
                           CaptureConfig(clock_hz=1.0))
    batch = SignatureBatch.from_signatures(
        [Signature.from_pairs([(1, 0.25)], 0.25)])
    with pytest.raises(ValueError):
        capture.quantize_batch(batch)


# ----------------------------------------------------------------------
# Row selection / concatenation (the diagnosis carve-out)
# ----------------------------------------------------------------------
def test_select_preserves_rows(population_codes):
    times, codes, period, golden = population_codes
    batch = SignatureBatch.from_code_stack(times, codes, period)
    picked = batch.select([3, 0, 3])
    assert len(picked) == 3
    for out_row, src_row in zip(range(3), (3, 0, 3)):
        a, b = picked.row(out_row), batch.row(src_row)
        assert a.codes() == b.codes()
        assert np.array_equal(a.durations(), b.durations())
    # Scoring the selection equals gathering the full-batch scores.
    assert np.array_equal(picked.ndf_to(golden),
                          batch.ndf_to(golden)[[3, 0, 3]])


def test_select_empty_and_validation(population_codes):
    times, codes, period, __ = population_codes
    batch = SignatureBatch.from_code_stack(times, codes, period)
    empty = batch.select([])
    assert len(empty) == 0
    assert empty.codes.size == 0
    with pytest.raises(ValueError):
        batch.select([[0, 1]])


def test_concatenate_round_trips_select(population_codes):
    times, codes, period, golden = population_codes
    batch = SignatureBatch.from_code_stack(times, codes, period)
    n = len(batch)
    front = batch.select(np.arange(n // 2))
    back = batch.select(np.arange(n // 2, n))
    merged = SignatureBatch.concatenate([front, back])
    assert np.array_equal(merged.codes, batch.codes)
    assert np.array_equal(merged.durations, batch.durations)
    assert np.array_equal(merged.row_offsets, batch.row_offsets)
    assert np.array_equal(merged.periods, batch.periods)
    assert np.array_equal(merged.ndf_to(golden), batch.ndf_to(golden))


def test_concatenate_skips_empty_batches(population_codes):
    times, codes, period, __ = population_codes
    batch = SignatureBatch.from_code_stack(times, codes, period)
    merged = SignatureBatch.concatenate(
        [SignatureBatch.empty(), batch, SignatureBatch.empty()])
    assert len(merged) == len(batch)
    assert len(SignatureBatch.concatenate([])) == 0
