"""StreamCheckpoint.merge edge cases and checkpoint diagnostics.

The merge is pure array bookkeeping, so these tests build synthetic
parts directly; end-to-end bit-identity of merged *campaign results*
(real engine, subprocess workers) is proven by ``tests/shard/``.
"""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.campaign.checkpoint import (
    CheckpointMismatch,
    StreamCheckpoint,
)
from repro.obs.logs import set_log_sink
from repro.obs.metrics import default_registry

pytestmark = pytest.mark.campaign

KEY = "golden-key"
THRESHOLD = 0.25


def _part(lo, values, complete=True, key=KEY, threshold=THRESHOLD):
    """A checkpoint covering dies [lo, lo + len(values))."""
    part = StreamCheckpoint(key, threshold, start_index=lo)
    if values:
        data = np.asarray(values, dtype=float)
        part.extend(data, data * 0.1, data * 0.0,
                    [f"die{lo + i:05d}" for i in range(len(values))],
                    {"ndf": 0.001 * len(values)})
    part.complete = complete
    return part


def _monolithic(values):
    return _part(0, values)


def test_merge_is_bit_identical_to_monolithic():
    values = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]
    merged = StreamCheckpoint.merge([
        _part(0, values[:3]), _part(3, values[3:5]),
        _part(5, values[5:])])
    reference = _monolithic(values)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.values(np.empty(0)))
    np.testing.assert_array_equal(merged.f0_deviations(),
                                  reference.f0_deviations())
    assert merged.labels == reference.labels
    assert merged.start_index == 0
    assert merged.next_index == 7
    assert merged.complete


def test_merge_out_of_order_arrival():
    parts = [_part(5, [0.6, 0.7]), _part(0, [0.1, 0.2, 0.3]),
             _part(3, [0.4, 0.5])]
    merged = StreamCheckpoint.merge(parts)
    assert merged.labels == [f"die{i:05d}" for i in range(7)]
    np.testing.assert_array_equal(
        merged.values(np.empty(0)),
        [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7])


def test_merge_single_die_and_empty_shards():
    merged = StreamCheckpoint.merge([
        _part(0, [0.1]),          # single-die shard
        _part(1, []),             # empty shard at an interior edge
        _part(1, [0.2, 0.3])])
    assert merged.num_dies == 3
    assert merged.next_index == 3
    assert merged.chunks_done == 2  # empty part contributed none


def test_merge_single_part_is_identity():
    part = _part(4, [0.9, 0.8])
    merged = StreamCheckpoint.merge([part])
    assert merged.start_index == 4
    assert merged.labels == part.labels
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  part.values(np.empty(0)))


def test_merge_of_merges_is_associative():
    values = list(np.linspace(0.0, 1.0, 10))
    quarters = [_part(0, values[:2]), _part(2, values[2:5]),
                _part(5, values[5:6]), _part(6, values[6:])]
    left = StreamCheckpoint.merge([
        StreamCheckpoint.merge(quarters[:2]),
        StreamCheckpoint.merge(quarters[2:])])
    right = StreamCheckpoint.merge([
        quarters[0], StreamCheckpoint.merge(quarters[1:])])
    flat = StreamCheckpoint.merge(quarters)
    for merged in (left, right):
        np.testing.assert_array_equal(merged.values(np.empty(0)),
                                      flat.values(np.empty(0)))
        assert merged.labels == flat.labels
        assert merged.timing == flat.timing
        assert merged.chunks_done == flat.chunks_done


def test_merge_rejects_overlap_and_gap():
    with pytest.raises(ValueError, match="overlap"):
        StreamCheckpoint.merge([_part(0, [0.1, 0.2]),
                                _part(1, [0.3])])
    with pytest.raises(ValueError, match="gap"):
        StreamCheckpoint.merge([_part(0, [0.1]), _part(3, [0.4])])
    with pytest.raises(ValueError, match="nothing to merge"):
        StreamCheckpoint.merge([])


def test_merge_rejects_mismatched_parts():
    with pytest.raises(CheckpointMismatch):
        StreamCheckpoint.merge([_part(0, [0.1]),
                                _part(1, [0.2], key="other-key")])
    with pytest.raises(CheckpointMismatch):
        StreamCheckpoint.merge([_part(0, [0.1]),
                                _part(1, [0.2], threshold=0.9)])


def test_merge_incomplete_part_marks_merge_incomplete():
    merged = StreamCheckpoint.merge([
        _part(0, [0.1]), _part(1, [0.2], complete=False)])
    assert not merged.complete


def test_merge_roundtrips_through_save_load(tmp_path):
    parts = [_part(0, [0.1, 0.2]), _part(2, [0.3])]
    paths = []
    for i, part in enumerate(parts):
        path = str(tmp_path / f"part{i}.npz")
        part.save(path)
        paths.append(path)
    merged = StreamCheckpoint.merge(
        [StreamCheckpoint.load(p) for p in paths])
    reference = StreamCheckpoint.merge(parts)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.values(np.empty(0)))
    assert merged.labels == reference.labels
    assert merged.start_index == 0


def test_start_index_persists_and_validates(tmp_path):
    part = _part(7, [0.5, 0.6])
    path = str(tmp_path / "shard.npz")
    part.save(path)
    loaded = StreamCheckpoint.load(path)
    assert loaded.start_index == 7
    assert loaded.next_index == 9
    with pytest.raises(ValueError):
        StreamCheckpoint(KEY, THRESHOLD, start_index=-1)


def test_mismatch_messages_name_both_sides():
    part = _part(0, [0.1])
    with pytest.raises(CheckpointMismatch) as config_error:
        part.validate("other-key", THRESHOLD)
    assert "other-key" in str(config_error.value)
    assert KEY in str(config_error.value)
    with pytest.raises(CheckpointMismatch) as band_error:
        part.validate(KEY, 0.75)
    assert "0.75" in str(band_error.value)
    assert str(THRESHOLD) in str(band_error.value)


def test_load_if_valid_logs_structured_degrade(tmp_path):
    path = tmp_path / "torn.npz"
    path.write_bytes(b"this is not an npz archive")
    sink = io.StringIO()
    before = default_registry().counter(
        "checkpoint_invalid_total").value
    previous = set_log_sink(sink)
    try:
        assert StreamCheckpoint.load_if_valid(str(path)) is None
    finally:
        set_log_sink(previous)
    logged = sink.getvalue()
    assert "checkpoint.invalid" in logged
    assert "restart-from-zero" in logged
    assert default_registry().counter(
        "checkpoint_invalid_total").value == before + 1
    # A missing checkpoint is the normal first run: silent.
    sink2 = io.StringIO()
    previous = set_log_sink(sink2)
    try:
        assert StreamCheckpoint.load_if_valid(
            str(tmp_path / "absent.npz")) is None
    finally:
        set_log_sink(previous)
    assert sink2.getvalue() == ""


def test_to_bytes_from_bytes_round_trips_without_a_filesystem():
    """The TCP shard path ships checkpoints as inline bytes: the
    bytes round-trip must preserve every field save()/load() does."""
    part = _part(5, [0.1, 0.2, 0.3], complete=False)
    clone = StreamCheckpoint.from_bytes(part.to_bytes())
    np.testing.assert_array_equal(clone.values(np.empty(0)),
                                  part.values(np.empty(0)))
    np.testing.assert_array_equal(clone.f0_deviations(),
                                  part.f0_deviations())
    assert clone.labels == part.labels
    assert clone.start_index == 5
    assert clone.next_index == 8
    assert clone.complete is False
    assert clone.config_key == part.config_key
    assert clone.threshold == part.threshold
    assert clone.timing == part.timing


def test_to_bytes_equals_saved_file_bytes(tmp_path):
    """save() is exactly to_bytes() behind an atomic write: what a
    remote worker ships inline is byte-for-byte what a local worker
    leaves on disk."""
    part = _part(0, [0.4, 0.5])
    path = str(tmp_path / "ck.npz")
    part.save(path)
    with open(path, "rb") as fh:
        on_disk = fh.read()
    assert part.to_bytes() == on_disk


def test_from_bytes_rejects_version_mismatch():
    part = _part(0, [0.1])
    data = part.to_bytes()
    # A checkpoint from "the future" must refuse to load, whether it
    # came from disk or over the wire.
    import json as _json
    with np.load(io.BytesIO(data), allow_pickle=False) as archive:
        arrays = {k: archive[k] for k in archive.files}
    meta = _json.loads(str(arrays["meta"]))
    meta["version"] = 999
    arrays["meta"] = np.asarray(_json.dumps(meta))
    buffer = io.BytesIO()
    np.savez_compressed(buffer, **arrays)
    with pytest.raises(CheckpointMismatch, match="version"):
        StreamCheckpoint.from_bytes(buffer.getvalue())
