"""ScreeningRequest value object, submit dispatch, cache migration."""

import threading
import warnings

import numpy as np
import pytest

from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    ScreeningRequest,
    montecarlo_dies,
    stream_montecarlo_dies,
)
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES)


# ----------------------------------------------------------------------
# The request value object
# ----------------------------------------------------------------------
def test_request_defaults():
    request = ScreeningRequest()
    assert request.mode == "run"
    assert request.band == "auto"
    assert not request.keep_signatures
    assert request.encoders is None
    assert request.client is None


def test_request_is_frozen_and_hashable_fields_freeze():
    request = ScreeningRequest(encoders=[1, 2])
    assert request.encoders == (1, 2)  # lists freeze to tuples
    with pytest.raises(AttributeError):
        request.mode = "noise"


def test_request_rejects_unknown_mode():
    with pytest.raises(ValueError, match="mode"):
        ScreeningRequest(mode="batch")


def test_with_population_replaces_only_population():
    request = ScreeningRequest(band=0.1, keep_signatures=True)
    other = request.with_population([1, 2, 3])
    assert other.population == (1, 2, 3) or other.population == [1, 2, 3]
    assert other.band == 0.1
    assert other.keep_signatures


# ----------------------------------------------------------------------
# submit() dispatch vs the legacy entry points
# ----------------------------------------------------------------------
def test_submit_run_matches_run_shim(engine):
    lot = montecarlo_dies(PAPER_BIQUAD, 6, sigma_f0=0.05, seed=2)
    via_shim = engine.run(lot, band="auto")
    via_submit = engine.submit(ScreeningRequest(population=lot))
    np.testing.assert_array_equal(via_shim.ndfs, via_submit.ndfs)
    np.testing.assert_array_equal(via_shim.verdicts,
                                  via_submit.verdicts)
    assert via_shim.threshold == via_submit.threshold
    assert via_shim.labels == via_submit.labels


def test_submit_stream_matches_run_stream_shim(engine):
    def chunks():
        return stream_montecarlo_dies(PAPER_BIQUAD, 10, chunk_size=4,
                                      sigma_f0=0.05, seed=3)

    via_shim = engine.run_stream(chunks())
    via_submit = engine.submit(ScreeningRequest(population=chunks(),
                                                mode="stream"))
    np.testing.assert_array_equal(via_shim.ndfs, via_submit.ndfs)
    np.testing.assert_array_equal(via_shim.verdicts,
                                  via_submit.verdicts)


def test_submit_noise_matches_run_noise_shim(engine):
    lot = montecarlo_dies(PAPER_BIQUAD, 3, sigma_f0=0.05, seed=4)
    via_shim = engine.run_noise(lot, repeats=3, seed=7)
    via_submit = engine.submit(ScreeningRequest(
        population=lot, mode="noise", repeats=3, seed=7))
    np.testing.assert_array_equal(via_shim.ndf_matrix,
                                  via_submit.ndf_matrix)


def test_submit_carries_request_options(engine):
    lot = montecarlo_dies(PAPER_BIQUAD, 2, sigma_f0=0.05, seed=5)
    result = engine.submit(ScreeningRequest(
        population=lot, band=None, keep_signatures=True))
    assert result.threshold is None
    assert result.verdicts is None
    assert result.signature_batch is not None


# ----------------------------------------------------------------------
# Cache migration: per-engine default, deprecated global alias
# ----------------------------------------------------------------------
def test_engines_default_to_private_caches():
    a = CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                  PAPER_BIQUAD,
                                  samples_per_period=SAMPLES)
    b = CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                  PAPER_BIQUAD,
                                  samples_per_period=SAMPLES)
    assert a.cache is not b.cache
    a.golden()
    assert a.cache.info.size == 1
    assert b.cache.info.size == 0  # b saw none of a's traffic


def test_explicit_cache_is_shared():
    cache = GoldenCache()
    a = CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                  PAPER_BIQUAD,
                                  samples_per_period=SAMPLES,
                                  cache=cache)
    b = CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                  PAPER_BIQUAD,
                                  samples_per_period=SAMPLES,
                                  cache=cache)
    a.golden()
    misses = cache.info.misses
    b.golden()
    assert cache.info.misses == misses  # b hit a's entry


def test_default_cache_alias_warns():
    import repro.campaign
    import repro.campaign.cache

    with pytest.warns(DeprecationWarning, match="DEFAULT_CACHE"):
        legacy = repro.campaign.cache.DEFAULT_CACHE
    assert isinstance(legacy, GoldenCache)
    with pytest.warns(DeprecationWarning):
        from_package = repro.campaign.DEFAULT_CACHE
    assert from_package is legacy


def test_missing_attribute_still_raises():
    import repro.campaign.cache

    with pytest.raises(AttributeError):
        repro.campaign.cache.NO_SUCH_THING


def test_cache_is_thread_safe_single_flight():
    cache = GoldenCache()
    calls = []

    def compute():
        calls.append(1)
        return "artifact"

    def work():
        for _ in range(50):
            assert cache.get_or_compute(("key",), compute) \
                == "artifact"

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(calls) == 1  # computed once despite the race
    assert cache.info.hits == 8 * 50 - 1


def test_no_warning_on_normal_import():
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        import importlib

        import repro.campaign

        importlib.reload(repro.campaign)
