"""Front-half kernels: batched synthesis and fused encoding parity.

Every kernel introduced by the array-resident front half is pinned to
its per-die reference bit for bit:

* :func:`batch_transfer` vs scalar ``BiquadFilter.transfer`` (all three
  response kinds, including DC);
* :func:`batch_biquad_traces` vs the per-die ``response()`` +
  :func:`batch_multitone_eval` flow;
* :func:`batch_netlist_traces` vs per-cut netlist responses;
* the fused :func:`monitor_bank_codes` vs ``encoder.code`` and the
  retained PR 2 reference loop -- including hypothesis-driven random
  traces and Monte Carlo-varied banks;
* engine NDFs for every population kind vs the refine-off
  :class:`SignatureTester` per-die loop.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.campaign import (
    CampaignEngine,
    CutListPopulation,
    GoldenCache,
    batch_biquad_traces,
    batch_multitone_eval,
    batch_netlist_traces,
    deviation_sweep_population,
    fault_dictionary,
    montecarlo_dies,
    montecarlo_monitor_banks,
    parameter_grid,
    temperature_corners,
)
from repro.core.testflow import SignatureTester
from repro.core.zones import ZoneEncoder
from repro.devices.process import MonteCarloSampler
from repro.filters.biquad import (
    BiquadFilter,
    BiquadKind,
    BiquadSpec,
    batch_transfer,
)
from repro.filters.towthomas import TowThomasValues
from repro.monitor.bank_encode import (
    monitor_bank_codes,
    monitor_bank_codes_reference,
)
from repro.monitor.configurations import table1_bank, table1_encoder
from repro.monitor.montecarlo import bank_samples
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


def _mixed_specs(count=40, seed=11):
    rng = np.random.default_rng(seed)
    specs = []
    for kind in (BiquadKind.LOWPASS, BiquadKind.BANDPASS,
                 BiquadKind.HIGHPASS):
        for __ in range(count // 3):
            specs.append(BiquadSpec(
                f0_hz=float(rng.uniform(2e3, 40e3)),
                q=float(rng.uniform(0.4, 4.0)),
                gain=float(rng.uniform(0.2, 2.5)),
                kind=kind))
    return specs


# ----------------------------------------------------------------------
# Transfer + trace synthesis
# ----------------------------------------------------------------------
def test_batch_transfer_bit_identical_to_scalar():
    """Vectorized H must equal Python-complex transfer() exactly."""
    specs = _mixed_specs()
    for freq in (0.0, 5e3, 11e3, 15e3, 123456.789):
        h_re, h_im = batch_transfer(specs, freq)
        for i, spec in enumerate(specs):
            h = BiquadFilter(spec).transfer(freq)
            assert h.real == h_re[i] and h.imag == h_im[i], \
                (spec, freq)


def test_batch_transfer_groups_mixed_kinds():
    specs = _mixed_specs(30)
    h_re, h_im = batch_transfer(specs, 7e3)
    by_kind = {}
    for kind in set(s.kind for s in specs):
        idx = [i for i, s in enumerate(specs) if s.kind is kind]
        sub_re, sub_im = batch_transfer([specs[i] for i in idx], 7e3)
        by_kind[kind] = (idx, sub_re, sub_im)
    for idx, sub_re, sub_im in by_kind.values():
        assert np.array_equal(h_re[idx], sub_re)
        assert np.array_equal(h_im[idx], sub_im)


def test_batch_biquad_traces_bit_identical_to_per_die(engine):
    """Object-free synthesis == per-die response() + multitone eval."""
    golden = engine.golden()
    population = montecarlo_dies(PAPER_BIQUAD, 24, sigma_f0=0.05,
                                 sigma_q=0.1, seed=3)
    fused = batch_biquad_traces(population.specs, PAPER_STIMULUS,
                                golden.times)
    responses = [BiquadFilter(s).response(PAPER_STIMULUS)
                 for s in population.specs]
    reference = batch_multitone_eval(responses, golden.times)
    assert np.array_equal(fused, reference)


def test_batch_biquad_traces_all_kinds(engine):
    """Band-pass/high-pass populations synthesize exactly too."""
    golden = engine.golden()
    specs = _mixed_specs(24, seed=5)
    fused = batch_biquad_traces(specs, PAPER_STIMULUS, golden.times)
    responses = [BiquadFilter(s).response(PAPER_STIMULUS) for s in specs]
    reference = batch_multitone_eval(responses, golden.times)
    assert np.array_equal(fused, reference)


def test_batch_biquad_traces_empty(engine):
    golden = engine.golden()
    out = batch_biquad_traces([], PAPER_STIMULUS, golden.times)
    assert out.shape == (0, golden.times.size)


def test_batch_netlist_traces_bit_identical(engine):
    """Stacked MNA synthesis == per-cut netlist response loop."""
    golden = engine.golden()
    population, __ = fault_dictionary(
        TowThomasValues.from_spec(PAPER_BIQUAD))
    fused = batch_netlist_traces(population.cuts, PAPER_STIMULUS,
                                 golden.times)
    assert fused is not None
    responses = [cut.response(PAPER_STIMULUS) for cut in population.cuts]
    reference = batch_multitone_eval(responses, golden.times)
    assert np.array_equal(fused, reference)


def test_batch_netlist_traces_rejects_non_netlist(engine):
    golden = engine.golden()
    cuts = [BiquadFilter(PAPER_BIQUAD)]
    assert batch_netlist_traces(cuts, PAPER_STIMULUS,
                                golden.times) is None


# ----------------------------------------------------------------------
# Fused bank encoding
# ----------------------------------------------------------------------
def _paper_trace_stack(engine, n=8, seed=2):
    golden = engine.golden()
    population = montecarlo_dies(PAPER_BIQUAD, n, sigma_f0=0.06,
                                 seed=seed)
    y = batch_biquad_traces(population.specs, PAPER_STIMULUS,
                            golden.times)
    return golden.x, np.array(y)


def test_fused_codes_match_reference_and_generic(engine):
    encoder = table1_encoder()
    x, y = _paper_trace_stack(engine)
    fused = monitor_bank_codes(encoder, x, y)
    reference = monitor_bank_codes_reference(encoder, x, y)
    generic = encoder.code(np.broadcast_to(x, y.shape), y)
    assert np.array_equal(fused, reference)
    assert np.array_equal(fused, generic)
    assert fused.dtype == np.int64


def test_fused_codes_2d_x_stack(engine):
    """The noisy-capture path hands a full (N, T) X stack."""
    encoder = table1_encoder()
    x, y = _paper_trace_stack(engine, n=6)
    rng = np.random.default_rng(0)
    x2 = np.broadcast_to(x, y.shape) + rng.normal(0.0, 0.01, y.shape)
    fused = monitor_bank_codes(encoder, x2, y)
    reference = monitor_bank_codes_reference(encoder, x2, y)
    assert np.array_equal(fused, reference)
    assert np.array_equal(fused, encoder.code(x2, y))


def test_fused_codes_montecarlo_varied_bank(engine):
    """Per-device model cards get private cache slots, never shared."""
    x, y = _paper_trace_stack(engine, n=5, seed=9)
    varied = bank_samples(table1_bank(), MonteCarloSampler(rng=4), 3)
    for bank in varied:
        encoder = ZoneEncoder(bank)
        fused = monitor_bank_codes(encoder, x, y)
        assert np.array_equal(fused,
                              encoder.code(np.broadcast_to(x, y.shape),
                                           y))


def test_fused_codes_single_row(engine):
    encoder = table1_encoder()
    x, y = _paper_trace_stack(engine, n=1)
    fused = monitor_bank_codes(encoder, x, y)
    assert np.array_equal(fused, encoder.code(np.broadcast_to(x, y.shape),
                                              y))


@settings(max_examples=25, deadline=None)
@given(st.integers(0, 2 ** 32 - 1), st.integers(1, 4),
       st.floats(0.2, 3.0))
def test_fused_codes_random_traces_hypothesis(seed, rows, span):
    """Random point clouds (including boundary-straddling values)."""
    rng = np.random.default_rng(seed)
    encoder = table1_encoder()
    x = rng.uniform(-0.2, span, 64)
    y = rng.uniform(-0.2, span, (rows, 64))
    fused = monitor_bank_codes(encoder, x, y)
    reference = monitor_bank_codes_reference(encoder, x, y)
    generic = encoder.code(np.broadcast_to(x, y.shape), y)
    assert np.array_equal(fused, reference)
    assert np.array_equal(fused, generic)


# ----------------------------------------------------------------------
# Engine equivalence across population kinds
# ----------------------------------------------------------------------
def _per_die_reference(engine, cuts):
    tester = SignatureTester(engine.config.encoder, PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=SAMPLES, refine=False)
    return np.asarray([tester.ndf_of(cut) for cut in cuts])


@pytest.mark.parametrize("population_factory", [
    lambda: montecarlo_dies(PAPER_BIQUAD, 10, sigma_f0=0.04, seed=21),
    lambda: deviation_sweep_population(PAPER_BIQUAD,
                                       [-0.12, -0.04, 0.04, 0.12]),
    lambda: parameter_grid(PAPER_BIQUAD, [-0.05, 0.05], [-0.1, 0.1]),
], ids=["montecarlo", "sweep", "grid"])
def test_spec_population_kinds_bit_identical(engine, population_factory):
    population = population_factory()
    result = engine.run(population, band=None)
    reference = _per_die_reference(
        engine, [BiquadFilter(s) for s in population.specs])
    assert np.array_equal(result.ndfs, reference)


def test_fault_population_bit_identical(engine):
    population, __ = fault_dictionary(
        TowThomasValues.from_spec(PAPER_BIQUAD))
    result = engine.run(population, band=None)
    reference = _per_die_reference(engine, population.cuts)
    assert np.array_equal(result.ndfs, reference)


def test_mixed_cut_population_falls_back(engine):
    """Netlist + behavioural cuts in one list: per-cut path, same NDFs."""
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    netlist_pop, __ = fault_dictionary(values)
    cuts = [netlist_pop.cuts[0], BiquadFilter(
        PAPER_BIQUAD.with_f0_deviation(0.08))]
    population = CutListPopulation(cuts, ["fault", "behavioural"])
    result = engine.run(population, band=None)
    reference = _per_die_reference(engine, cuts)
    assert np.array_equal(result.ndfs, reference)


def test_encoder_population_kinds_still_run(engine):
    """Monitor-MC and corner banks keep their nonzero-margin NDFs."""
    mc = engine.run(montecarlo_monitor_banks(table1_bank(), 3, seed=2),
                    band=None)
    corners = engine.run(temperature_corners([248.15, 398.15]),
                         band=None)
    assert mc.ndfs.shape == (3,)
    assert corners.ndfs.shape == (2,)
    assert np.all(np.isfinite(mc.ndfs))
    assert np.all(np.isfinite(corners.ndfs))
