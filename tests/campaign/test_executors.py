"""Executor layer: chunking, serial/pool equivalence, determinism."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    GoldenCache,
    ProcessPoolExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    chunked,
    montecarlo_dies,
    stream_montecarlo_dies,
    trace_population,
)
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign


def _config(chunk_size=16):
    return CampaignConfig(table1_encoder(), PAPER_STIMULUS,
                          PAPER_BIQUAD, samples_per_period=512,
                          chunk_size=chunk_size)


def test_chunked_preserves_order_and_content():
    items = list(range(10))
    chunks = chunked(items, 3)
    assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5],
                                         [6, 7, 8], [9]]
    assert chunked([], 3) == []
    with pytest.raises(ValueError):
        chunked(items, 0)


def test_chunked_accepts_numpy_arrays():
    """Arrays chunk into zero-copy row views, 1-D and 2-D alike."""
    flat = np.arange(7)
    chunks = chunked(flat, 3)
    assert [c.tolist() for c in chunks] == [[0, 1, 2], [3, 4, 5], [6]]
    assert all(c.base is flat for c in chunks)
    stack = np.arange(12).reshape(4, 3)
    rows = chunked(stack, 3)
    assert [c.shape for c in rows] == [(3, 3), (1, 3)]
    assert np.array_equal(np.vstack(rows), stack)


def test_serial_executor_maps_in_order():
    outputs = SerialExecutor().map(lambda c: c * 2, [1, 2, 3])
    assert outputs == [2, 4, 6]


def test_chunk_size_does_not_change_results():
    population = montecarlo_dies(PAPER_BIQUAD, 30, sigma_f0=0.03,
                                 seed=2)
    one = CampaignEngine(_config(chunk_size=30),
                         cache=GoldenCache()).run(population, band=None)
    many = CampaignEngine(_config(chunk_size=7),
                          cache=GoldenCache()).run(population, band=None)
    assert np.array_equal(one.ndfs, many.ndfs)


def test_process_pool_bit_identical_to_serial():
    """The acceptance criterion: same seeds -> identical verdicts."""
    population = montecarlo_dies(PAPER_BIQUAD, 24, sigma_f0=0.03,
                                 seed=13)
    serial = CampaignEngine(_config(), cache=GoldenCache()).run(
        population, band="auto")
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = CampaignEngine(_config(), cache=GoldenCache(),
                                executor=pool).run(population,
                                                   band="auto")
    assert np.array_equal(serial.ndfs, pooled.ndfs)
    assert np.array_equal(serial.verdicts, pooled.verdicts)
    assert pooled.executor.startswith("process-pool")


def test_all_executors_bit_identical_including_streaming():
    """Serial, pool and shared-memory runs -- streamed or not -- agree
    bit for bit (the acceptance criterion)."""
    population = montecarlo_dies(PAPER_BIQUAD, 20, sigma_f0=0.03,
                                 seed=17)

    def stream():
        return stream_montecarlo_dies(PAPER_BIQUAD, 20, chunk_size=6,
                                      sigma_f0=0.03, seed=17)

    serial = CampaignEngine(_config(), cache=GoldenCache()).run(
        population, band="auto")
    results = [serial]
    for executor_cls in (ProcessPoolExecutor, SharedMemoryExecutor):
        with executor_cls(max_workers=2) as pool:
            engine = CampaignEngine(_config(), cache=GoldenCache(),
                                    executor=pool)
            results.append(engine.run(population, band="auto"))
            results.append(engine.run_stream(stream(), band="auto"))
    results.append(CampaignEngine(_config(), cache=GoldenCache())
                   .run_stream(stream(), band="auto"))
    for other in results[1:]:
        assert np.array_equal(serial.ndfs, other.ndfs)
        assert np.array_equal(serial.verdicts, other.verdicts)


def test_trace_stack_identical_across_transports():
    """Pickled, shared-memory and in-process trace scoring agree."""
    from repro.campaign.batch import batch_multitone_eval
    from repro.filters.biquad import BiquadFilter

    population = montecarlo_dies(PAPER_BIQUAD, 12, sigma_f0=0.04,
                                 seed=23)
    engine = CampaignEngine(_config(chunk_size=5), cache=GoldenCache())
    golden = engine.golden()
    responses = [BiquadFilter(s).response(PAPER_STIMULUS)
                 for s in population.specs]
    traces = trace_population(
        batch_multitone_eval(responses, golden.times))

    serial = engine.run(traces, band="auto")
    assert serial.executor == "serial"
    outcomes = [serial]
    for executor_cls in (ProcessPoolExecutor, SharedMemoryExecutor):
        with executor_cls(max_workers=2) as pool:
            result = CampaignEngine(_config(chunk_size=5),
                                    cache=GoldenCache(),
                                    executor=pool).run(traces,
                                                       band="auto")
            outcomes.append(result)
    assert outcomes[1].executor.startswith("process-pool")
    assert outcomes[2].executor.startswith("shared-memory")
    for other in outcomes[1:]:
        assert np.array_equal(serial.ndfs, other.ndfs)
        assert np.array_equal(serial.verdicts, other.verdicts)


def test_shared_memory_publish_roundtrip():
    executor = SharedMemoryExecutor(max_workers=1)
    try:
        stack = np.arange(12.0).reshape(3, 4)
        handle, unlink = executor.publish(stack)
        from repro.campaign import attach_shared_array

        view, close = attach_shared_array(handle)
        assert np.array_equal(view, stack)
        close()
        unlink()
    finally:
        executor.shutdown()


def test_process_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ProcessPoolExecutor(max_workers=0)


def test_process_pool_shutdown_idempotent():
    pool = ProcessPoolExecutor(max_workers=1)
    pool.shutdown()
    pool.shutdown()
