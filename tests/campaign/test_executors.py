"""Executor layer: chunking, serial/pool equivalence, determinism."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    GoldenCache,
    ProcessPoolExecutor,
    SerialExecutor,
    chunked,
    montecarlo_dies,
)
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign


def _config(chunk_size=16):
    return CampaignConfig(table1_encoder(), PAPER_STIMULUS,
                          PAPER_BIQUAD, samples_per_period=512,
                          chunk_size=chunk_size)


def test_chunked_preserves_order_and_content():
    items = list(range(10))
    chunks = chunked(items, 3)
    assert [list(c) for c in chunks] == [[0, 1, 2], [3, 4, 5],
                                         [6, 7, 8], [9]]
    assert chunked([], 3) == []
    with pytest.raises(ValueError):
        chunked(items, 0)


def test_serial_executor_maps_in_order():
    outputs = SerialExecutor().map(lambda c: c * 2, [1, 2, 3])
    assert outputs == [2, 4, 6]


def test_chunk_size_does_not_change_results():
    population = montecarlo_dies(PAPER_BIQUAD, 30, sigma_f0=0.03,
                                 seed=2)
    one = CampaignEngine(_config(chunk_size=30),
                         cache=GoldenCache()).run(population, band=None)
    many = CampaignEngine(_config(chunk_size=7),
                          cache=GoldenCache()).run(population, band=None)
    assert np.array_equal(one.ndfs, many.ndfs)


def test_process_pool_bit_identical_to_serial():
    """The acceptance criterion: same seeds -> identical verdicts."""
    population = montecarlo_dies(PAPER_BIQUAD, 24, sigma_f0=0.03,
                                 seed=13)
    serial = CampaignEngine(_config(), cache=GoldenCache()).run(
        population, band="auto")
    with ProcessPoolExecutor(max_workers=2) as pool:
        pooled = CampaignEngine(_config(), cache=GoldenCache(),
                                executor=pool).run(population,
                                                   band="auto")
    assert np.array_equal(serial.ndfs, pooled.ndfs)
    assert np.array_equal(serial.verdicts, pooled.verdicts)
    assert pooled.executor.startswith("process-pool")


def test_process_pool_rejects_bad_worker_count():
    with pytest.raises(ValueError):
        ProcessPoolExecutor(max_workers=0)


def test_process_pool_shutdown_idempotent():
    pool = ProcessPoolExecutor(max_workers=1)
    pool.shutdown()
    pool.shutdown()
