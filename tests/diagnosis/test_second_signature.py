"""Adaptive second signature: splitting PR 3's ambiguity groups.

The acceptance criteria of the multi-signature PR, asserted end to
end on the paper bench:

* the search demonstrably splits ``{r1-open, r5-short}`` while
  correctly reporting ``{r4-open, r4-short}`` (identical responses)
  as invisible by construction;
* the K-channel dictionary's channel 0 is bit-identical to the plain
  dictionary, and the multi matcher with K = 1 degenerates to the
  single matcher exactly;
* the multi-channel confusion study's group-aware accuracy does not
  regress, and per-fault accuracy improves on the split group
  members.
"""

import numpy as np
import pytest

from repro.campaign import CampaignEngine, GoldenCache
from repro.core.multi_signature_batch import MultiSignatureBatch
from repro.diagnosis import (
    DictionaryMatcher,
    MultiDictionaryMatcher,
    MultiFaultDictionary,
    ambiguity_groups,
    compile_fault_dictionary,
    compile_multi_fault_dictionary,
    confusion_study,
    fault_distance_matrix,
    search_second_signature,
)
from repro.monitor.configurations import table1_encoder
from repro.monitor.second_signature import (
    candidate_by_name,
    default_candidates,
    second_signature_bank,
)
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


@pytest.fixture(scope="module")
def dictionary(engine):
    return compile_fault_dictionary(engine)


@pytest.fixture(scope="module")
def search(engine, dictionary):
    return search_second_signature(engine, dictionary)


@pytest.fixture(scope="module")
def multi_dictionary(engine, search):
    return compile_multi_fault_dictionary(engine, search.encoders)


# ----------------------------------------------------------------------
# The search itself
# ----------------------------------------------------------------------
def test_search_splits_r1_open_r5_short(search):
    """The headline split: the dead-gain-path pair resolves."""
    assert search.best is not None
    assert ["r1-open", "r5-short"] in search.resolved_groups
    # In the combined space the two faults no longer share a group.
    after_members = {i for group in search.groups_after for i in group}
    a = search.labels.index("r1-open")
    b = search.labels.index("r5-short")
    assert not any(a in group and b in group
                   for group in search.groups_after)
    assert a not in after_members or b not in after_members \
        or all(not (a in g and b in g) for g in search.groups_after)


def test_search_reports_matched_inverter_pair_invisible(search):
    """r4-open/r4-short share one response: unresolvable by design."""
    assert ["r4-open", "r4-short"] in search.invisible_groups
    assert ["r4-open", "r4-short"] not in search.resolved_groups


def test_search_reports_out_of_window_pair_unresolved(search):
    """r1-short/r5-open differ in trace but saturate outside the
    window -- every in-window boundary sees them identically."""
    assert ["r1-short", "r5-open"] in search.unresolved_groups


def test_search_objective_prefers_splitting_candidates(search):
    """The winner's worst-case separation beats non-splitting banks."""
    best_score = search.scores[search.best.name]
    assert best_score > 0.0
    # A pure small bias shift cannot split the dead-output pair, so
    # its worst-case over the resolvable pairs must be zero.
    assert search.scores["bias-0.05"] == 0.0
    # The level detector is necessary for the headline pair: every
    # candidate without one scores zero on it.
    a = search.labels.index("r1-open")
    b = search.labels.index("r5-short")
    pair = (a, b) if a < b else (b, a)
    for name, separations in search.pair_separations.items():
        if "level" not in name:
            assert separations[pair] == 0.0
        assert separations[pair] >= 0.0


def test_search_second_channel_separates_in_dictionary_space(
        search, multi_dictionary):
    """The compiled channel-1 rows realize the promised separation."""
    a = search.labels.index("r1-open")
    b = search.labels.index("r5-short")
    channel1 = multi_dictionary.channel(1)
    matrix1 = fault_distance_matrix(channel1)
    assert matrix1[a, b] > 1e-3
    # ... while channel 0 still cannot tell them apart.
    matrix0 = fault_distance_matrix(multi_dictionary.channel(0))
    assert matrix0[a, b] <= 1e-9


def test_pinned_candidate_search(engine, dictionary):
    """A single named candidate can be pinned instead of the family."""
    candidate = candidate_by_name("bias-0.10_level1e-05")
    search = search_second_signature(engine, dictionary, [candidate])
    assert search.best is not None
    assert search.best.name == "bias-0.10_level1e-05"
    assert ["r1-open", "r5-short"] in search.resolved_groups


def test_candidate_names_round_trip():
    for candidate in default_candidates():
        rebuilt = candidate_by_name(candidate.name)
        assert rebuilt.name == candidate.name
        assert rebuilt.encoder.fingerprint() \
            == candidate.encoder.fingerprint()
    with pytest.raises(ValueError):
        candidate_by_name("nonsense")


# ----------------------------------------------------------------------
# Multi dictionary + matcher
# ----------------------------------------------------------------------
def test_multi_dictionary_channel0_bit_identical(dictionary,
                                                 multi_dictionary):
    channel0 = multi_dictionary.channel(0)
    assert np.array_equal(channel0.ndfs, dictionary.ndfs)
    assert np.array_equal(channel0.features, dictionary.features)
    assert np.array_equal(channel0.batch.codes, dictionary.batch.codes)
    assert np.array_equal(channel0.batch.durations,
                          dictionary.batch.durations)
    assert channel0.threshold == dictionary.threshold
    assert channel0.golden_signature == dictionary.golden_signature
    assert multi_dictionary.labels == dictionary.labels


def test_compile_multi_k1_degenerates(engine, dictionary):
    """An encoder list of one -- the search's outcome when nothing is
    resolvable -- compiles and diagnoses like the plain dictionary."""
    from repro.campaign import fault_dictionary
    from repro.filters.towthomas import TowThomasValues

    multi = compile_multi_fault_dictionary(
        engine, [engine.config.encoder])
    assert multi.num_channels == 1
    channel0 = multi.channel(0)
    assert np.array_equal(channel0.ndfs, dictionary.ndfs)
    assert np.array_equal(channel0.batch.codes, dictionary.batch.codes)
    assert channel0.threshold == dictionary.threshold
    # A plain (single-channel) campaign result diagnoses through it.
    population, __ = fault_dictionary(
        TowThomasValues.from_spec(PAPER_BIQUAD))
    result = engine.run(population, band=float(multi.threshold),
                        keep_signatures=True)
    via_multi = result.diagnose(multi, top_k=3)
    via_single = result.diagnose(dictionary, top_k=3)
    assert np.array_equal(via_multi.distances, via_single.distances)
    assert np.array_equal(via_multi.top_indices,
                          via_single.top_indices)
    # confusion_study accepts the degenerate dictionary too.
    study = confusion_study(engine, multi, per_fault=2, sigma=0.02,
                            seed=5)
    reference = confusion_study(engine, dictionary, per_fault=2,
                                sigma=0.02, seed=5)
    assert np.array_equal(study.matrix, reference.matrix)


def test_multi_matcher_k1_degenerates_to_single(engine, dictionary):
    """With one channel the combined matcher is the plain matcher."""
    single = DictionaryMatcher(dictionary)
    multi = MultiDictionaryMatcher(MultiFaultDictionary(
        [dictionary], [engine.config.encoder]))
    batch = MultiSignatureBatch([dictionary.batch])
    a = single.match(dictionary.batch, top_k=3)
    b = multi.match(batch, top_k=3)
    assert np.array_equal(a.distances, b.distances)
    assert np.array_equal(a.top_indices, b.top_indices)
    assert np.array_equal(a.top_distances, b.top_distances)


def test_multi_matcher_stacked_and_combined(multi_dictionary):
    matcher = MultiDictionaryMatcher(multi_dictionary)
    batch = MultiSignatureBatch(
        [channel.batch for channel in multi_dictionary.channels])
    stacked = matcher.stacked_distances(batch)
    f = len(multi_dictionary)
    assert stacked.shape == (f, 2 * f)
    combined = matcher.distance_matrix(batch)
    expected = stacked[:, :f] + matcher.tie_break * stacked[:, f:]
    assert np.array_equal(combined, expected)
    # Self-distance stays exactly zero through the combination.
    assert np.all(np.diag(combined) == 0.0)


def test_multi_matcher_checks_channel_count(multi_dictionary,
                                            dictionary):
    matcher = MultiDictionaryMatcher(multi_dictionary)
    with pytest.raises(ValueError, match="channels"):
        matcher.match(MultiSignatureBatch([dictionary.batch]))
    with pytest.raises(TypeError):
        matcher.match(dictionary.batch)
    with pytest.raises(ValueError):
        MultiDictionaryMatcher(multi_dictionary, tie_break=0.0)


# ----------------------------------------------------------------------
# End-to-end: confusion study with the second signature
# ----------------------------------------------------------------------
def test_confusion_study_improves_on_split_group(engine, dictionary,
                                                 multi_dictionary):
    """Group-aware accuracy keeps up; split members improve."""
    single = confusion_study(engine, dictionary, per_fault=4,
                             sigma=0.02, seed=42)
    multi = confusion_study(engine, multi_dictionary, per_fault=4,
                            sigma=0.02, seed=42)
    # The FAIL gate stays channel 0, so both studies diagnose the
    # same dies and deltas isolate the second signature.
    assert np.array_equal(single.detected, multi.detected)
    assert np.array_equal(single.true_indices, multi.true_indices)
    groups = ambiguity_groups(dictionary,
                              matrix=fault_distance_matrix(dictionary))
    assert multi.group_accuracy(groups) \
        >= single.group_accuracy(groups)
    # Only group-aware accuracy is provably no-regress; give plain
    # top-1 one die of slack against platform-dependent near-ties.
    assert multi.accuracy \
        >= single.accuracy - 1.0 / max(1, int(single.detected.sum()))
    labels = dictionary.labels
    improved = 0
    for label in ("r1-open", "r5-short"):
        i = labels.index(label)
        if not single.detected[i]:
            continue
        before = single.matrix[i, i] / single.detected[i]
        after = multi.matrix[i, i] / multi.detected[i]
        assert after >= before
        improved += int(after > before)
    # The pair used to collapse onto one member: at least one side
    # must strictly improve.
    assert improved >= 1


def test_campaign_diagnose_dispatches_multi(engine, multi_dictionary):
    """CampaignResult.diagnose picks the multi matcher for a
    MultiFaultDictionary and reproduces the direct matcher output."""
    from repro.campaign import fault_dictionary
    from repro.filters.towthomas import TowThomasValues

    population, __ = fault_dictionary(
        TowThomasValues.from_spec(PAPER_BIQUAD))
    result = engine.run(population,
                        band=float(multi_dictionary.threshold),
                        keep_signatures=True,
                        encoders=multi_dictionary.encoders)
    diagnosis = result.diagnose(multi_dictionary, top_k=2)
    failing = result.failing_indices()
    matcher = MultiDictionaryMatcher(multi_dictionary)
    direct = matcher.match(
        result.multi_signature_batch.select(failing), top_k=2)
    assert np.array_equal(diagnosis.distances, direct.distances)
    assert np.array_equal(diagnosis.top_indices, direct.top_indices)


def test_second_bank_is_a_sane_encoder():
    """The winning family member still encodes the golden sanely."""
    encoder = second_signature_bank(-0.10, 1e-5)
    assert encoder.num_bits == 6
    assert encoder.origin_zone() == 0
