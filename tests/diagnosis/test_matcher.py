"""Batched matcher: top-1 identification, reference parity, scaling."""

import numpy as np
import pytest

from repro.campaign import CampaignEngine, GoldenCache
from repro.core.signature_batch import SignatureBatch
from repro.diagnosis import (
    DictionaryMatcher,
    ambiguity_groups,
    compile_fault_dictionary,
    fault_distance_matrix,
    perturbed_fault_fleet,
)
from repro.filters.towthomas import TowThomasValues
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


@pytest.fixture(scope="module")
def dictionary(engine):
    return compile_fault_dictionary(engine)


@pytest.fixture(scope="module")
def matcher(dictionary):
    return DictionaryMatcher(dictionary)


def test_every_detectable_fault_identified_top1(dictionary, matcher):
    """The acceptance criterion on the clean fault universe.

    Diagnosing the dictionary's own signatures must return the
    injected fault as top-1 for every detectable fault -- or a fault
    at *exactly* the same distance, in which case the two must share
    an ambiguity group (indistinguishable by construction).
    """
    result = matcher.match(dictionary.batch, top_k=3)
    matrix = fault_distance_matrix(dictionary)
    groups = ambiguity_groups(dictionary, matrix=matrix)
    member = {i: set(g) for g in groups for i in g}
    for i in np.flatnonzero(dictionary.detectable()):
        top = int(result.best_indices[i])
        # Self-distance is exactly zero under the NDF metric.
        assert result.distances[i, i] == 0.0
        assert result.top_distances[i, 0] == 0.0
        if top != i:
            assert top in member[i], (
                f"{dictionary.labels[i]} misdiagnosed as "
                f"{dictionary.labels[top]} outside its ambiguity group")
            assert result.margins()[i] == 0.0  # reported as ambiguous


def test_batched_matches_per_die_reference(engine, dictionary, matcher):
    """Fleet matcher vs the per-die loop: identical, die by die."""
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    population, __ = perturbed_fault_fleet(
        values, dictionary.faults, per_fault=2, sigma=0.03, seed=3)
    screened = engine.run(population, band=None, keep_signatures=True)
    batch = screened.signature_batch
    for metric in ("ndf", "dwell"):
        batched = matcher.match(batch, top_k=4, metric=metric)
        reference = matcher.match_reference(batch, top_k=4,
                                            metric=metric)
        assert np.array_equal(batched.distances, reference.distances)
        assert np.array_equal(batched.top_indices,
                              reference.top_indices)
        assert np.array_equal(batched.top_distances,
                              reference.top_distances)
        assert batched.matches() == reference.matches()
        assert np.array_equal(batched.margins(), reference.margins())


def test_match_signature_single_die(dictionary, matcher):
    signature = dictionary.signature(2)
    result = matcher.match_signature(signature, top_k=2)
    assert result.num_dies == 1
    assert result.best_indices[0] == 2
    assert result.die(0).best == dictionary.labels[2]
    assert result.die(0).signature == signature


def test_topk_clamped_to_dictionary(dictionary, matcher):
    result = matcher.match(dictionary.batch, top_k=999)
    assert result.top_k == len(dictionary)


def test_empty_batch(dictionary, matcher):
    result = matcher.match(SignatureBatch.empty(), top_k=3)
    assert result.num_dies == 0
    assert result.matches() == []
    assert result.distances.shape == (0, len(dictionary))


def test_unknown_metric_rejected(dictionary, matcher):
    with pytest.raises(ValueError, match="metric"):
        matcher.match(dictionary.batch, metric="cosine")
    with pytest.raises(ValueError, match="metric"):
        matcher.match_reference(dictionary.batch, metric="cosine")


def test_result_accuracy_and_payload(dictionary, matcher):
    result = matcher.match(dictionary.batch, top_k=2)
    truth = np.arange(len(dictionary))
    accuracy = result.accuracy(truth)
    assert 0.0 <= accuracy <= 1.0
    assert result.topk_accuracy(truth) >= accuracy
    payload = result.to_payload()
    assert payload["dies"] == len(dictionary)
    assert len(payload["matches"]) == len(dictionary)
    assert "summary" not in payload  # machine payload stays flat
    text = result.summary(max_rows=3)
    assert "diagnosed:" in text and "matches:" in text


@pytest.mark.slow
def test_fleet_of_1000_failing_dies_one_pass(engine, dictionary,
                                             matcher):
    """Acceptance scale: >= 1000 failing dies in a single match call,
    identical to the per-die reference on a subsample."""
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    detectable = int(np.count_nonzero(dictionary.detectable()))
    per_fault = -(-1000 // detectable)
    population, truth = perturbed_fault_fleet(
        values, dictionary.faults, per_fault=per_fault, sigma=0.02,
        seed=17)
    result = engine.run(population,
                        band=float(dictionary.threshold),
                        keep_signatures=True)
    failing = result.failing_indices()
    assert failing.size >= 1000
    diagnosis = result.diagnose(dictionary, top_k=3)
    assert diagnosis.num_dies == failing.size
    sub = np.arange(50)
    reference = matcher.match_reference(
        result.signature_batch.select(failing).select(sub), top_k=3)
    assert np.array_equal(diagnosis.distances[:50],
                          reference.distances)
    assert np.array_equal(diagnosis.top_indices[:50],
                          reference.top_indices)
    # Group-aware accuracy over the whole fleet stays high.
    groups = ambiguity_groups(
        dictionary, matrix=fault_distance_matrix(dictionary))
    assert diagnosis.group_accuracy(truth[failing], groups) >= 0.8
