"""Ambiguity groups, detectability, perturbed fleets, confusion."""

import numpy as np
import pytest

from repro.campaign import CampaignEngine, GoldenCache
from repro.diagnosis import (
    ambiguity_groups,
    compile_fault_dictionary,
    confusion_study,
    detectability_report,
    fault_distance_matrix,
    perturbed_fault_fleet,
)
from repro.filters.faults import catastrophic_fault_universe
from repro.filters.towthomas import TowThomasValues
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


@pytest.fixture(scope="module")
def dictionary(engine):
    return compile_fault_dictionary(engine)


@pytest.fixture(scope="module")
def matrix(dictionary):
    return fault_distance_matrix(dictionary)


def test_distance_matrix_geometry(dictionary, matrix):
    f = len(dictionary)
    assert matrix.shape == (f, f)
    assert np.array_equal(np.diag(matrix), np.zeros(f))
    assert np.allclose(matrix, matrix.T)
    assert np.all(matrix >= 0)


def test_ambiguity_groups_partition_the_universe(dictionary, matrix):
    groups = ambiguity_groups(dictionary, matrix=matrix)
    flat = sorted(i for group in groups for i in group)
    assert flat == list(range(len(dictionary)))  # exact partition
    for group in groups:
        for a in group:
            for b in group:
                if a != b:
                    # Connected: every member is within epsilon of
                    # *some* chain inside the group, and here groups
                    # come from exactly-identical signatures.
                    assert matrix[a, b] <= 1e-9


def test_known_ambiguity_r1_r5(dictionary, matrix):
    """r1-open and r5-short both scale the DC gain path identically:
    the dictionary must place them in one group."""
    labels = dictionary.labels
    groups = ambiguity_groups(dictionary, matrix=matrix)
    named = [{labels[i] for i in group} for group in groups]
    assert any({"r1-open", "r5-short"} <= group for group in named)


def test_epsilon_widens_groups(dictionary, matrix):
    tight = ambiguity_groups(dictionary, epsilon=0.0, matrix=matrix)
    loose = ambiguity_groups(dictionary, epsilon=np.inf, matrix=matrix)
    assert len(loose) == 1
    assert len(tight) >= len(ambiguity_groups(dictionary,
                                              epsilon=1e-3,
                                              matrix=matrix))


def test_detectability_report(dictionary):
    coverage = detectability_report(dictionary)
    assert coverage.detectable.shape == (len(dictionary),)
    assert 0.0 <= coverage.coverage <= 1.0
    # The matched inverter pair r4 is invisible by construction.
    assert "r4-open" in coverage.escapes
    assert "coverage:" in coverage.summary()


def test_detectability_requires_threshold(dictionary):
    from dataclasses import replace

    with pytest.raises(ValueError, match="threshold"):
        detectability_report(replace(dictionary, threshold=None))


def test_perturbed_fleet_determinism():
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    faults = catastrophic_fault_universe()[:3]
    one, truth_one = perturbed_fault_fleet(values, faults,
                                           per_fault=2, seed=5)
    two, truth_two = perturbed_fault_fleet(values, faults,
                                           per_fault=2, seed=5)
    other, __ = perturbed_fault_fleet(values, faults, per_fault=2,
                                      seed=6)
    assert np.array_equal(truth_one, truth_two)
    assert one.labels == two.labels
    for a, b in zip(one.cuts, two.cuts):
        assert a.values == b.values
    assert any(a.values != b.values
               for a, b in zip(one.cuts, other.cuts))


def test_perturbed_fleet_keeps_fault_character():
    """Perturbation must not wash out the injected defect."""
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    faults = catastrophic_fault_universe()[:2]  # r1-open, r1-short
    population, truth = perturbed_fault_fleet(values, faults,
                                              per_fault=3, sigma=0.05,
                                              seed=0)
    assert len(population) == 6
    assert np.array_equal(truth, [0, 0, 0, 1, 1, 1])
    for cut, j in zip(population.cuts, truth):
        if faults[j].label == "r1-open":
            assert cut.values.r1 > values.r1 * 1e5
        else:
            assert cut.values.r1 < 2.0


def test_perturbed_fleet_validation():
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    faults = catastrophic_fault_universe()[:1]
    with pytest.raises(ValueError, match="per fault"):
        perturbed_fault_fleet(values, faults, per_fault=0)
    with pytest.raises(ValueError, match="sigma"):
        perturbed_fault_fleet(values, faults, sigma=-0.1)


def test_confusion_study_end_to_end(engine, dictionary, matrix):
    study = confusion_study(engine, dictionary, per_fault=2,
                            sigma=0.01, seed=2)
    f = len(dictionary)
    assert study.matrix.shape == (f, f)
    assert study.injected.sum() == 2 * f
    assert study.detected.sum() == study.matrix.sum()
    assert study.detected.sum() <= study.injected.sum()
    assert 0.0 <= study.accuracy <= 1.0
    groups = ambiguity_groups(dictionary, matrix=matrix)
    assert study.group_accuracy(groups) >= study.accuracy
    # At small sigma, group-aware diagnosis stays strong.
    assert study.group_accuracy(groups) >= 0.8
    assert "top-1:" in study.summary()


def test_confusion_exact_fleet_is_group_perfect(engine, dictionary,
                                                matrix):
    """With zero perturbation every detected die IS its dictionary
    row: group-aware top-1 must be exactly 100 %."""
    study = confusion_study(engine, dictionary, per_fault=1,
                            sigma=0.0, seed=0)
    groups = ambiguity_groups(dictionary, matrix=matrix)
    assert study.group_accuracy(groups) == 1.0
    payload = study.to_payload()
    assert payload["matrix"] == study.matrix.tolist()
    assert payload["detection_rate"] == study.detection_rate


def test_confusion_study_requires_threshold(engine):
    bare = compile_fault_dictionary(engine, band=None)
    with pytest.raises(ValueError, match="threshold"):
        confusion_study(engine, bare, per_fault=1)


def test_confusion_study_rejects_foreign_dictionary(engine, dictionary):
    """A dictionary compiled on a different capture grid must be
    refused, not silently matched across signature spaces."""
    other = CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=SAMPLES // 2, cache=GoldenCache())
    foreign = compile_fault_dictionary(other)
    with pytest.raises(ValueError, match="different configuration"):
        confusion_study(engine, foreign, per_fault=1)


def test_group_accuracy_helper(dictionary, matrix):
    from repro.diagnosis import DictionaryMatcher

    result = DictionaryMatcher(dictionary).match(dictionary.batch,
                                                 top_k=1)
    truth = np.arange(len(dictionary))
    groups = ambiguity_groups(dictionary, matrix=matrix)
    assert result.group_accuracy(truth, groups) == 1.0
    assert result.group_accuracy(truth, []) == result.accuracy(truth)
    with pytest.raises(ValueError, match="per die"):
        result.group_accuracy(truth[:-1], groups)
