"""Fault dictionary: compilation, caching, features, serialization."""

import numpy as np
import pytest

from repro.campaign import (
    CampaignEngine,
    CutListPopulation,
    GoldenCache,
)
from repro.core.ndf import ndf
from repro.diagnosis import (
    FaultDictionary,
    compile_fault_dictionary,
    default_fault_universe,
    dwell_features,
)
from repro.filters.faults import FaultKind, catastrophic_fault_universe
from repro.filters.towthomas import TowThomasValues
from repro.monitor.configurations import table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def engine():
    return CampaignEngine.from_parts(table1_encoder(), PAPER_STIMULUS,
                                     PAPER_BIQUAD,
                                     samples_per_period=SAMPLES,
                                     cache=GoldenCache())


@pytest.fixture(scope="module")
def dictionary(engine):
    return compile_fault_dictionary(engine)


def test_default_universe_composition():
    universe = default_fault_universe()
    catastrophic = [f for f in universe
                    if f.kind is not FaultKind.PARAMETRIC]
    parametric = [f for f in universe
                  if f.kind is FaultKind.PARAMETRIC]
    assert len(catastrophic) == 14  # 7 components x {open, short}
    assert len(parametric) == 6    # two signed classes per parameter
    assert len(default_fault_universe(parametric=False)) == 14
    assert len({f.label for f in universe}) == len(universe)


def test_dictionary_aligns_with_universe(dictionary):
    assert len(dictionary) == len(default_fault_universe())
    assert len(dictionary.batch) == len(dictionary)
    assert dictionary.ndfs.shape == (len(dictionary),)
    assert dictionary.features.shape == (len(dictionary), 64)
    assert dictionary.labels[0] == "r1-open"


def test_rows_match_per_die_tester(engine, dictionary):
    """Dictionary NDFs must equal scoring each faulted CUT alone."""
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    golden = engine.golden().signature
    for i in (0, 5, len(dictionary) - 1):
        fault = dictionary.faults[i]
        single = engine.run(
            CutListPopulation([fault.apply_to_biquad(values)],
                              [fault.label]),
            band=None, keep_signatures=True)
        assert single.ndfs[0] == dictionary.ndfs[i]
        assert ndf(single.signature_batch.row(0), golden) \
            == dictionary.ndfs[i]


def test_features_are_dwell_fractions(dictionary):
    """Each feature row sums to 1 (the whole period is accounted)."""
    sums = dictionary.features.sum(axis=1)
    assert np.allclose(sums, 1.0)
    # Row i's nonzero codes are exactly the signature's distinct codes.
    sig = dictionary.signature(3)
    nonzero = set(np.flatnonzero(dictionary.features[3]).tolist())
    assert nonzero == sig.distinct_codes()


def test_dwell_features_rejects_wide_codes(dictionary):
    with pytest.raises(ValueError, match="wider"):
        dwell_features(dictionary.batch, num_bits=2)


def test_compilation_is_cached(engine):
    before = engine.cache.info
    first = compile_fault_dictionary(engine)
    second = compile_fault_dictionary(engine)
    after = engine.cache.info
    assert second.batch is first.batch  # same cached rows
    assert after.hits > before.hits


def test_threshold_attaches_without_recompiling(engine):
    base = compile_fault_dictionary(engine)
    loose = compile_fault_dictionary(engine, band=10.0)
    assert loose.threshold == 10.0
    assert loose.batch is base.batch
    assert not np.any(loose.detectable())


def test_detectable_requires_threshold(engine):
    dictionary = compile_fault_dictionary(engine, band=None)
    with pytest.raises(ValueError, match="threshold"):
        dictionary.detectable()
    assert np.any(dictionary.detectable(0.05))


def test_save_load_round_trip(dictionary, tmp_path):
    path = tmp_path / "dictionary.npz"
    dictionary.save(path)
    loaded = FaultDictionary.load(path)
    assert loaded.faults == dictionary.faults
    assert np.array_equal(loaded.ndfs, dictionary.ndfs)
    assert np.array_equal(loaded.features, dictionary.features)
    assert np.array_equal(loaded.batch.codes, dictionary.batch.codes)
    assert np.array_equal(loaded.batch.durations,
                          dictionary.batch.durations)
    assert np.array_equal(loaded.batch.row_offsets,
                          dictionary.batch.row_offsets)
    assert loaded.num_bits == dictionary.num_bits
    assert loaded.threshold == dictionary.threshold
    assert loaded.golden_signature == dictionary.golden_signature


def test_custom_universe(engine):
    universe = catastrophic_fault_universe()[:4]
    dictionary = compile_fault_dictionary(engine, faults=universe)
    assert len(dictionary) == 4
    assert dictionary.labels == [f.label for f in universe]


def test_save_returns_normalized_path(dictionary, tmp_path):
    bare = tmp_path / "bare_name"
    written = dictionary.save(bare)
    assert written == str(bare) + ".npz"
    loaded = FaultDictionary.load(bare)  # suffix-less load works
    assert loaded.faults == dictionary.faults


def test_compile_matches_sequential_per_cut_reference(engine, dictionary):
    """Batched-MNA compilation == the sequential per-cut front half.

    The compile path now synthesizes every fault's trace through
    ``ac_analysis_batch`` / ``dc_solve_batch``; the retained per-cut
    ``response()`` loop must produce bit-identical signature rows and
    NDFs.
    """
    from repro.campaign.batch import (
        batch_codes,
        batch_extract,
        batch_multitone_eval,
    )

    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    golden = engine.golden()
    cuts = [fault.apply_to_biquad(values) for fault in dictionary.faults]
    responses = [cut.response(PAPER_STIMULUS) for cut in cuts]
    y = batch_multitone_eval(responses, golden.times)
    codes = batch_codes(engine.config.encoder, golden.x, y)
    reference = batch_extract(golden.times, codes, golden.period)
    assert np.array_equal(reference.ndf_to(golden.signature),
                          dictionary.ndfs)
    assert np.array_equal(reference.codes, dictionary.batch.codes)
    assert np.array_equal(reference.durations,
                          dictionary.batch.durations)
    assert np.array_equal(reference.row_offsets,
                          dictionary.batch.row_offsets)


# ----------------------------------------------------------------------
# Multi-channel serialization
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def multi_dictionary(engine):
    from repro.diagnosis import (
        compile_multi_fault_dictionary,
        search_second_signature,
    )

    single = compile_fault_dictionary(engine)
    search = search_second_signature(engine, single)
    assert search.best is not None  # the paper bench always splits
    return compile_multi_fault_dictionary(
        engine, [engine.config.encoder, search.best.encoder])


def test_multi_save_load_round_trip(multi_dictionary, tmp_path):
    from repro.diagnosis import MultiFaultDictionary

    path = multi_dictionary.save(tmp_path / "multi.npz")
    loaded = MultiFaultDictionary.load(
        path, encoders=multi_dictionary.encoders)
    assert loaded.num_channels == multi_dictionary.num_channels
    assert loaded.faults == multi_dictionary.faults
    assert loaded.encoders == multi_dictionary.encoders
    for k in range(multi_dictionary.num_channels):
        original = multi_dictionary.channel(k)
        restored = loaded.channel(k)
        assert np.array_equal(restored.batch.codes,
                              original.batch.codes)
        assert np.array_equal(restored.batch.durations,
                              original.batch.durations)
        assert np.array_equal(restored.batch.row_offsets,
                              original.batch.row_offsets)
        assert np.array_equal(restored.ndfs, original.ndfs)
        assert np.array_equal(restored.features, original.features)
        assert restored.num_bits == original.num_bits
        assert restored.threshold == original.threshold
        assert restored.golden_signature == original.golden_signature


def test_multi_load_without_encoders_uses_placeholders(
        multi_dictionary, tmp_path):
    from repro.diagnosis import MultiFaultDictionary

    path = multi_dictionary.save(tmp_path / "bare")
    assert path.endswith(".npz")
    loaded = MultiFaultDictionary.load(tmp_path / "bare")
    assert loaded.encoders \
        == [None] * multi_dictionary.num_channels
    # Matching only reads signature rows, so a bare load still
    # supports distance math.
    from repro.diagnosis import fault_distance_matrix

    matrix = fault_distance_matrix(loaded.channel(0), "ndf")
    assert matrix.shape == (len(loaded), len(loaded))


def test_multi_load_rejects_wrong_encoders(multi_dictionary,
                                           tmp_path):
    from repro.diagnosis import MultiFaultDictionary

    path = multi_dictionary.save(tmp_path / "multi.npz")
    with pytest.raises(ValueError, match="channels"):
        MultiFaultDictionary.load(
            path, encoders=list(multi_dictionary.encoders) * 2)
    with pytest.raises(ValueError, match="fingerprint"):
        MultiFaultDictionary.load(
            path,
            encoders=list(reversed(multi_dictionary.encoders)))
