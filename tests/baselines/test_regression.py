"""Regression (alternate test) baseline on signature dwell features."""

import numpy as np
import pytest

from repro.baselines import RegressionTester, dwell_vector
from repro.core.signature import Signature


def test_dwell_vector_basics():
    sig = Signature.from_pairs([(1, 0.25), (2, 0.5), (1, 0.25)])
    vec = dwell_vector(sig, [1, 2])
    np.testing.assert_allclose(vec, [0.5, 0.5, 0.0])
    assert vec.sum() == pytest.approx(1.0)


def test_dwell_vector_overflow_slot():
    sig = Signature.from_pairs([(1, 0.4), (9, 0.6)])
    vec = dwell_vector(sig, [1, 2])
    np.testing.assert_allclose(vec, [0.4, 0.0, 0.6])


@pytest.fixture(scope="module")
def training_data(setup):
    deviations = np.linspace(-0.15, 0.15, 13)
    signatures = [setup.tester.signature_of(setup.deviated_filter(d))
                  for d in deviations]
    return deviations, signatures


def test_fit_and_in_sample_accuracy(training_data):
    deviations, signatures = training_data
    tester = RegressionTester()
    model = tester.fit(deviations, signatures)
    assert model.training_residual_rms < 0.01  # within 1 % deviation


def test_out_of_sample_prediction(setup, training_data):
    deviations, signatures = training_data
    tester = RegressionTester()
    tester.fit(deviations, signatures)
    for dev in (-0.12, -0.04, 0.06, 0.13):
        sig = setup.tester.signature_of(setup.deviated_filter(dev))
        predicted = tester.predict(sig)
        assert predicted == pytest.approx(dev, abs=0.03)


def test_decision(setup, training_data):
    deviations, signatures = training_data
    tester = RegressionTester()
    tester.fit(deviations, signatures)
    good = setup.tester.signature_of(setup.deviated_filter(0.01))
    bad = setup.tester.signature_of(setup.deviated_filter(0.14))
    assert tester.decide(good, tolerance=0.05)
    assert not tester.decide(bad, tolerance=0.05)


def test_prediction_errors_vector(training_data):
    deviations, signatures = training_data
    tester = RegressionTester()
    tester.fit(deviations, signatures)
    errors = tester.prediction_errors(deviations, signatures)
    assert errors.shape == deviations.shape
    assert np.sqrt(np.mean(errors ** 2)) < 0.01


def test_unfitted_raises():
    tester = RegressionTester()
    sig = Signature.from_pairs([(1, 1.0)])
    with pytest.raises(RuntimeError):
        tester.predict(sig)


def test_fit_validation():
    tester = RegressionTester()
    sig = Signature.from_pairs([(1, 1.0)])
    with pytest.raises(ValueError):
        tester.fit([0.1], [sig])
    with pytest.raises(ValueError):
        tester.fit([0.1, 0.2], [sig])
