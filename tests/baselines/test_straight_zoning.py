"""Straight-line zoning baseline: fits, orientation, grid partitions."""

import numpy as np
import pytest

from repro.baselines import (
    fit_line_to_boundary,
    fitted_line_bank,
    fitted_line_encoder,
    grid_line_bank,
    grid_line_encoder,
)
from repro.core.boundaries import LinearBoundary
from repro.monitor import table1_monitor


def test_fit_line_to_diagonal_curve():
    """Curve 6 is (almost) a line already: the fit must recover y = x."""
    line = fit_line_to_boundary(table1_monitor(6))
    # Normalize: slope of a*x + b*y + c = 0 is -a/b.
    slope = -line.a / line.b
    assert slope == pytest.approx(1.0, abs=0.05)


def test_fit_preserves_orientation():
    """The line's bit must agree with the original away from both curves."""
    for row in (1, 3, 5, 6):
        original = table1_monitor(row)
        line = fit_line_to_boundary(original)
        agree = 0
        total = 0
        for x in np.linspace(0.05, 0.95, 7):
            for y in np.linspace(0.05, 0.95, 7):
                # Skip points close to either boundary.
                if abs(line.decision(x, y)) < 0.1:
                    continue
                scale = abs(original.decision(1.0, 1.0)) + 1e-30
                if abs(original.decision(x, y)) < 0.05 * scale:
                    continue
                total += 1
                agree += int(line.bit(x, y) == original.bit(x, y))
        assert total > 10
        # A flipped orientation would agree on ~15 % of points; correct
        # orientation disagrees only inside the arc-vs-chord lens, which
        # for the strongly curved arcs (row 3) costs up to ~20 %.
        assert agree / total > 0.70, f"curve {row} orientation mismatch"


def test_fit_returns_none_outside_window():
    faraway = LinearBoundary.horizontal("h", 5.0)
    assert fit_line_to_boundary(faraway) is None


def test_fitted_bank_full(bank):
    lines = fitted_line_bank(bank)
    assert len(lines) == 6
    assert all(isinstance(l, LinearBoundary) for l in lines)


def test_fitted_encoder_produces_zones(bank):
    encoder = fitted_line_encoder(bank)
    census = encoder.zone_census(grid=128)
    assert len(census) >= 10  # a rich partition, like the original
    assert encoder.code(0.02, 0.01) == 0  # origin zone still zero


def test_grid_bank():
    lines = grid_line_bank(3, 2)
    assert len(lines) == 5
    encoder = grid_line_encoder(3, 2)
    # 4 x 3 cells from 3 vertical + 2 horizontal cuts.
    census = encoder.zone_census(grid=64)
    assert len(census) == 12


def test_grid_origin_zone_is_zero():
    encoder = grid_line_encoder(2, 2)
    assert encoder.code(0.01, 0.01) == 0
