"""DC analysis: linear exactness, Newton on nonlinear circuits, fallbacks."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    CurrentSource,
    Diode,
    Resistor,
    SingularCircuitError,
    VoltageSource,
    dc_operating_point,
)
from repro.circuits.dc import ConvergenceError, NewtonOptions


def divider(r1=1e3, r2=1e3, v=1.0):
    ckt = Circuit("divider")
    ckt.add(VoltageSource("V1", "in", "0", dc=v))
    ckt.add(Resistor("R1", "in", "out", r1))
    ckt.add(Resistor("R2", "out", "0", r2))
    return ckt.assemble()


def test_divider_exact():
    system = divider()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "out") == pytest.approx(0.5, abs=1e-12)
    assert sol.voltage(system, "in") == pytest.approx(1.0, abs=1e-12)


def test_divider_asymmetric():
    system = divider(r1=3e3, r2=1e3, v=2.0)
    sol = dc_operating_point(system)
    assert sol.voltage(system, "out") == pytest.approx(0.5)


def test_source_branch_current():
    ckt = Circuit()
    v1 = ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
    ckt.add(Resistor("R1", "a", "0", 100.0))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    # Branch current flows + -> - through the source: the source pushes
    # 10 mA into the resistor, so its internal current is -10 mA.
    assert v1.current(sol.x) == pytest.approx(-0.01)


def test_resistor_ladder_superposition():
    """Two sources: solution must equal the sum of single-source runs."""
    def build(v1, v2):
        ckt = Circuit()
        ckt.add(VoltageSource("V1", "a", "0", dc=v1))
        ckt.add(VoltageSource("V2", "c", "0", dc=v2))
        ckt.add(Resistor("R1", "a", "b", 1e3))
        ckt.add(Resistor("R2", "b", "c", 2e3))
        ckt.add(Resistor("R3", "b", "0", 3e3))
        system = ckt.assemble()
        return dc_operating_point(system).voltage(system, "b")

    vb_both = build(1.0, 2.0)
    vb_1 = build(1.0, 0.0)
    vb_2 = build(0.0, 2.0)
    assert vb_both == pytest.approx(vb_1 + vb_2, rel=1e-12)


def test_current_source_direction():
    """CurrentSource pushes current npos -> nneg through itself."""
    ckt = Circuit()
    ckt.add(CurrentSource("I1", "0", "a", dc=1e-3))  # injects into a
    ckt.add(Resistor("R1", "a", "0", 1e3))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "a") == pytest.approx(1.0)


def test_diode_forward_drop():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=5.0))
    ckt.add(Resistor("R1", "in", "d", 1e3))
    d = ckt.add(Diode("D1", "d", "0"))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    vd = sol.voltage(system, "d")
    assert 0.5 < vd < 0.8  # silicon-ish drop
    # Current through R equals diode current.
    i_r = (5.0 - vd) / 1e3
    i_d, _ = d._iv(vd)
    assert i_r == pytest.approx(i_d, rel=1e-6)


def test_diode_reverse_blocks():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=-5.0))
    ckt.add(Resistor("R1", "in", "d", 1e3))
    ckt.add(Diode("D1", "d", "0"))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    # All the voltage drops across the diode (almost no current).
    assert sol.voltage(system, "d") == pytest.approx(-5.0, abs=1e-3)


def test_kcl_residual_at_solution():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=3.0))
    ckt.add(Resistor("R1", "in", "d", 2e3))
    ckt.add(Diode("D1", "d", "0"))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    residual = system.residual(sol.x)
    assert np.max(np.abs(residual)) < 1e-8


def test_floating_node_is_singular():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
    ckt.add(Resistor("R1", "b", "c", 1e3))  # floating island
    system = ckt.assemble()
    with pytest.raises((SingularCircuitError, ConvergenceError)):
        dc_operating_point(system)


def test_time_varying_source_evaluated_at_t():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "a", "0", dc=lambda t: 2.0 * t))
    ckt.add(Resistor("R1", "a", "0", 1.0))
    system = ckt.assemble()
    assert dc_operating_point(system, t=3.0).voltage(system, "a") \
        == pytest.approx(6.0)


def test_newton_options_respected():
    options = NewtonOptions(max_iterations=1)
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=5.0))
    ckt.add(Resistor("R1", "in", "d", 1e3))
    ckt.add(Diode("D1", "d", "0"))
    system = ckt.assemble()
    # One iteration cannot converge the diode, but the homotopy ladder
    # also gets only one iteration per rung, so the solve must fail.
    with pytest.raises(ConvergenceError):
        dc_operating_point(system, options=options)
