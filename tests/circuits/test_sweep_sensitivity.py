"""DC sweep analysis and component sensitivities."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    Mosfet,
    Resistor,
    VoltageSource,
    dc_sweep,
    ndf_component_sensitivities,
    output_characteristic,
    relative_sensitivities,
    towthomas_f0_sensitivities,
)
from repro.devices import NMOS_65NM
from repro.devices.mos_model import MosModel
from repro.filters import BiquadSpec, TowThomasValues


# ----------------------------------------------------------------------
# DC sweep
# ----------------------------------------------------------------------

def test_linear_sweep_is_proportional():
    ckt = Circuit()
    src = ckt.add(VoltageSource("V1", "in", "0", dc=0.0))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Resistor("R2", "out", "0", 1e3))
    system = ckt.assemble()
    sweep = dc_sweep(system, src, np.linspace(0, 2, 11))
    np.testing.assert_allclose(sweep.voltage("out"),
                               0.5 * sweep.values, atol=1e-12)
    assert not sweep.failed
    # Source value restored afterwards.
    assert src.dc == 0.0


def test_sweep_branch_current():
    ckt = Circuit()
    src = ckt.add(VoltageSource("V1", "in", "0", dc=0.0))
    ckt.add(Resistor("R1", "in", "0", 1e3))
    system = ckt.assemble()
    sweep = dc_sweep(system, src, [1.0, 2.0])
    np.testing.assert_allclose(sweep.branch_current(src),
                               [-1e-3, -2e-3])


def test_sweep_empty_grid_rejected():
    ckt = Circuit()
    src = ckt.add(VoltageSource("V1", "in", "0", dc=0.0))
    ckt.add(Resistor("R1", "in", "0", 1e3))
    with pytest.raises(ValueError):
        dc_sweep(ckt.assemble(), src, [])


def test_mosfet_transfer_curve():
    """VGS sweep of a resistor-loaded stage: drain falls monotonically."""
    model = MosModel(NMOS_65NM, 1.8e-6, 180e-9)
    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.2))
    vg = ckt.add(VoltageSource("VG", "g", "0", dc=0.0))
    ckt.add(Resistor("RL", "vdd", "d", 10e3))
    ckt.add(Mosfet("M1", "d", "g", "0", model))
    system = ckt.assemble()
    sweep = dc_sweep(system, vg, np.linspace(0.0, 1.0, 21))
    vd = sweep.voltage("d")
    assert vd[0] == pytest.approx(1.2, abs=1e-3)   # off
    assert vd[-1] < 0.3                            # hard on
    assert np.all(np.diff(vd) < 1e-9)              # monotone fall


def test_output_characteristic_family():
    """Id(VDS) family: saturation currents ordered by VGS."""
    model = MosModel(NMOS_65NM, 1.8e-6, 180e-9)
    ckt = Circuit()
    vd = ckt.add(VoltageSource("VD", "d", "0", dc=0.0))
    vg = ckt.add(VoltageSource("VG", "g", "0", dc=0.0))
    ckt.add(Mosfet("M1", "d", "g", "0", model))
    system = ckt.assemble()

    def drain_current(state):
        return -vd.current(state)  # source supplies the drain current

    curves = output_characteristic(system, vg, vd,
                                   vgs_values=[0.6, 0.8, 1.0],
                                   vds_values=np.linspace(0.05, 1.2, 12),
                                   current_of=drain_current)
    assert curves.shape == (3, 12)
    # Higher VGS -> more current everywhere.
    assert np.all(curves[1] > curves[0])
    assert np.all(curves[2] > curves[1])
    # Currents match the device model at the final point.
    expected = model.drain_current(1.0, 1.2)
    assert curves[2, -1] == pytest.approx(expected, rel=1e-6)


# ----------------------------------------------------------------------
# Sensitivities
# ----------------------------------------------------------------------

def test_generic_sensitivity_driver():
    state = {"a": 2.0, "b": 3.0}

    def evaluate():
        return state["a"] ** 2 * state["b"]

    rows = relative_sensitivities(
        evaluate,
        {"a": lambda v: state.__setitem__("a", v),
         "b": lambda v: state.__setitem__("b", v)},
        dict(state))
    by_name = {r.component: r for r in rows}
    # S_a = 2, S_b = 1 for Q = a^2 b.
    assert by_name["a"].normalized == pytest.approx(2.0, rel=1e-4)
    assert by_name["b"].normalized == pytest.approx(1.0, rel=1e-4)
    # State restored.
    assert state == {"a": 2.0, "b": 3.0}


def test_towthomas_f0_sensitivities_match_theory():
    """w0 = 1/sqrt(R3 R5 C1 C2): S = -1/2 for each, 0 for the rest."""
    values = TowThomasValues.from_spec(BiquadSpec(11e3, 1.0, 1.0))
    rows = {r.component: r.normalized
            for r in towthomas_f0_sensitivities(values)}
    for name in ("r3", "r5", "c1", "c2"):
        assert rows[name] == pytest.approx(-0.5, abs=1e-3), name
    for name in ("r1", "r2", "r4"):
        assert rows[name] == pytest.approx(0.0, abs=1e-6), name


def test_ndf_sensitivities_identify_observable_components(setup):
    values = TowThomasValues.from_spec(setup.golden_spec)
    rows = {r.component: r.normalized
            for r in ndf_component_sensitivities(setup.tester, values)}
    # The f0-setting components dominate the NDF response...
    for name in ("r3", "r5", "c1", "c2"):
        assert rows[name] > 0.1, name
    # ... while the matched inverter resistor is invisible.
    assert rows["r4"] == pytest.approx(0.0, abs=1e-3)
