"""Netlist container: node numbering, naming rules, assembly."""

import pytest

from repro.circuits import Circuit, CircuitError, Resistor, VoltageSource


def test_node_registration_order():
    ckt = Circuit()
    ckt.add(Resistor("R1", "a", "b", 1.0))
    ckt.add(Resistor("R2", "b", "c", 1.0))
    assert ckt.node_names() == ["a", "b", "c"]
    assert ckt.node_index("a") == 0
    assert ckt.node_index("c") == 2


@pytest.mark.parametrize("ground", ["0", "gnd", "GND", "ground"])
def test_ground_aliases_are_not_nodes(ground):
    ckt = Circuit()
    ckt.add(Resistor("R1", "a", ground, 1.0))
    assert ckt.num_nodes == 1
    assert ckt.node_index(ground) == -1


def test_duplicate_element_name_rejected():
    ckt = Circuit()
    ckt.add(Resistor("R1", "a", "0", 1.0))
    with pytest.raises(CircuitError, match="duplicate"):
        ckt.add(Resistor("R1", "b", "0", 1.0))


def test_unknown_node_lookup_raises():
    ckt = Circuit()
    ckt.add(Resistor("R1", "a", "0", 1.0))
    with pytest.raises(CircuitError, match="unknown node"):
        ckt.node_index("nope")


def test_unknown_element_lookup_raises():
    ckt = Circuit()
    with pytest.raises(CircuitError, match="unknown element"):
        ckt.element("R1")


def test_element_lookup_and_contains():
    ckt = Circuit()
    r = ckt.add(Resistor("R1", "a", "0", 1.0))
    assert ckt.element("R1") is r
    assert "R1" in ckt
    assert "R2" not in ckt


def test_empty_node_name_rejected():
    ckt = Circuit()
    with pytest.raises(CircuitError):
        ckt.add(Resistor("R1", "", "0", 1.0))


def test_branch_counting():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
    ckt.add(Resistor("R1", "a", "b", 1.0))
    ckt.add(VoltageSource("V2", "b", "0", dc=1.0))
    assert ckt.num_branches == 2
    assert ckt.size == ckt.num_nodes + 2


def test_assemble_binds_branch_indices():
    ckt = Circuit()
    v1 = ckt.add(VoltageSource("V1", "a", "0", dc=1.0))
    ckt.add(Resistor("R1", "a", "b", 1.0))
    v2 = ckt.add(VoltageSource("V2", "b", "0", dc=1.0))
    system = ckt.assemble()
    assert v1.branch_index == ckt.num_nodes
    assert v2.branch_index == ckt.num_nodes + 1
    assert system.size == ckt.size


def test_fresh_node_is_unique():
    ckt = Circuit()
    ckt.add(Resistor("R1", "a", "b", 1.0))
    n1 = ckt.fresh_node("x")
    n2 = ckt.fresh_node("x")
    assert n1 != n2
    assert ckt.node_index(n1) >= 0


def test_add_all():
    ckt = Circuit()
    ckt.add_all([Resistor("R1", "a", "0", 1.0),
                 Resistor("R2", "a", "0", 2.0)])
    assert len(ckt) == 2
