"""MOSFET element: operating points, residuals, polarity handling."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    Mosfet,
    Resistor,
    VoltageSource,
    ac_analysis,
    dc_operating_point,
)
from repro.devices import NMOS_65NM, PMOS_65NM
from repro.devices.mos_model import MosModel


@pytest.fixture
def nmos():
    return MosModel(NMOS_65NM, w=1.8e-6, l=180e-9)


@pytest.fixture
def pmos():
    return MosModel(PMOS_65NM, w=1.8e-6, l=180e-9)


def common_source(nmos, vg=0.6, rl=10e3, vdd=1.2):
    ckt = Circuit("cs")
    ckt.add(VoltageSource("VDD", "vdd", "0", dc=vdd))
    ckt.add(VoltageSource("VG", "g", "0", dc=vg))
    ckt.add(Resistor("RL", "vdd", "d", rl))
    m = ckt.add(Mosfet("M1", "d", "g", "0", nmos))
    return ckt.assemble(), m


def test_common_source_kcl(nmos):
    system, m = common_source(nmos)
    sol = dc_operating_point(system)
    vd = sol.voltage(system, "d")
    i_model = nmos.drain_current(0.6, vd)
    i_load = (1.2 - vd) / 10e3
    assert i_model == pytest.approx(i_load, rel=1e-9)
    assert np.max(np.abs(system.residual(sol.x))) < 1e-10


def test_cutoff_device_pulls_no_current(nmos):
    system, m = common_source(nmos, vg=0.1)  # far below VT
    sol = dc_operating_point(system)
    assert sol.voltage(system, "d") == pytest.approx(1.2, abs=1e-3)


def test_gate_draws_no_current(nmos):
    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.2))
    ckt.add(VoltageSource("VG", "gg", "0", dc=0.8))
    ckt.add(Resistor("RG", "gg", "g", 1e6))  # series gate resistor
    ckt.add(Resistor("RL", "vdd", "d", 10e3))
    ckt.add(Mosfet("M1", "d", "g", "0", MosModel(NMOS_65NM, 1.8e-6, 180e-9)))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    # No gate current: no drop across RG.
    assert sol.voltage(system, "g") == pytest.approx(0.8, abs=1e-9)


def test_pmos_common_source(pmos):
    ckt = Circuit("cs-p")
    ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.2))
    ckt.add(VoltageSource("VG", "g", "0", dc=0.5))  # VSG = 0.7: on
    ckt.add(Resistor("RL", "d", "0", 10e3))
    ckt.add(Mosfet("M1", "d", "g", "vdd", pmos))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    vd = sol.voltage(system, "d")
    assert 0.0 < vd < 1.2
    # pMOS sources current into the load: load current = vd / RL.
    i_dev = pmos.drain_current(0.5 - 1.2, vd - 1.2)
    assert -i_dev == pytest.approx(vd / 10e3, rel=1e-9)


def test_diode_connected_nmos(nmos):
    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.2))
    ckt.add(Resistor("R1", "vdd", "d", 20e3))
    ckt.add(Mosfet("M1", "d", "d", "0", nmos))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    vd = sol.voltage(system, "d")
    assert NMOS_65NM.vt0 * 0.8 < vd < 1.0  # a VGS-ish drop
    assert nmos.drain_current(vd, vd) == pytest.approx((1.2 - vd) / 20e3,
                                                       rel=1e-9)


def test_small_signal_gain_matches_gm_times_load(nmos):
    """AC gain of the common-source stage = -gm * (RL || ro)."""
    ckt = Circuit("cs-ac")
    ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.2))
    ckt.add(VoltageSource("VG", "g", "0", dc=0.6, ac=1.0))
    ckt.add(Resistor("RL", "vdd", "d", 10e3))
    ckt.add(Mosfet("M1", "d", "g", "0", nmos))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    vd = sol.voltage(system, "d")
    e = 1e-6
    gm = (nmos.drain_current(0.6 + e, vd)
          - nmos.drain_current(0.6 - e, vd)) / (2 * e)
    gds = (nmos.drain_current(0.6, vd + e)
           - nmos.drain_current(0.6, vd - e)) / (2 * e)
    res = ac_analysis(system, [1e3], x_op=sol.x)
    gain = res.voltage("d")[0]
    expected = -gm / (1.0 / 10e3 + gds)
    assert gain.real == pytest.approx(expected, rel=1e-4)
    assert abs(gain.imag) < 1e-9


def test_drain_current_at_helper(nmos):
    system, m = common_source(nmos)
    sol = dc_operating_point(system)
    vd = sol.voltage(system, "d")
    assert m.drain_current_at(sol.x, system.circuit) \
        == pytest.approx(nmos.drain_current(0.6, vd))
