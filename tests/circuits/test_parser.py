"""SPICE-style netlist parser."""

import numpy as np
import pytest

from repro.circuits import (
    NetlistError,
    ac_analysis,
    dc_operating_point,
    parse_netlist,
    parse_value,
    transient,
)


# ----------------------------------------------------------------------
# Value parsing
# ----------------------------------------------------------------------

@pytest.mark.parametrize("token,expected", [
    ("1", 1.0), ("2.2k", 2200.0), ("10u", 1e-5), ("3meg", 3e6),
    ("100n", 1e-7), ("4.7p", 4.7e-12), ("1.5e-3", 1.5e-3),
    ("-2m", -2e-3), ("1g", 1e9), ("2.5f", 2.5e-15), ("10K", 1e4),
    ("1kohm", 1e3),  # trailing unit letters ignored, SPICE style
])
def test_parse_value(token, expected):
    assert parse_value(token) == pytest.approx(expected)


@pytest.mark.parametrize("token", ["", "abc", "1..2", "--3"])
def test_parse_value_rejects(token):
    with pytest.raises(ValueError):
        parse_value(token)


# ----------------------------------------------------------------------
# Element parsing
# ----------------------------------------------------------------------

def test_divider():
    ckt = parse_netlist("""
    * comment line
    V1 in 0 1.0
    R1 in out 1k   ; inline comment
    R2 out 0 1k
    .end
    """)
    system = ckt.assemble()
    assert dc_operating_point(system).voltage(system, "out") \
        == pytest.approx(0.5)


def test_continuation_lines():
    ckt = parse_netlist("""
    V1 in 0
    + 2.0
    R1 in 0 1k
    """)
    system = ckt.assemble()
    assert dc_operating_point(system).voltage(system, "in") \
        == pytest.approx(2.0)


def test_sin_source_and_transient():
    ckt = parse_netlist("""
    V1 in 0 SIN(0 1 1k)
    R1 in out 1k
    C1 out 0 100n
    """)
    system = ckt.assemble()
    result = transient(system, 2e-3, 1e-6)
    assert np.max(result.voltage("out")) > 0.5


def test_pulse_and_pwl_sources():
    ckt = parse_netlist("""
    V1 a 0 PULSE(0 1 1u 1n 1n 5u 10u)
    V2 b 0 PWL(0 0 1m 1)
    R1 a 0 1k
    R2 b 0 1k
    """)
    v1 = ckt.element("V1")
    v2 = ckt.element("V2")
    assert v1.value_at(3e-6) == pytest.approx(1.0)
    assert v2.value_at(0.5e-3) == pytest.approx(0.5)


def test_ac_spec():
    ckt = parse_netlist("""
    V1 in 0 0 AC 1
    R1 in out 1k
    C1 out 0 1u
    """)
    system = ckt.assemble()
    f3 = 1.0 / (2 * np.pi * 1e-3)
    res = ac_analysis(system, [f3])
    assert res.magnitude("out")[0] == pytest.approx(1 / np.sqrt(2),
                                                    rel=1e-6)


def test_controlled_sources_including_forward_reference():
    ckt = parse_netlist("""
    F1 0 out Vs 2.0
    V1 in 0 1.0
    R1 in a 1k
    Vs a 0 0
    RL out 0 1k
    G1 0 g2 in 0 1m
    Rg g2 0 1k
    E1 e 0 in 0 3.0
    Re e 0 1k
    H1 h 0 Vs 1k
    Rh h 0 1k
    """)
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "out") == pytest.approx(2.0)
    assert sol.voltage(system, "g2") == pytest.approx(1.0)
    assert sol.voltage(system, "e") == pytest.approx(3.0)
    assert sol.voltage(system, "h") == pytest.approx(1.0)


def test_diode_line():
    ckt = parse_netlist("""
    V1 in 0 5
    R1 in d 1k
    D1 d 0
    """)
    system = ckt.assemble()
    vd = dc_operating_point(system).voltage(system, "d")
    assert 0.5 < vd < 0.8


def test_mosfet_with_model_card():
    ckt = parse_netlist("""
    .model nch NMOS (vto=0.42 kp=400u n=1.3 lambda=0.15 w=1.8u l=180n)
    VDD vdd 0 1.2
    VG g 0 0.6
    RL vdd d 10k
    M1 d g 0 nch
    """)
    system = ckt.assemble()
    vd = dc_operating_point(system).voltage(system, "d")
    assert 0.3 < vd < 0.7


def test_mosfet_instance_size_override():
    ckt = parse_netlist("""
    .model nch NMOS (vto=0.42 kp=400u w=1u l=180n)
    VDD d 0 1.2
    VG g 0 0.8
    M1 d g 0 nch w=3u
    """)
    m = ckt.element("M1")
    assert m.model.w == pytest.approx(3e-6)


def test_model_card_may_follow_instance():
    ckt = parse_netlist("""
    VDD d 0 1.2
    VG g 0 0.8
    M1 d g 0 nch
    .model nch NMOS (vto=0.4)
    """)
    assert ckt.element("M1").model.params.vt0 == pytest.approx(0.4)


def test_end_card_stops_parsing():
    ckt = parse_netlist("""
    R1 a 0 1k
    .end
    R2 b 0 1k
    """)
    assert "R2" not in ckt


# ----------------------------------------------------------------------
# Error reporting
# ----------------------------------------------------------------------

@pytest.mark.parametrize("netlist,fragment", [
    ("R1 a 0", "needs 2 nodes"),
    ("X1 a b c", "unsupported element"),
    (".tran 1u 1m\nR1 a 0 1k", "unsupported card"),
    ("M1 d g 0 missing\nV1 d 0 1", "unknown model"),
    ("F1 0 out Vnone 2.0\nR1 out 0 1k", "not found"),
    ("+ 1k", "continuation"),
    ("", "no elements"),
    ("V1 a 0 SIN(1)", "SIN needs"),
    ("V1 a 0 PULSE(1 2 3)", "PULSE needs"),
    ("V1 a 0 PWL(1)", "PWL needs"),
])
def test_errors(netlist, fragment):
    with pytest.raises(NetlistError, match=fragment):
        parse_netlist(netlist)


def test_error_reports_line_number():
    with pytest.raises(NetlistError, match="line 3"):
        parse_netlist("""V1 a 0 1
R1 a 0 1k
X9 bad element here
""")
