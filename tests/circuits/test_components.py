"""Component-level behaviour: sources, controlled sources, validation."""

import pytest

from repro.circuits import (
    Capacitor,
    Cccs,
    Ccvs,
    Circuit,
    CurrentSource,
    IdealOpAmp,
    Inductor,
    Resistor,
    Vccs,
    Vcvs,
    VoltageSource,
    dc_operating_point,
    piecewise_linear,
    pulse,
    sine,
)


# ----------------------------------------------------------------------
# Source waveform helpers
# ----------------------------------------------------------------------

def test_sine_waveform():
    w = sine(offset=1.0, amplitude=2.0, freq_hz=50.0, phase_deg=90.0)
    assert w(0.0) == pytest.approx(3.0)  # sin(90 deg) = 1
    assert w(0.01) == pytest.approx(-1.0)  # half period later


def test_pulse_waveform_phases():
    w = pulse(v1=0.0, v2=5.0, delay=1e-3, rise=1e-4, fall=1e-4,
              width=5e-4, period=2e-3)
    assert w(0.0) == 0.0
    assert w(1e-3 + 5e-5) == pytest.approx(2.5)  # mid rise
    assert w(1e-3 + 2e-4) == 5.0  # on
    assert w(1e-3 + 1e-4 + 5e-4 + 5e-5) == pytest.approx(2.5)  # mid fall
    assert w(1e-3 + 9e-4) == 0.0  # off
    assert w(3e-3 + 2e-4) == 5.0  # periodic repeat


def test_pulse_invalid_period():
    with pytest.raises(ValueError):
        pulse(0, 1, 0, 1e-6, 1e-6, 1e-3, 0.0)


def test_piecewise_linear():
    w = piecewise_linear([(0.0, 0.0), (1.0, 2.0), (2.0, 2.0)])
    assert w(0.5) == pytest.approx(1.0)
    assert w(1.5) == pytest.approx(2.0)
    assert w(5.0) == pytest.approx(2.0)  # clamps right
    with pytest.raises(ValueError):
        piecewise_linear([(1.0, 0.0), (0.5, 1.0)])
    with pytest.raises(ValueError):
        piecewise_linear([])


# ----------------------------------------------------------------------
# Passive component validation
# ----------------------------------------------------------------------

@pytest.mark.parametrize("cls,kwargs", [
    (Resistor, {"resistance": -1.0}),
    (Resistor, {"resistance": 0.0}),
    (Capacitor, {"capacitance": -1e-9}),
    (Inductor, {"inductance": 0.0}),
])
def test_nonpositive_values_rejected(cls, kwargs):
    with pytest.raises(ValueError):
        cls("X1", "a", "b", list(kwargs.values())[0])


def test_resistor_current_helper():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "a", "0", dc=2.0))
    r = ckt.add(Resistor("R1", "a", "0", 1e3))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert r.current(sol.x, ckt) == pytest.approx(2e-3)


# ----------------------------------------------------------------------
# Controlled sources
# ----------------------------------------------------------------------

def test_vcvs_gain():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "c", "0", dc=0.25))
    ckt.add(Vcvs("E1", "out", "0", "c", "0", gain=4.0))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    system = ckt.assemble()
    assert dc_operating_point(system).voltage(system, "out") \
        == pytest.approx(1.0)


def test_vccs_transconductance():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "c", "0", dc=1.0))
    # 1 mS from c into out through 1k load -> 1 V
    ckt.add(Vccs("G1", "0", "out", "c", "0", gm=1e-3))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    system = ckt.assemble()
    assert dc_operating_point(system).voltage(system, "out") \
        == pytest.approx(1.0)


def test_cccs_current_gain():
    ckt = Circuit()
    # 1 V across 1k in series with the 0 V sense source: 1 mA flows
    # in -> a -> (sense) -> ground, i.e. +1 mA in the sense branch.
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    ckt.add(Resistor("R1", "in", "a", 1e3))
    vsense = ckt.add(VoltageSource("Vs", "a", "0", dc=0.0))
    # F pushes 2 * 1 mA from node 0 into out: +2 V across the load.
    ckt.add(Cccs("F1", "0", "out", vsense, gain=2.0))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "out") == pytest.approx(2.0)


def test_ccvs_transresistance():
    ckt = Circuit()
    ckt.add(CurrentSource("I1", "0", "x", dc=1e-3))  # injects into x
    ckt.add(Resistor("Rx", "x", "a", 1.0))
    vsense = ckt.add(VoltageSource("Vs", "a", "0", dc=0.0))
    ckt.add(Ccvs("H1", "out", "0", vsense, transresistance=1e3))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    # Sense current is +1 mA (a -> ground through the source).
    assert sol.voltage(system, "out") == pytest.approx(1.0)


def test_ideal_opamp_follower():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=0.7))
    ckt.add(IdealOpAmp("U1", "in", "out", "out"))
    ckt.add(Resistor("RL", "out", "0", 1e3))
    system = ckt.assemble()
    assert dc_operating_point(system).voltage(system, "out") \
        == pytest.approx(0.7)


def test_ideal_opamp_noninverting_gain():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=0.1))
    ckt.add(IdealOpAmp("U1", "in", "fb", "out"))
    ckt.add(Resistor("R1", "fb", "0", 1e3))
    ckt.add(Resistor("R2", "out", "fb", 3e3))
    system = ckt.assemble()
    assert dc_operating_point(system).voltage(system, "out") \
        == pytest.approx(0.4)  # 1 + R2/R1 = 4


def test_source_value_at():
    v = VoltageSource("V1", "a", "0", dc=sine(0.0, 1.0, 1.0))
    assert v.value_at(0.25) == pytest.approx(1.0)
    i = CurrentSource("I1", "a", "0", dc=2e-3)
    assert i.value_at(123.0) == pytest.approx(2e-3)
