"""Small-signal noise analysis against textbook references."""

import numpy as np
import pytest

from repro.circuits import (
    Capacitor,
    Circuit,
    Mosfet,
    Resistor,
    VoltageSource,
    noise_analysis,
)
from repro.circuits.noise_analysis import BOLTZMANN, MOS_GAMMA
from repro.devices import NMOS_65NM
from repro.devices.mos_model import MosModel

FOUR_KT = 4.0 * BOLTZMANN * 300.0


def test_single_resistor_thermal_noise():
    """A grounded resistor's open-circuit noise is 4 k T R."""
    ckt = Circuit()
    ckt.add(Resistor("R1", "out", "0", 10e3))
    system = ckt.assemble()
    result = noise_analysis(system, "out", [1e3])
    assert result.total_v2_hz[0] == pytest.approx(FOUR_KT * 10e3,
                                                  rel=1e-9)


def test_parallel_resistors_noise_like_parallel_resistance():
    ckt = Circuit()
    ckt.add(Resistor("R1", "out", "0", 10e3))
    ckt.add(Resistor("R2", "out", "0", 10e3))
    system = ckt.assemble()
    result = noise_analysis(system, "out", [1e3])
    assert result.total_v2_hz[0] == pytest.approx(FOUR_KT * 5e3,
                                                  rel=1e-9)


def test_divider_noise():
    """Loaded divider: output noise = 4 k T (R1 || R2)."""
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0, ac=1.0))
    ckt.add(Resistor("R1", "in", "out", 30e3))
    ckt.add(Resistor("R2", "out", "0", 60e3))
    system = ckt.assemble()
    result = noise_analysis(system, "out", [1e3])
    r_par = 30e3 * 60e3 / 90e3
    assert result.total_v2_hz[0] == pytest.approx(FOUR_KT * r_par,
                                                  rel=1e-9)


def test_ac_signal_sources_are_silenced():
    """The AC drive must not leak into the noise solves."""
    def build(ac):
        ckt = Circuit()
        ckt.add(VoltageSource("V1", "in", "0", dc=0.0, ac=ac))
        ckt.add(Resistor("R1", "in", "out", 10e3))
        ckt.add(Resistor("R2", "out", "0", 10e3))
        return ckt.assemble()

    quiet = noise_analysis(build(0.0), "out", [1e3])
    loud = noise_analysis(build(1.0), "out", [1e3])
    assert loud.total_v2_hz[0] == pytest.approx(quiet.total_v2_hz[0],
                                                rel=1e-12)


def test_rc_noise_rolls_off():
    """kT/C: the RC-filtered resistor noise integrates to ~kT/C."""
    ckt = Circuit()
    ckt.add(Resistor("R1", "out", "0", 100e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-9))
    system = ckt.assemble()
    f3 = 1.0 / (2 * np.pi * 100e3 * 1e-9)
    freqs = np.geomspace(f3 / 1000, f3 * 1000, 400)
    result = noise_analysis(system, "out", freqs)
    # Density at low f is the full 4kTR; far above the pole it drops.
    assert result.total_v2_hz[0] == pytest.approx(FOUR_KT * 100e3,
                                                  rel=1e-3)
    assert result.total_v2_hz[-1] < 1e-5 * result.total_v2_hz[0]
    # Integrated noise approaches sqrt(kT/C) (band truncation ~ 2 %).
    expected = np.sqrt(BOLTZMANN * 300.0 / 1e-9)
    assert result.integrated_rms() == pytest.approx(expected, rel=0.05)


def test_mosfet_channel_noise_amplified():
    """Common-source stage: the device contributes
    4 k T gamma gm |Zout|^2 at the drain."""
    model = MosModel(NMOS_65NM, 3.6e-6, 180e-9)
    ckt = Circuit()
    ckt.add(VoltageSource("VDD", "vdd", "0", dc=1.2))
    ckt.add(VoltageSource("VG", "g", "0", dc=0.6))
    ckt.add(Resistor("RL", "vdd", "d", 10e3))
    ckt.add(Mosfet("M1", "d", "g", "0", model))
    system = ckt.assemble()
    result = noise_analysis(system, "d", [1e3])

    from repro.circuits.dc import dc_operating_point
    op = dc_operating_point(system)
    vd = op.voltage(system, "d")
    e = 1e-6
    gm = (model.drain_current(0.6 + e, vd)
          - model.drain_current(0.6 - e, vd)) / (2 * e)
    gds = (model.drain_current(0.6, vd + e)
           - model.drain_current(0.6, vd - e)) / (2 * e)
    z_out = 1.0 / (1.0 / 10e3 + gds)
    expected_m1 = FOUR_KT * MOS_GAMMA * gm * z_out ** 2
    contribs = result.contributions[0]
    assert contribs["M1"] == pytest.approx(expected_m1, rel=1e-3)
    # Load resistor noise adds 4kT/RL * Zout^2.
    expected_rl = FOUR_KT / 10e3 * z_out ** 2
    assert contribs["RL"] == pytest.approx(expected_rl, rel=1e-3)
    assert result.total_v2_hz[0] == pytest.approx(
        expected_m1 + expected_rl, rel=1e-3)


def test_dominant_sources_ranking():
    ckt = Circuit()
    ckt.add(Resistor("Rbig", "out", "0", 1e6))
    ckt.add(Resistor("Rsmall", "out", "mid", 1.0))
    ckt.add(Resistor("Rterm", "mid", "0", 1e6))
    system = ckt.assemble()
    result = noise_analysis(system, "out", [1e3])
    names = [name for name, _ in result.dominant_sources(0, 2)]
    assert "Rsmall" not in names[:1]  # tiny resistor contributes least


def test_invalid_frequency():
    ckt = Circuit()
    ckt.add(Resistor("R1", "out", "0", 1e3))
    with pytest.raises(ValueError):
        noise_analysis(ckt.assemble(), "out", [0.0])


def test_biquad_thermal_noise_below_paper_noise_budget():
    """The Tow-Thomas CUT's own thermal noise is microvolts RMS --
    three orders below the paper's 5 mV (sigma) measurement noise, so
    modelling the Section IV-C noise as externally injected is sound."""
    from repro.filters import BiquadSpec, TowThomasValues, TowThomasBiquad

    tt = TowThomasBiquad(TowThomasValues.from_spec(
        BiquadSpec(11e3, 1.0, 1.0)))
    freqs = np.geomspace(100.0, 1e6, 120)
    result = noise_analysis(tt.system, "lp", freqs)
    rms = result.integrated_rms()
    assert rms < 50e-6   # tens of microvolts at most
    assert rms > 0.5e-6  # but physically nonzero
