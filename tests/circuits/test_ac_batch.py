"""Split AC stamp pattern and stacked MNA solves.

The refactored :func:`ac_analysis` builds its matrices from
:class:`AcStampPattern` (static + omega-scaled reactive parts) instead
of re-stamping per frequency; :func:`ac_analysis_batch` stacks those
patterns and solves per frequency with one batched ``np.linalg.solve``.
Both must reproduce the direct per-frequency stamp/solve bit for bit on
every library circuit -- the fault-dictionary compilation depends on
it.
"""

import numpy as np
import pytest

from repro.circuits import (
    Capacitor,
    Circuit,
    Diode,
    Inductor,
    Resistor,
    SingularCircuitError,
    StampContext,
    VoltageSource,
    ac_analysis,
    ac_analysis_batch,
    dc_operating_point,
    dc_solve_batch,
    systems_share_topology,
)
from repro.circuits.ac import AcStampPattern
from repro.filters.faults import catastrophic_fault_universe
from repro.filters.towthomas import TowThomasValues
from repro.paper import PAPER_BIQUAD

FREQS = [500.0, 5e3, 15e3, 80e3]


def _tow_thomas_systems():
    values = TowThomasValues.from_spec(PAPER_BIQUAD)
    faults = catastrophic_fault_universe()
    cuts = [fault.apply_to_biquad(values) for fault in faults]
    return [cut.system for cut in cuts]


def _rlc_system(r=50.0, ell=1e-3, c=2e-6):
    circuit = Circuit("series rlc")
    circuit.add(VoltageSource("Vin", "in", "0", ac=1.0))
    circuit.add(Resistor("R1", "in", "a", r))
    circuit.add(Inductor("L1", "a", "b", ell))
    circuit.add(Capacitor("C1", "b", "0", c))
    return circuit.assemble()


def _direct_build(system, omega, x_op=None):
    return system.build(StampContext("ac", None, None, x=x_op,
                                     omega=omega))


def test_pattern_matrix_equals_direct_stamp():
    """A0 + omega*B must equal the interleaved per-frequency stamp."""
    for system in _tow_thomas_systems() + [_rlc_system()]:
        pattern = AcStampPattern(system)
        for f in FREQS:
            omega = 2.0 * np.pi * f
            direct_a, direct_z = _direct_build(system, omega)
            assert np.array_equal(pattern.matrix(omega), direct_a)
            assert np.array_equal(pattern.z, direct_z)


def test_ac_analysis_matches_per_frequency_rebuild():
    """The refactored sweep equals the old rebuild-per-frequency loop."""
    for system in _tow_thomas_systems()[:4] + [_rlc_system()]:
        result = ac_analysis(system, FREQS)
        for k, f in enumerate(FREQS):
            omega = 2.0 * np.pi * float(f)
            a, z = _direct_build(system, omega)
            reference = system.solve_linear(a, z)
            assert np.array_equal(result.phasors[k], reference)


def test_ac_analysis_batch_matches_sequential():
    systems = _tow_thomas_systems()
    batch = ac_analysis_batch(systems, FREQS)
    for m, system in enumerate(systems):
        single = ac_analysis(system, FREQS)
        assert np.array_equal(batch.phasors[m], single.phasors)
    # Node accessors agree with the single-system result too.
    single0 = ac_analysis(systems[0], FREQS)
    assert np.array_equal(batch.voltage("lp")[0], single0.voltage("lp"))
    assert np.array_equal(batch.transfer("lp", "vin")[0],
                          single0.transfer("lp", "vin"))


def test_ac_analysis_batch_validates_inputs():
    systems = _tow_thomas_systems()[:2]
    with pytest.raises(ValueError):
        ac_analysis_batch([], FREQS)
    with pytest.raises(ValueError):
        ac_analysis_batch(systems, [])
    with pytest.raises(ValueError):
        ac_analysis_batch(systems, [-1.0])
    with pytest.raises(ValueError):
        ac_analysis_batch([systems[0], _rlc_system()], FREQS)


def test_systems_share_topology_discriminates():
    systems = _tow_thomas_systems()
    assert systems_share_topology(systems[0], systems[1])
    assert not systems_share_topology(systems[0], _rlc_system())


def test_nonlinear_pattern_uses_operating_point():
    """Diode circuits linearize at the DC point, same as before."""
    circuit = Circuit("diode divider")
    circuit.add(VoltageSource("Vs", "in", "0", dc=1.0, ac=1.0))
    circuit.add(Resistor("R1", "in", "d", 1e3))
    circuit.add(Diode("D1", "d", "0"))
    system = circuit.assemble()
    x_op = dc_operating_point(system).x
    result = ac_analysis(system, FREQS)
    for k, f in enumerate(FREQS):
        omega = 2.0 * np.pi * float(f)
        a, z = _direct_build(system, omega, x_op=x_op)
        assert np.array_equal(result.phasors[k],
                              system.solve_linear(a, z))


def test_dc_solve_batch_matches_sequential():
    systems = _tow_thomas_systems()
    # Drive every input at 1 V, like TowThomasBiquad.dc_gain does.
    for system in systems:
        system.circuit.element("Vin").dc = 1.0
    stacked = dc_solve_batch(systems)
    for m, system in enumerate(systems):
        reference = dc_operating_point(system).x
        assert np.array_equal(stacked[m], reference)
    for system in systems:
        system.circuit.element("Vin").dc = 0.0


def test_dc_solve_batch_rejects_nonlinear():
    circuit = Circuit("diode")
    circuit.add(VoltageSource("Vs", "in", "0", dc=1.0))
    circuit.add(Resistor("R1", "in", "d", 1e3))
    circuit.add(Diode("D1", "d", "0"))
    with pytest.raises(ValueError):
        dc_solve_batch([circuit.assemble()])


def test_dc_solve_batch_empty():
    assert dc_solve_batch([]).size == 0


def test_batch_rejects_singular_member():
    # A resistor bridging two otherwise-unconnected nodes forms a
    # floating subgraph: its 2x2 conductance block is singular.
    circuit = Circuit("floating subgraph")
    circuit.add(VoltageSource("Vin", "in", "0", ac=1.0))
    circuit.add(Resistor("R1", "in", "0", 50.0))
    circuit.add(Resistor("Rx", "f1", "f2", 10.0))
    bad = circuit.assemble()
    with pytest.raises(SingularCircuitError):
        ac_analysis_batch([bad], FREQS)
