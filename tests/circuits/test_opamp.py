"""Op-amp macro models: ideal nullor and single-pole finite-gain."""

import numpy as np
import pytest

from repro.circuits import (
    Circuit,
    IdealOpAmp,
    OpAmpSpec,
    Resistor,
    VoltageSource,
    ac_analysis,
    add_single_pole_opamp,
    dc_operating_point,
)


def test_ideal_inverting_amplifier():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=0.1))
    ckt.add(Resistor("R1", "in", "x", 1e3))
    ckt.add(Resistor("R2", "x", "out", 2e3))
    ckt.add(IdealOpAmp("U1", "0", "x", "out"))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "out") == pytest.approx(-0.2)
    assert sol.voltage(system, "x") == pytest.approx(0.0, abs=1e-12)


def test_single_pole_dc_gain():
    spec = OpAmpSpec(dc_gain=1e5, gbw_hz=1e6)
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=1e-4, ac=1.0))
    add_single_pole_opamp(ckt, "U1", "in", "0", "out", spec)
    ckt.add(Resistor("RL", "out", "0", 1e6))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "out") == pytest.approx(1e-4 * 1e5, rel=1e-3)


def test_single_pole_unity_gain_frequency():
    spec = OpAmpSpec(dc_gain=1e5, gbw_hz=1e6)
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=0.0, ac=1.0))
    add_single_pole_opamp(ckt, "U1", "in", "0", "out", spec)
    ckt.add(Resistor("RL", "out", "0", 1e6))
    system = ckt.assemble()
    res = ac_analysis(system, [spec.gbw_hz])
    # |A(j GBW)| ~ 1 for a single-pole response.
    assert res.magnitude("out")[0] == pytest.approx(1.0, rel=0.01)


def test_single_pole_closed_loop_follower():
    """Unity feedback: closed-loop gain ~ 1 with tiny error ~ 1/A0."""
    spec = OpAmpSpec(dc_gain=1e5, gbw_hz=10e6)
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=0.5))
    add_single_pole_opamp(ckt, "U1", "in", "out", "out", spec)
    ckt.add(Resistor("RL", "out", "0", 1e5))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "out") == pytest.approx(0.5, rel=1e-4)


def test_pole_frequency_property():
    spec = OpAmpSpec(dc_gain=2e4, gbw_hz=4e6)
    assert spec.pole_hz == pytest.approx(200.0)


def test_finite_gain_biquad_shifts_f0_slightly():
    """Extension experiment: a slow op-amp perturbs the realized Biquad.

    The ideal Tow-Thomas realizes f0 exactly; replacing the ideal
    op-amps with 1 MHz-GBW macros must shift the resonance by a small
    but visible amount (and in the downward direction, the classic
    integrator-excess-phase effect).
    """
    from repro.filters import BiquadSpec, TowThomasValues
    from repro.circuits import Capacitor

    spec = BiquadSpec(11e3, 1.0, 1.0)
    v = TowThomasValues.from_spec(spec)
    slow = OpAmpSpec(dc_gain=1e4, gbw_hz=1e6)

    ckt = Circuit("tt-finite")
    ckt.add(VoltageSource("Vin", "vin", "0", dc=0.0, ac=1.0))
    ckt.add(Resistor("R1", "vin", "n1", v.r1))
    ckt.add(Resistor("R2", "n1", "bp", v.r2))
    ckt.add(Capacitor("C1", "n1", "bp", v.c1))
    add_single_pole_opamp(ckt, "A1", "0", "n1", "bp", slow)
    ckt.add(Resistor("R3", "bp", "n2", v.r3))
    ckt.add(Capacitor("C2", "n2", "lp", v.c2))
    add_single_pole_opamp(ckt, "A2", "0", "n2", "lp", slow)
    ckt.add(Resistor("R4a", "lp", "n3", v.r4))
    ckt.add(Resistor("R4b", "n3", "fb", v.r4))
    add_single_pole_opamp(ckt, "A3", "0", "n3", "fb", slow)
    ckt.add(Resistor("R5", "fb", "n1", v.r5))
    system = ckt.assemble()

    freqs = np.linspace(8e3, 14e3, 121)
    res = ac_analysis(system, freqs)
    mag = np.abs(res.transfer("bp", "vin"))  # band-pass peaks at f0
    f_peak = freqs[int(np.argmax(mag))]
    assert f_peak != pytest.approx(11e3, abs=50.0)  # visibly shifted
    assert 9.5e3 < f_peak < 11.2e3  # ... but in the expected direction
