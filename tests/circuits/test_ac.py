"""AC analysis: poles, transfer functions, frequency grids."""

import numpy as np
import pytest

from repro.circuits import (
    Capacitor,
    Circuit,
    Inductor,
    Resistor,
    VoltageSource,
    ac_analysis,
    logspace_frequencies,
)


def rc_lowpass():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=0.0, ac=1.0))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-6))
    return ckt.assemble()


def test_rc_pole_minus_3db():
    system = rc_lowpass()
    f3 = 1.0 / (2 * np.pi * 1e3 * 1e-6)
    res = ac_analysis(system, [f3])
    assert res.magnitude("out")[0] == pytest.approx(1 / np.sqrt(2), rel=1e-9)
    assert res.phase_deg("out")[0] == pytest.approx(-45.0, abs=1e-6)


def test_rc_rolloff_20db_per_decade():
    system = rc_lowpass()
    f3 = 1.0 / (2 * np.pi * 1e3 * 1e-6)
    res = ac_analysis(system, [10 * f3, 100 * f3])
    db = res.magnitude_db("out")
    assert db[1] - db[0] == pytest.approx(-20.0, abs=0.1)


def test_ac_phase_of_source_respected():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", ac=2.0, ac_phase_deg=90.0))
    ckt.add(Resistor("R1", "in", "0", 1e3))
    system = ckt.assemble()
    res = ac_analysis(system, [1e3])
    v = res.voltage("in")[0]
    assert abs(v) == pytest.approx(2.0)
    assert np.degrees(np.angle(v)) == pytest.approx(90.0)


def test_lc_resonance_peak():
    """Series RLC driven at resonance: capacitor voltage is Q times input."""
    r, ell, c = 10.0, 1e-3, 1e-6
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", ac=1.0))
    ckt.add(Resistor("R1", "in", "a", r))
    ckt.add(Inductor("L1", "a", "b", ell))
    ckt.add(Capacitor("C1", "b", "0", c))
    system = ckt.assemble()
    f0 = 1.0 / (2 * np.pi * np.sqrt(ell * c))
    q = np.sqrt(ell / c) / r
    res = ac_analysis(system, [f0])
    assert res.magnitude("b")[0] == pytest.approx(q, rel=1e-6)


def test_transfer_helper():
    system = rc_lowpass()
    res = ac_analysis(system, [10.0, 100.0])
    h = res.transfer("out", "in")
    assert np.all(np.abs(h) <= 1.0)
    assert np.abs(h[0]) > np.abs(h[1])


def test_invalid_frequencies_rejected():
    system = rc_lowpass()
    with pytest.raises(ValueError):
        ac_analysis(system, [])
    with pytest.raises(ValueError):
        ac_analysis(system, [0.0])
    with pytest.raises(ValueError):
        ac_analysis(system, [-1.0])


def test_logspace_frequencies():
    freqs = logspace_frequencies(1.0, 1e3, points_per_decade=10)
    assert freqs[0] == pytest.approx(1.0)
    assert freqs[-1] == pytest.approx(1e3)
    ratios = freqs[1:] / freqs[:-1]
    assert np.allclose(ratios, ratios[0])
    with pytest.raises(ValueError):
        logspace_frequencies(0.0, 1e3)
    with pytest.raises(ValueError):
        logspace_frequencies(1e3, 1.0)


def test_ground_node_phasor_is_zero():
    system = rc_lowpass()
    res = ac_analysis(system, [100.0])
    assert np.all(res.voltage("0") == 0.0)
