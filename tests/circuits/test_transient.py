"""Transient integration: analytic references, method accuracy, state."""

import numpy as np
import pytest

from repro.circuits import (
    Capacitor,
    Circuit,
    Inductor,
    Resistor,
    VoltageSource,
    sine,
    transient,
)


def rc_circuit(r=1e3, c=1e-6, source=1.0):
    ckt = Circuit("rc")
    ckt.add(VoltageSource("V1", "in", "0", dc=source))
    ckt.add(Resistor("R1", "in", "out", r))
    ckt.add(Capacitor("C1", "out", "0", c))
    return ckt.assemble()


def test_rc_step_response_trap():
    system = rc_circuit()
    res = transient(system, 5e-3, 2e-6, use_ic=True)
    tau = 1e-3
    expect = 1.0 - np.exp(-res.time / tau)
    assert np.max(np.abs(res.voltage("out") - expect)) < 2e-3


def test_trap_beats_be_on_smooth_drive():
    """Second-order TRAP vs first-order BE on a sine-driven RC.

    The comparison needs a smooth excitation and a consistent initial
    state (a step start favours the damped BE rule); with a sine that
    is zero at t=0 the DC start is exact and the asymptotic orders show.
    """
    def build():
        ckt = Circuit()
        ckt.add(VoltageSource("V1", "in", "0", dc=sine(0.0, 1.0, 1e3)))
        ckt.add(Resistor("R1", "in", "out", 1e3))
        ckt.add(Capacitor("C1", "out", "0", 1e-7))
        return ckt.assemble()

    dt = 2e-6
    res_be = transient(build(), 5e-3, dt, method="be")
    res_tr = transient(build(), 5e-3, dt, method="trap",
                       startup_be_steps=0)
    h = 1.0 / (1.0 + 1j * 2 * np.pi * 1e3 * 1e-4)
    mask = res_be.time > 3e-3  # steady state
    expect = np.abs(h) * np.sin(2 * np.pi * 1e3 * res_be.time[mask]
                                + np.angle(h))
    err_be = np.max(np.abs(res_be.voltage("out")[mask] - expect))
    err_tr = np.max(np.abs(res_tr.voltage("out")[mask] - expect))
    assert err_tr < err_be / 10  # order gap at this step size


def test_rc_starts_from_dc_operating_point():
    system = rc_circuit()
    res = transient(system, 1e-4, 1e-6)  # no use_ic: DC start
    # At DC the capacitor is charged to the source: nothing moves.
    assert np.allclose(res.voltage("out"), 1.0, atol=1e-9)


def test_rc_sine_steady_state_matches_phasor():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=sine(0.0, 1.0, 1e3)))
    ckt.add(Resistor("R1", "in", "out", 1e3))
    ckt.add(Capacitor("C1", "out", "0", 1e-7))
    system = ckt.assemble()
    res = transient(system, 10e-3, 5e-7)
    h = 1.0 / (1.0 + 1j * 2 * np.pi * 1e3 * 1e-4)
    mask = res.time > 5e-3
    expect = np.abs(h) * np.sin(2 * np.pi * 1e3 * res.time[mask]
                                + np.angle(h))
    assert np.max(np.abs(res.voltage("out")[mask] - expect)) < 5e-5


def test_rlc_underdamped_ringing_frequency():
    """Series RLC: ring frequency must match the damped natural frequency."""
    r, ell, c = 10.0, 1e-3, 1e-6
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    ckt.add(Resistor("R1", "in", "a", r))
    ckt.add(Inductor("L1", "a", "b", ell))
    ckt.add(Capacitor("C1", "b", "0", c))
    system = ckt.assemble()
    res = transient(system, 0.8e-3, 2e-7, use_ic=True)
    v = res.voltage("b")
    # Count zero crossings of (v - 1) to estimate the ring frequency.
    s = np.sign(v - 1.0)
    crossings = np.count_nonzero(np.diff(s) != 0)
    w0 = 1.0 / np.sqrt(ell * c)
    alpha = r / (2.0 * ell)
    wd = np.sqrt(w0 ** 2 - alpha ** 2)
    expected_crossings = 2 * wd / (2 * np.pi) * 0.8e-3
    assert crossings == pytest.approx(expected_crossings, abs=2)


def test_inductor_dc_is_short():
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "in", "0", dc=1.0))
    ckt.add(Resistor("R1", "in", "a", 1e3))
    ckt.add(Inductor("L1", "a", "0", 1e-3))
    system = ckt.assemble()
    res = transient(system, 1e-3, 1e-6)
    # Started at DC: inductor carries V/R and node a stays at 0.
    assert abs(res.voltage("a")[-1]) < 1e-9
    ell = system.circuit.element("L1")
    assert res.branch_current(ell)[-1] == pytest.approx(1e-3, rel=1e-6)


def test_transient_result_accessors():
    system = rc_circuit()
    res = transient(system, 1e-4, 1e-6)
    assert len(res.time) == len(res.states)
    assert res.voltage("0").max() == 0.0  # ground waveform is zero
    np.testing.assert_allclose(res.final_state(), res.states[-1])


def test_invalid_parameters_raise():
    system = rc_circuit()
    with pytest.raises(ValueError):
        transient(system, 1e-3, -1e-6)
    with pytest.raises(ValueError):
        transient(system, 0.0, 1e-6)
    with pytest.raises(ValueError):
        transient(system, 1e-3, 1e-6, method="rk4")


def test_kcl_residual_along_trajectory():
    """The accepted transient states satisfy the stamped equations."""
    system = rc_circuit()
    res = transient(system, 5e-4, 1e-6, use_ic=True)
    # Spot-check a few steps by rebuilding the step equations.
    # (The residual helper covers the DC case; here we simply verify
    # charge continuity: i_R = C dv/dt within integration accuracy.)
    t = res.time
    v_out = res.voltage("out")
    i_r = (res.voltage("in") - v_out) / 1e3
    dv = np.gradient(v_out, t)
    i_c = 1e-6 * dv
    mask = (t > 5e-6) & (t < 4.9e-4)
    assert np.max(np.abs(i_r[mask] - i_c[mask])) < 2e-5
