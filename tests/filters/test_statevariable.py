"""KHN state-variable Biquad: synthesis, cross-validation, channels."""

import numpy as np
import pytest

from repro.core import ChannelSpec, MultiChannelTester
from repro.core.testflow import SignatureTester
from repro.filters import (
    BiquadFilter,
    BiquadKind,
    BiquadSpec,
    KhnBiquad,
    KhnValues,
    TowThomasBiquad,
    TowThomasValues,
)
from repro.paper import PAPER_STIMULUS


@pytest.fixture(scope="module")
def spec():
    return BiquadSpec(11e3, 1.0, 1.0)


@pytest.fixture(scope="module")
def khn(spec):
    return KhnBiquad(KhnValues.from_spec(spec))


def test_synthesis_rejects_too_low_q():
    with pytest.raises(ValueError, match="Q > 1/3"):
        KhnValues.from_spec(BiquadSpec(11e3, 0.2, 1.0))


def test_measured_spec_matches_target(spec, khn):
    measured = khn.measured_spec()
    assert measured.f0_hz == pytest.approx(spec.f0_hz, rel=0.01)
    assert measured.q == pytest.approx(spec.q, rel=0.02)
    assert measured.gain == pytest.approx(1.0, rel=1e-3)


@pytest.mark.parametrize("q", [0.7, 1.5, 3.0])
def test_q_synthesis_across_range(q):
    khn = KhnBiquad(KhnValues.from_spec(BiquadSpec(11e3, q, 1.0)))
    assert khn.measured_spec().q == pytest.approx(q, rel=0.03)


def test_lp_magnitude_matches_behavioral(spec, khn):
    bf = BiquadFilter(spec)
    for f in (2e3, 5e3, 11e3, 15e3, 40e3):
        assert abs(khn.transfer(f, "lp")) == pytest.approx(
            abs(bf.transfer(f)), rel=1e-9)


def test_bp_and_hp_taps(spec, khn):
    from dataclasses import replace
    bp = BiquadFilter(replace(spec, kind=BiquadKind.BANDPASS))
    hp = BiquadFilter(replace(spec, kind=BiquadKind.HIGHPASS))
    for f in (5e3, 11e3, 30e3):
        assert abs(khn.transfer(f, "bp")) == pytest.approx(
            abs(bp.transfer(f)), rel=1e-6)
        assert abs(khn.transfer(f, "hp")) == pytest.approx(
            abs(hp.transfer(f)), rel=1e-6)


def test_dc_gain_is_inverting_unity(khn):
    assert khn.transfer(0.0, "lp").real == pytest.approx(-1.0, rel=1e-6)


def test_khn_agrees_with_towthomas(spec, khn):
    """Two independent realizations of the same transfer function."""
    tt = TowThomasBiquad(TowThomasValues.from_spec(spec))
    freqs = [3e3, 11e3, 25e3]
    h_khn = np.abs(khn.transfer_at(freqs, "lp"))
    h_tt = np.abs(tt.transfer_at(freqs))
    np.testing.assert_allclose(h_khn, h_tt, rtol=1e-9)


def test_unknown_channel(khn):
    with pytest.raises(ValueError, match="unknown channel"):
        khn.lissajous_of("notch", PAPER_STIMULUS, 128)


def test_khn_in_signature_flow(khn):
    """The KHN LP tap carries the same zone *sequence* as the paper's
    CUT; the inverted sign folds the trace, so only the traversal
    structure is compared, not the NDF."""
    from repro.monitor import table1_encoder

    tester = SignatureTester(table1_encoder(), PAPER_STIMULUS, khn,
                             samples_per_period=1024)
    sig = tester.golden_signature()
    assert sig.period == pytest.approx(200e-6)
    assert len(sig) > 5


def test_khn_three_channel_tester(khn, encoder):
    channels = [ChannelSpec("lp", encoder), ChannelSpec("bp", encoder),
                ChannelSpec("hp", encoder)]
    tester = MultiChannelTester(channels, PAPER_STIMULUS, khn,
                                samples_per_period=1024)
    golden = tester.golden_signature()
    assert set(golden.channels) == {"lp", "bp", "hp"}
    assert tester.combined_ndf(khn) == 0.0
