"""Structural Tow-Thomas Biquad: synthesis, AC agreement, transient."""

import numpy as np
import pytest

from repro.filters import (
    BiquadFilter,
    BiquadKind,
    BiquadSpec,
    TowThomasBiquad,
    TowThomasValues,
)
from repro.signals import two_tone


@pytest.fixture(scope="module")
def spec():
    return BiquadSpec(11e3, 1.0, 1.0)


@pytest.fixture(scope="module")
def values(spec):
    return TowThomasValues.from_spec(spec)


@pytest.fixture(scope="module")
def biquad(values):
    return TowThomasBiquad(values)


def test_synthesis_inverts_exactly(spec, values):
    realized = values.realized_spec()
    assert realized.f0_hz == pytest.approx(spec.f0_hz, rel=1e-9)
    assert realized.q == pytest.approx(spec.q, rel=1e-9)
    assert realized.gain == pytest.approx(spec.gain, rel=1e-9)


def test_synthesis_with_gain_and_q():
    spec = BiquadSpec(20e3, 3.0, 2.5)
    realized = TowThomasValues.from_spec(spec, c=4.7e-9).realized_spec()
    assert realized.f0_hz == pytest.approx(20e3, rel=1e-9)
    assert realized.q == pytest.approx(3.0, rel=1e-9)
    assert realized.gain == pytest.approx(2.5, rel=1e-9)


def test_netlist_matches_analytic_lowpass(spec, biquad):
    bf = BiquadFilter(spec)
    freqs = [100.0, 5e3, 11e3, 15e3, 50e3]
    h_net = biquad.transfer_at(freqs)
    h_ana = np.array([bf.transfer(f) for f in freqs])
    np.testing.assert_allclose(h_net, h_ana, rtol=1e-9)


def test_bandpass_tap(spec, biquad):
    """The bp node realizes the (inverted) band-pass response."""
    from dataclasses import replace
    bp_spec = replace(spec, kind=BiquadKind.BANDPASS)
    bp = BiquadFilter(bp_spec)
    freqs = [5e3, 11e3, 30e3]
    h_net = biquad.transfer_at(freqs, node=TowThomasBiquad.BP_NODE)
    h_ana = np.array([bp.transfer(f) for f in freqs])
    np.testing.assert_allclose(np.abs(h_net), np.abs(h_ana), rtol=1e-6)


def test_dc_transfer(spec, biquad):
    assert biquad.transfer(0.0).real == pytest.approx(1.0, rel=1e-4)


def test_response_through_netlist(spec, biquad):
    stim = two_tone(5e3, 15e3, 0.26, 0.19, offset=0.5, phase2_deg=105)
    out_net = biquad.response(stim)
    out_ana = BiquadFilter(spec).response(stim)
    t = np.linspace(0, stim.period(), 64, endpoint=False)
    np.testing.assert_allclose(out_net(t), out_ana(t), atol=1e-4)


def test_transient_agrees_with_behavioral(spec, values):
    stim = two_tone(5e3, 15e3, 0.26, 0.19, offset=0.5, phase2_deg=105)
    tt = TowThomasBiquad(values, stim)
    trace_tr = tt.simulate_steady_period(samples_per_period=512)
    trace_beh = BiquadFilter(spec).lissajous(stim, 512)
    err = np.max(np.abs(trace_tr.y.values - trace_beh.y.values))
    assert err < 1e-3


def test_transient_requires_stimulus(biquad):
    with pytest.raises(ValueError, match="stimulus"):
        biquad.simulate_steady_period()


def test_scaled_and_replaced(values):
    v2 = values.scaled(r3=2.0)
    assert v2.r3 == pytest.approx(2 * values.r3)
    assert v2.r5 == values.r5
    v3 = values.replaced(c1=1e-9)
    assert v3.c1 == 1e-9
    with pytest.raises(ValueError):
        values.scaled(rx=2.0)
    with pytest.raises(ValueError):
        values.replaced(nope=1.0)


def test_scaling_r3_r5_moves_f0(values):
    base = values.realized_spec()
    shifted = values.scaled(r3=1.0 / 1.21).realized_spec()
    assert shifted.f0_hz == pytest.approx(base.f0_hz * 1.1, rel=1e-9)
