"""Fault models: parametric mapping exactness, catastrophic universe."""

import pytest

from repro.filters import (
    BiquadSpec,
    Fault,
    FaultKind,
    TowThomasBiquad,
    TowThomasValues,
    catastrophic_fault_universe,
    f0_deviation,
    parametric_sweep,
)


@pytest.fixture
def spec():
    return BiquadSpec(11e3, 1.0, 1.0)


@pytest.fixture
def values(spec):
    return TowThomasValues.from_spec(spec)


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault(FaultKind.PARAMETRIC, "r1", 0.1)  # component for parametric
    with pytest.raises(ValueError):
        Fault(FaultKind.OPEN, "f0")  # parameter for catastrophic


def test_labels():
    assert f0_deviation(0.10).label == "f0+10.0%"
    assert Fault(FaultKind.OPEN, "c1").label == "c1-open"
    assert Fault(FaultKind.SHORT, "r2").label == "r2-short"


def test_parametric_spec_application(spec):
    fault = f0_deviation(0.10)
    assert fault.apply_to_spec(spec).f0_hz == pytest.approx(12.1e3)
    q_fault = Fault(FaultKind.PARAMETRIC, "q", -0.2)
    assert q_fault.apply_to_spec(spec).q == pytest.approx(0.8)
    g_fault = Fault(FaultKind.PARAMETRIC, "gain", 0.5)
    assert g_fault.apply_to_spec(spec).gain == pytest.approx(1.5)


def test_catastrophic_needs_netlist(spec):
    with pytest.raises(ValueError, match="netlist"):
        Fault(FaultKind.OPEN, "r1").apply_to_spec(spec)


def test_parametric_f0_on_netlist_is_exact(spec, values):
    """The component mapping must realize the f0 shift without touching
    Q or gain -- the paper's single-parameter fault model."""
    fault = f0_deviation(0.10)
    realized = fault.apply_to_values(values).realized_spec()
    assert realized.f0_hz == pytest.approx(spec.f0_hz * 1.1, rel=1e-9)
    assert realized.q == pytest.approx(spec.q, rel=1e-9)
    assert realized.gain == pytest.approx(spec.gain, rel=1e-9)


def test_parametric_q_on_netlist(spec, values):
    fault = Fault(FaultKind.PARAMETRIC, "q", 0.25)
    realized = fault.apply_to_values(values).realized_spec()
    assert realized.q == pytest.approx(spec.q * 1.25, rel=1e-9)
    assert realized.f0_hz == pytest.approx(spec.f0_hz, rel=1e-9)


def test_parametric_gain_on_netlist(spec, values):
    fault = Fault(FaultKind.PARAMETRIC, "gain", -0.3)
    realized = fault.apply_to_values(values).realized_spec()
    assert realized.gain == pytest.approx(0.7, rel=1e-9)
    assert realized.f0_hz == pytest.approx(spec.f0_hz, rel=1e-9)


def test_open_resistor(values):
    faulted = Fault(FaultKind.OPEN, "r3").apply_to_values(values)
    assert faulted.r3 == pytest.approx(values.r3 * 1e6)


def test_short_resistor(values):
    faulted = Fault(FaultKind.SHORT, "r1").apply_to_values(values)
    assert faulted.r1 == pytest.approx(1.0)


def test_open_capacitor_loses_capacitance(values):
    faulted = Fault(FaultKind.OPEN, "c2").apply_to_values(values)
    assert faulted.c2 == pytest.approx(values.c2 / 1e6)


def test_short_capacitor_gains_capacitance(values):
    faulted = Fault(FaultKind.SHORT, "c1").apply_to_values(values)
    assert faulted.c1 == pytest.approx(values.c1 * 1e6)


def test_catastrophic_universe_complete():
    universe = catastrophic_fault_universe()
    assert len(universe) == 14  # 7 components x {open, short}
    labels = {f.label for f in universe}
    assert "r1-open" in labels and "c2-short" in labels


def test_catastrophic_faults_change_transfer(values):
    """Every open/short must visibly move the low-pass response."""
    nominal = TowThomasBiquad(values)
    h0 = nominal.transfer(5e3)
    changed = 0
    for fault in catastrophic_fault_universe():
        faulted = fault.apply_to_biquad(values)
        h = faulted.transfer(5e3)
        if abs(h - h0) > 0.01 * abs(h0):
            changed += 1
    assert changed >= 12  # at least all but a couple move it at 5 kHz


def test_parametric_sweep_factory():
    faults = parametric_sweep(["f0", "q"], [-0.1, 0.1])
    assert len(faults) == 4
    assert all(f.kind is FaultKind.PARAMETRIC for f in faults)


# ----------------------------------------------------------------------
# __post_init__ rejection breadth
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target", ["f0", "q", "gain"])
@pytest.mark.parametrize("kind", [FaultKind.OPEN, FaultKind.SHORT])
def test_catastrophic_rejects_every_parameter_target(kind, target):
    with pytest.raises(ValueError, match="catastrophic"):
        Fault(kind, target)


@pytest.mark.parametrize("target",
                         ["r1", "r2", "r3", "r4", "r5", "c1", "c2"])
def test_parametric_rejects_every_component_target(target):
    with pytest.raises(ValueError, match="parametric"):
        Fault(FaultKind.PARAMETRIC, target, 0.1)


@pytest.mark.parametrize("kind", list(FaultKind))
def test_unknown_target_always_rejected(kind):
    with pytest.raises(ValueError):
        Fault(kind, "r9", 0.0)


# ----------------------------------------------------------------------
# Behavioural/structural round-trips
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target,deviation", [
    ("f0", 0.10), ("f0", -0.15), ("q", 0.35), ("q", -0.35),
    ("gain", 0.35), ("gain", -0.35),
])
def test_parametric_spec_and_netlist_paths_agree(spec, values, target,
                                                 deviation):
    """apply_to_spec and apply_to_values must realize the same CUT:
    the behavioural deviation and the component mapping are two views
    of one fault."""
    fault = Fault(FaultKind.PARAMETRIC, target, deviation)
    behavioural = fault.apply_to_spec(spec)
    structural = fault.apply_to_values(values).realized_spec()
    assert structural.f0_hz == pytest.approx(behavioural.f0_hz,
                                             rel=1e-9)
    assert structural.q == pytest.approx(behavioural.q, rel=1e-9)
    assert structural.gain == pytest.approx(behavioural.gain, rel=1e-9)


def test_apply_to_biquad_builds_the_faulted_netlist(values):
    fault = Fault(FaultKind.SHORT, "r2")
    cut = fault.apply_to_biquad(values)
    assert isinstance(cut, TowThomasBiquad)
    assert cut.values == fault.apply_to_values(values)
    assert cut.values.r2 == pytest.approx(1.0)


def test_apply_to_biquad_parametric_round_trip(spec, values):
    """Through the netlist and back: the realized spec of the faulted
    structural CUT carries exactly the injected deviation."""
    fault = f0_deviation(-0.08)
    realized = fault.apply_to_biquad(values).values.realized_spec()
    assert realized.f0_hz == pytest.approx(spec.f0_hz * 0.92, rel=1e-9)
    assert realized.q == pytest.approx(spec.q, rel=1e-9)


@pytest.mark.parametrize("fault", catastrophic_fault_universe(),
                         ids=lambda f: f.label)
def test_catastrophic_touches_only_its_component(values, fault):
    faulted = fault.apply_to_values(values)
    for name in ("r1", "r2", "r3", "r4", "r5", "c1", "c2"):
        if name == fault.target:
            assert getattr(faulted, name) != getattr(values, name)
        else:
            assert getattr(faulted, name) == getattr(values, name)


# ----------------------------------------------------------------------
# Universe completeness
# ----------------------------------------------------------------------
def test_catastrophic_universe_covers_every_component_both_ways():
    universe = catastrophic_fault_universe()
    pairs = {(f.target, f.kind) for f in universe}
    components = ("r1", "r2", "r3", "r4", "r5", "c1", "c2")
    assert pairs == {(c, k) for c in components
                     for k in (FaultKind.OPEN, FaultKind.SHORT)}
    labels = [f.label for f in universe]
    assert len(set(labels)) == len(labels)  # labels are unique ids
    assert all(f.deviation == 0.0 for f in universe)


def test_negative_parametric_label_formatting():
    assert Fault(FaultKind.PARAMETRIC, "q", -0.25).label == "q-25.0%"
