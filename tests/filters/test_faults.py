"""Fault models: parametric mapping exactness, catastrophic universe."""

import pytest

from repro.filters import (
    BiquadSpec,
    Fault,
    FaultKind,
    TowThomasBiquad,
    TowThomasValues,
    catastrophic_fault_universe,
    f0_deviation,
    parametric_sweep,
)


@pytest.fixture
def spec():
    return BiquadSpec(11e3, 1.0, 1.0)


@pytest.fixture
def values(spec):
    return TowThomasValues.from_spec(spec)


def test_fault_validation():
    with pytest.raises(ValueError):
        Fault(FaultKind.PARAMETRIC, "r1", 0.1)  # component for parametric
    with pytest.raises(ValueError):
        Fault(FaultKind.OPEN, "f0")  # parameter for catastrophic


def test_labels():
    assert f0_deviation(0.10).label == "f0+10.0%"
    assert Fault(FaultKind.OPEN, "c1").label == "c1-open"
    assert Fault(FaultKind.SHORT, "r2").label == "r2-short"


def test_parametric_spec_application(spec):
    fault = f0_deviation(0.10)
    assert fault.apply_to_spec(spec).f0_hz == pytest.approx(12.1e3)
    q_fault = Fault(FaultKind.PARAMETRIC, "q", -0.2)
    assert q_fault.apply_to_spec(spec).q == pytest.approx(0.8)
    g_fault = Fault(FaultKind.PARAMETRIC, "gain", 0.5)
    assert g_fault.apply_to_spec(spec).gain == pytest.approx(1.5)


def test_catastrophic_needs_netlist(spec):
    with pytest.raises(ValueError, match="netlist"):
        Fault(FaultKind.OPEN, "r1").apply_to_spec(spec)


def test_parametric_f0_on_netlist_is_exact(spec, values):
    """The component mapping must realize the f0 shift without touching
    Q or gain -- the paper's single-parameter fault model."""
    fault = f0_deviation(0.10)
    realized = fault.apply_to_values(values).realized_spec()
    assert realized.f0_hz == pytest.approx(spec.f0_hz * 1.1, rel=1e-9)
    assert realized.q == pytest.approx(spec.q, rel=1e-9)
    assert realized.gain == pytest.approx(spec.gain, rel=1e-9)


def test_parametric_q_on_netlist(spec, values):
    fault = Fault(FaultKind.PARAMETRIC, "q", 0.25)
    realized = fault.apply_to_values(values).realized_spec()
    assert realized.q == pytest.approx(spec.q * 1.25, rel=1e-9)
    assert realized.f0_hz == pytest.approx(spec.f0_hz, rel=1e-9)


def test_parametric_gain_on_netlist(spec, values):
    fault = Fault(FaultKind.PARAMETRIC, "gain", -0.3)
    realized = fault.apply_to_values(values).realized_spec()
    assert realized.gain == pytest.approx(0.7, rel=1e-9)
    assert realized.f0_hz == pytest.approx(spec.f0_hz, rel=1e-9)


def test_open_resistor(values):
    faulted = Fault(FaultKind.OPEN, "r3").apply_to_values(values)
    assert faulted.r3 == pytest.approx(values.r3 * 1e6)


def test_short_resistor(values):
    faulted = Fault(FaultKind.SHORT, "r1").apply_to_values(values)
    assert faulted.r1 == pytest.approx(1.0)


def test_open_capacitor_loses_capacitance(values):
    faulted = Fault(FaultKind.OPEN, "c2").apply_to_values(values)
    assert faulted.c2 == pytest.approx(values.c2 / 1e6)


def test_short_capacitor_gains_capacitance(values):
    faulted = Fault(FaultKind.SHORT, "c1").apply_to_values(values)
    assert faulted.c1 == pytest.approx(values.c1 * 1e6)


def test_catastrophic_universe_complete():
    universe = catastrophic_fault_universe()
    assert len(universe) == 14  # 7 components x {open, short}
    labels = {f.label for f in universe}
    assert "r1-open" in labels and "c2-short" in labels


def test_catastrophic_faults_change_transfer(values):
    """Every open/short must visibly move the low-pass response."""
    nominal = TowThomasBiquad(values)
    h0 = nominal.transfer(5e3)
    changed = 0
    for fault in catastrophic_fault_universe():
        faulted = fault.apply_to_biquad(values)
        h = faulted.transfer(5e3)
        if abs(h - h0) > 0.01 * abs(h0):
            changed += 1
    assert changed >= 12  # at least all but a couple move it at 5 kHz


def test_parametric_sweep_factory():
    faults = parametric_sweep(["f0", "q"], [-0.1, 0.1])
    assert len(faults) == 4
    assert all(f.kind is FaultKind.PARAMETRIC for f in faults)
