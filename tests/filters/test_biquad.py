"""Behavioural Biquad: transfer shapes, deviations, characteristics."""

import numpy as np
import pytest

from repro.filters import BiquadFilter, BiquadKind, BiquadSpec
from repro.signals import two_tone


@pytest.fixture
def spec():
    return BiquadSpec(13e3, 1.5, 1.0)


def test_spec_validation():
    with pytest.raises(ValueError):
        BiquadSpec(-1.0, 1.0)
    with pytest.raises(ValueError):
        BiquadSpec(1e3, 0.0)


def test_lowpass_dc_and_rolloff(spec):
    bf = BiquadFilter(spec)
    assert bf.transfer(0.0) == pytest.approx(1.0)
    # Two octaves above f0: 40 dB/decade rolloff territory.
    assert abs(bf.transfer(4 * spec.f0_hz)) < 0.08
    # At f0 the LP magnitude equals Q (for G = 1).
    assert abs(bf.transfer(spec.f0_hz)) == pytest.approx(spec.q, rel=1e-9)


def test_bandpass_peak_at_f0(spec):
    from dataclasses import replace
    bp = BiquadFilter(replace(spec, kind=BiquadKind.BANDPASS))
    assert abs(bp.transfer(spec.f0_hz)) == pytest.approx(spec.gain,
                                                         rel=1e-9)
    assert abs(bp.transfer(0.001)) < 1e-3
    assert abs(bp.transfer(100 * spec.f0_hz)) < 0.05


def test_highpass_asymptote(spec):
    from dataclasses import replace
    hp = BiquadFilter(replace(spec, kind=BiquadKind.HIGHPASS))
    assert abs(hp.transfer(100 * spec.f0_hz)) == pytest.approx(1.0,
                                                               rel=1e-3)
    assert abs(hp.transfer(0.001)) < 1e-6


def test_deviations(spec):
    assert spec.with_f0_deviation(0.10).f0_hz == pytest.approx(14.3e3)
    assert spec.with_f0_deviation(-0.10).f0_hz == pytest.approx(11.7e3)
    assert spec.with_q_deviation(0.5).q == pytest.approx(2.25)
    assert spec.with_gain_deviation(-0.5).gain == pytest.approx(0.5)
    with pytest.raises(ValueError):
        spec.with_f0_deviation(-1.0)
    with pytest.raises(ValueError):
        spec.with_q_deviation(-1.5)


def test_deviation_leaves_original(spec):
    spec.with_f0_deviation(0.10)
    assert spec.f0_hz == 13e3


def test_magnitude_vectorized(spec):
    bf = BiquadFilter(spec)
    freqs = np.array([1e3, 13e3, 40e3])
    mags = bf.magnitude(freqs)
    assert mags.shape == (3,)
    assert mags[1] == pytest.approx(spec.q, rel=1e-9)
    assert isinstance(bf.magnitude(1e3), float)


def test_pole_pair(spec):
    pole = BiquadFilter(spec).pole_pair()
    w0 = spec.omega0
    assert abs(pole) == pytest.approx(w0, rel=1e-9)
    assert pole.real == pytest.approx(-w0 / (2 * spec.q), rel=1e-9)
    assert pole.imag > 0


def test_settling_time_scales_with_q():
    fast = BiquadFilter(BiquadSpec(13e3, 0.6)).settling_time()
    slow = BiquadFilter(BiquadSpec(13e3, 5.0)).settling_time()
    assert slow > 5 * fast


def test_response_is_exact_steady_state(spec):
    bf = BiquadFilter(spec)
    stim = two_tone(5e3, 15e3, 0.25, 0.2, offset=0.5, phase2_deg=90)
    out = bf.response(stim)
    # DC maps through H(0) = 1.
    assert out.offset == pytest.approx(0.5)
    # Each tone is scaled by |H|.
    for tone_in, tone_out in zip(stim.tones, out.tones):
        h = bf.transfer(tone_in.freq_hz)
        assert tone_out.amplitude == pytest.approx(
            tone_in.amplitude * abs(h), rel=1e-12)


def test_lissajous_window(spec):
    bf = BiquadFilter(spec)
    stim = two_tone(5e3, 15e3, 0.2, 0.15, offset=0.5, phase2_deg=90)
    trace = bf.lissajous(stim, 512)
    assert trace.period == pytest.approx(200e-6)
    assert len(trace) == 512
