"""Process statistics: Pelgrom scaling, corners, Monte Carlo sampling."""

import numpy as np
import pytest

from repro.devices.mos_model import MosModel, NMOS_65NM
from repro.devices.process import (
    Corner,
    DeviceVariation,
    MonteCarloSampler,
    TECH_65NM,
)


def test_pelgrom_sigma_scales_with_inverse_sqrt_area():
    s1 = TECH_65NM.sigma_vt_mismatch(1e-6, 180e-9)
    s4 = TECH_65NM.sigma_vt_mismatch(4e-6, 180e-9)  # 4x area
    assert s1 / s4 == pytest.approx(2.0, rel=1e-9)


def test_pelgrom_absolute_value():
    # 1 um x 1 um device: sigma = AVT directly.
    s = TECH_65NM.sigma_vt_mismatch(1e-6, 1e-6)
    assert s == pytest.approx(TECH_65NM.avt_nmos_um)


def test_pmos_mismatch_uses_its_own_coefficient():
    sn = TECH_65NM.sigma_vt_mismatch(1e-6, 1e-6, polarity=1)
    sp = TECH_65NM.sigma_vt_mismatch(1e-6, 1e-6, polarity=-1)
    assert sp > sn


def test_beta_mismatch():
    s = TECH_65NM.sigma_beta_mismatch(1e-6, 1e-6)
    assert s == pytest.approx(TECH_65NM.abeta_um)
    with pytest.raises(ValueError):
        TECH_65NM.sigma_beta_mismatch(0.0, 1e-6)


def test_corner_ordering():
    """SS must be slower (higher VT, lower kp) than TT than FF."""
    tt = TECH_65NM.corner_params(Corner.TT)
    ss = TECH_65NM.corner_params(Corner.SS)
    ff = TECH_65NM.corner_params(Corner.FF)
    assert ss.vt0 > tt.vt0 > ff.vt0
    assert ss.kp < tt.kp < ff.kp
    assert tt.vt0 == NMOS_65NM.vt0


def test_cross_corners():
    fs = TECH_65NM.corner_params(Corner.FS, polarity=1)   # fast nMOS
    fs_p = TECH_65NM.corner_params(Corner.FS, polarity=-1)  # slow pMOS
    assert fs.vt0 < NMOS_65NM.vt0
    assert fs_p.vt0 > TECH_65NM.pmos.vt0


def test_device_variation_apply():
    model = MosModel(NMOS_65NM, 1.8e-6, 180e-9)
    varied = DeviceVariation(delta_vt=0.03, beta_factor=0.9).apply(model)
    assert varied.params.vt0 == pytest.approx(0.45)
    assert varied.beta == pytest.approx(0.9 * model.beta)
    # Threshold up + beta down -> strictly less current.
    assert varied.saturation_current(0.8) < model.saturation_current(0.8)


def test_device_variation_composition():
    a = DeviceVariation(0.01, 1.1)
    b = DeviceVariation(-0.005, 0.9)
    c = a.combined_with(b)
    assert c.delta_vt == pytest.approx(0.005)
    assert c.beta_factor == pytest.approx(0.99)


def test_sampler_reproducible_with_seed():
    s1 = MonteCarloSampler(rng=123)
    s2 = MonteCarloSampler(rng=123)
    d1 = s1.sample_die()
    d2 = s2.sample_die()
    assert d1.nmos_global.delta_vt == d2.nmos_global.delta_vt
    assert d1.pmos_global.beta_factor == d2.pmos_global.beta_factor


def test_global_variation_statistics():
    sampler = MonteCarloSampler(rng=0)
    shifts = [die.nmos_global.delta_vt for die in sampler.dies(400)]
    assert np.mean(shifts) == pytest.approx(0.0, abs=3e-3)
    assert np.std(shifts) == pytest.approx(TECH_65NM.sigma_vt_global,
                                           rel=0.2)


def test_mismatch_independent_within_die():
    sampler = MonteCarloSampler(rng=1)
    die = sampler.sample_die()
    v1 = die.device_variation(1.8e-6, 180e-9)
    v2 = die.device_variation(1.8e-6, 180e-9)
    assert v1.delta_vt != v2.delta_vt  # fresh local draw each time


def test_process_only_mode():
    sampler = MonteCarloSampler(rng=2, include_mismatch=False)
    die = sampler.sample_die()
    v1 = die.device_variation(1.8e-6, 180e-9)
    v2 = die.device_variation(1.8e-6, 180e-9)
    assert v1.delta_vt == v2.delta_vt == die.nmos_global.delta_vt


def test_mismatch_only_mode():
    sampler = MonteCarloSampler(rng=3, include_process=False)
    die = sampler.sample_die()
    assert die.nmos_global.delta_vt == 0.0
    assert die.device_variation(1.8e-6, 180e-9).delta_vt != 0.0


def test_die_vary_model():
    sampler = MonteCarloSampler(rng=4)
    die = sampler.sample_die()
    model = MosModel(NMOS_65NM, 1.8e-6, 180e-9)
    varied = die.vary(model)
    assert varied.params.vt0 != model.params.vt0
    assert varied.w == model.w and varied.l == model.l


def test_nominal_model_factory():
    model = TECH_65NM.nominal_model(3e-6, 180e-9)
    assert model.params == TECH_65NM.nmos
    p = TECH_65NM.nominal_model(3e-6, 180e-9, polarity=-1)
    assert p.params == TECH_65NM.pmos


def test_invalid_area_raises():
    with pytest.raises(ValueError):
        TECH_65NM.sigma_vt_mismatch(-1e-6, 180e-9)
