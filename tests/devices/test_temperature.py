"""Temperature behaviour of devices and monitor boundaries."""

import numpy as np
import pytest

from repro.devices import (
    NMOS_65NM,
    at_temperature,
    boundary_temperature_drift,
    industrial_range,
)
from repro.devices.mos_model import MosModel
from repro.monitor import MonitorBoundary, table1_config


def test_vt_drops_when_hot():
    hot = at_temperature(NMOS_65NM, 398.15)
    cold = at_temperature(NMOS_65NM, 233.15)
    assert hot.vt0 < NMOS_65NM.vt0 < cold.vt0
    # -1 mV/K over the 98.15 K from 300 K to 398.15 K.
    assert NMOS_65NM.vt0 - hot.vt0 == pytest.approx(0.09815, abs=1e-6)


def test_mobility_degrades_when_hot():
    hot = at_temperature(NMOS_65NM, 398.15)
    assert hot.kp < NMOS_65NM.kp
    assert hot.kp / NMOS_65NM.kp == pytest.approx(
        (398.15 / 300.0) ** -1.5, rel=1e-9)


def test_thermal_voltage_tracks_temperature():
    hot = at_temperature(NMOS_65NM, 400.0)
    assert hot.thermal_voltage == pytest.approx(0.02585 * 400 / 300,
                                                rel=1e-9)


def test_nominal_temperature_is_identity():
    same = at_temperature(NMOS_65NM, 300.0)
    assert same.vt0 == NMOS_65NM.vt0
    assert same.kp == NMOS_65NM.kp


def test_invalid_temperature():
    with pytest.raises(ValueError):
        at_temperature(NMOS_65NM, -10.0)


def test_subthreshold_slope_degrades_when_hot():
    """Hotter junction -> larger nUT -> shallower subthreshold slope."""
    cold_model = MosModel(at_temperature(NMOS_65NM, 250.0), 1.8e-6,
                          180e-9)
    hot_model = MosModel(at_temperature(NMOS_65NM, 400.0), 1.8e-6,
                         180e-9)
    # Decades per volt in deep subthreshold.
    def slope(model):
        i1 = model.saturation_current(0.10)
        i2 = model.saturation_current(0.15)
        return np.log10(i2 / i1) / 0.05
    assert slope(hot_model) < slope(cold_model)


def test_industrial_range():
    grid = industrial_range(5)
    assert grid[0] == pytest.approx(233.15)
    assert grid[-1] == pytest.approx(398.15)


def test_boundary_drift_is_monotone_and_bounded():
    """The curve-3 arc moves with temperature; drift stays tens of mV."""
    def factory(params):
        return MonitorBoundary(table1_config(3), params)

    temps = industrial_range(5)
    heights = boundary_temperature_drift(factory, temps, probe_x=0.25)
    assert not np.any(np.isnan(heights))
    drift = heights - heights[len(heights) // 2]
    assert np.max(np.abs(drift)) < 0.15  # bounded excursion
    assert np.max(np.abs(drift)) > 0.002  # but clearly measurable


def test_symmetric_monitors_self_compensate():
    """Curve 6 (y = x with both DC inputs equal) is temperature-
    invariant: both branches drift identically."""
    def factory(params):
        return MonitorBoundary(table1_config(6), params)

    temps = industrial_range(3)
    heights = boundary_temperature_drift(factory, temps, probe_x=0.5)
    np.testing.assert_allclose(heights, 0.5, atol=1e-3)
