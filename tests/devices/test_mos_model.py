"""MOS model physics: asymptotes, smoothness, polarity, inversions."""

import numpy as np
import pytest

from repro.devices.mos_model import (
    MosModel,
    MosParams,
    NMOS_65NM,
    PMOS_65NM,
    sigmoid,
    softplus,
    square_law_current,
)


@pytest.fixture
def nmos():
    return MosModel(NMOS_65NM, w=1.8e-6, l=180e-9)


@pytest.fixture
def pmos():
    return MosModel(PMOS_65NM, w=1.8e-6, l=180e-9)


# ----------------------------------------------------------------------
# Numerical helpers
# ----------------------------------------------------------------------

def test_softplus_limits():
    assert softplus(-100.0) == pytest.approx(0.0, abs=1e-30)
    assert softplus(100.0) == pytest.approx(100.0)
    assert softplus(0.0) == pytest.approx(np.log(2.0))


def test_sigmoid_stable_at_extremes():
    assert sigmoid(-1000.0) == pytest.approx(0.0)
    assert sigmoid(1000.0) == pytest.approx(1.0)
    assert sigmoid(0.0) == pytest.approx(0.5)


# ----------------------------------------------------------------------
# Strong-inversion square law (the paper's boundary idealization)
# ----------------------------------------------------------------------

def test_saturation_current_matches_square_law_strong_inversion(nmos):
    """Well above threshold, I -> (beta/2)(VGS-VT)^2 (few % accuracy)."""
    for vgs in (0.8, 0.9, 1.0, 1.1):
        exact = nmos.saturation_current(vgs)
        ideal = square_law_current(nmos.beta, vgs, NMOS_65NM.vt0)
        assert exact == pytest.approx(ideal, rel=0.10)


def test_square_law_ratio_improves_with_overdrive(nmos):
    """The EKV interpolation converges to the square law from above."""
    ratios = []
    for vgs in (0.6, 0.8, 1.0, 1.2):
        ideal = square_law_current(nmos.beta, vgs, NMOS_65NM.vt0)
        ratios.append(nmos.saturation_current(vgs) / ideal)
    diffs = np.abs(np.asarray(ratios) - 1.0)
    assert np.all(np.diff(diffs) < 0)  # monotone approach to 1


def test_subthreshold_slope(nmos):
    """Deep below VT the current must fall by e every n*UT volts.

    The probe points sit ~0.25 V under threshold where the EKV
    interpolation is within a few percent of its exponential asymptote.
    """
    v1, v2 = 0.12, 0.17
    i1 = nmos.saturation_current(v1)
    i2 = nmos.saturation_current(v2)
    n_ut = NMOS_65NM.n * NMOS_65NM.thermal_voltage
    expected_ratio = np.exp((v2 - v1) / n_ut)
    assert i2 / i1 == pytest.approx(expected_ratio, rel=0.05)


def test_current_scales_with_width(nmos):
    wide = nmos.resized(w=3.6e-6)
    assert wide.saturation_current(0.8) \
        == pytest.approx(2.0 * nmos.saturation_current(0.8), rel=1e-12)


def test_current_monotone_in_vgs(nmos):
    vgs = np.linspace(-0.2, 1.2, 200)
    i = nmos.saturation_current(vgs)
    assert np.all(np.diff(i) > 0)


# ----------------------------------------------------------------------
# Full drain current
# ----------------------------------------------------------------------

def test_drain_current_zero_at_vds_zero(nmos):
    assert nmos.drain_current(0.8, 0.0) == pytest.approx(0.0, abs=1e-15)


def test_drain_current_antisymmetric_in_vds(nmos):
    """Source/drain symmetry: Id(vgs, -vds) = -Id(vgs + vds, vds)."""
    vgs, vds = 0.7, 0.3
    forward = nmos.drain_current(vgs, vds, with_clm=False)
    swapped = nmos.drain_current(vgs - vds, -vds, with_clm=False)
    assert swapped == pytest.approx(-forward, rel=1e-9)


def test_triode_to_saturation_transition(nmos):
    """Id grows with vds in triode, saturates (slope ~ lambda) after."""
    vgs = 0.9
    vds = np.linspace(0.01, 1.2, 240)
    i = nmos.drain_current(vgs, vds)
    didv = np.diff(i) / np.diff(vds)
    assert np.all(didv > 0)  # CLM keeps a small positive slope
    # Early slope (triode) must dwarf the late slope (saturation).
    assert didv[0] > 20 * didv[-1]


def test_pmos_mirrors_nmos(pmos):
    """A conducting pMOS carries negative drain current."""
    i = pmos.drain_current(-0.8, -0.6)
    assert i < 0
    mirrored = MosModel(
        MosParams(polarity=1, vt0=PMOS_65NM.vt0, kp=PMOS_65NM.kp,
                  n=PMOS_65NM.n, lambda_=PMOS_65NM.lambda_),
        pmos.w, pmos.l)
    assert -i == pytest.approx(mirrored.drain_current(0.8, 0.6), rel=1e-12)


def test_smoothness_no_kinks(nmos):
    """First differences of Id(vgs) must themselves vary smoothly."""
    vgs = np.linspace(0.0, 1.0, 2001)
    i = nmos.saturation_current(vgs)
    second = np.diff(i, 2)
    # A kink would spike the second difference by orders of magnitude.
    assert np.max(np.abs(second)) < 50 * np.median(np.abs(second) + 1e-18)


# ----------------------------------------------------------------------
# Derivatives
# ----------------------------------------------------------------------

@pytest.mark.parametrize("vgs,vds", [(0.6, 0.6), (0.9, 0.2), (0.3, 0.8)])
def test_transconductance_matches_finite_difference(nmos, vgs, vds):
    e = 1e-7
    fd = (nmos.drain_current(vgs + e, vds)
          - nmos.drain_current(vgs - e, vds)) / (2 * e)
    assert nmos.transconductance(vgs, vds) == pytest.approx(fd, rel=1e-4)


@pytest.mark.parametrize("vgs,vds", [(0.6, 0.6), (0.9, 0.2)])
def test_output_conductance_matches_finite_difference(nmos, vgs, vds):
    e = 1e-7
    fd = (nmos.drain_current(vgs, vds + e)
          - nmos.drain_current(vgs, vds - e)) / (2 * e)
    assert nmos.output_conductance(vgs, vds) == pytest.approx(fd, rel=1e-4)


# ----------------------------------------------------------------------
# Utilities
# ----------------------------------------------------------------------

def test_gate_voltage_for_current_inverts(nmos):
    target = nmos.saturation_current(0.75)
    assert nmos.gate_voltage_for_current(target) == pytest.approx(0.75,
                                                                  abs=1e-6)


def test_gate_voltage_for_current_pmos(pmos):
    target = pmos.saturation_current(-0.75)
    assert pmos.gate_voltage_for_current(target) == pytest.approx(0.75,
                                                                  abs=1e-6)


def test_gate_voltage_for_current_validation(nmos):
    with pytest.raises(ValueError):
        nmos.gate_voltage_for_current(0.0)
    with pytest.raises(ValueError):
        nmos.gate_voltage_for_current(1e6)


def test_dimension_validation():
    with pytest.raises(ValueError):
        MosModel(NMOS_65NM, w=-1e-6, l=180e-9)
    with pytest.raises(ValueError):
        MosModel(NMOS_65NM, w=1e-6, l=0.0)


def test_with_variation():
    shifted = NMOS_65NM.with_variation(delta_vt=0.02, beta_factor=1.1)
    assert shifted.vt0 == pytest.approx(NMOS_65NM.vt0 + 0.02)
    assert shifted.kp == pytest.approx(NMOS_65NM.kp * 1.1)
    # Original untouched (frozen dataclass).
    assert NMOS_65NM.vt0 == 0.42
