"""Waveform container: construction, algebra, statistics."""

import numpy as np
import pytest

from repro.signals import Waveform


@pytest.fixture
def ramp():
    t = np.linspace(0.0, 1.0, 11)
    return Waveform(t, 2.0 * t)


def test_construction_validation():
    with pytest.raises(ValueError):
        Waveform([0.0], [1.0])  # too short
    with pytest.raises(ValueError):
        Waveform([0.0, 0.0], [1.0, 2.0])  # non-increasing
    with pytest.raises(ValueError):
        Waveform([0.0, 1.0], [1.0, 2.0, 3.0])  # shape mismatch
    with pytest.raises(ValueError):
        Waveform([[0, 1]], [[1, 2]])  # not 1-D


def test_from_function_excludes_endpoint():
    w = Waveform.from_function(np.sin, 2 * np.pi, 100)
    assert len(w) == 100
    assert w.times[-1] < 2 * np.pi
    assert w.times[1] - w.times[0] == pytest.approx(2 * np.pi / 100)


def test_from_function_scalar_callable():
    w = Waveform.from_function(lambda t: 1.0 if np.ndim(t) == 0 else None,
                               1.0, 10)
    assert np.all(w.values == 1.0)


def test_value_at_interpolates(ramp):
    assert ramp.value_at(0.25) == pytest.approx(0.5)
    out = ramp.value_at([0.25, 0.75])
    np.testing.assert_allclose(out, [0.5, 1.5])


def test_resample_and_slice(ramp):
    r = ramp.resampled(np.linspace(0.1, 0.9, 5))
    assert len(r) == 5
    assert r.value_at(0.5) == pytest.approx(1.0)
    s = ramp.sliced(0.2, 0.8)
    assert s.times[0] >= 0.2 and s.times[-1] <= 0.8
    with pytest.raises(ValueError):
        ramp.sliced(0.91, 0.99)  # fewer than two samples


def test_shift(ramp):
    s = ramp.shifted(1.0)
    assert s.times[0] == pytest.approx(1.0)
    np.testing.assert_allclose(s.values, ramp.values)


def test_statistics():
    t = np.linspace(0.0, 1.0, 10001)
    w = Waveform(t, np.sin(2 * np.pi * t))
    assert w.mean() == pytest.approx(0.0, abs=1e-6)
    assert w.rms() == pytest.approx(1 / np.sqrt(2), rel=1e-3)
    assert w.peak_to_peak() == pytest.approx(2.0, rel=1e-3)


def test_algebra(ramp):
    doubled = ramp * 2.0
    np.testing.assert_allclose(doubled.values, ramp.values * 2)
    summed = ramp + ramp
    np.testing.assert_allclose(summed.values, ramp.values * 2)
    offset = 1.0 + ramp
    np.testing.assert_allclose(offset.values, ramp.values + 1)
    diff = ramp - 0.5
    np.testing.assert_allclose(diff.values, ramp.values - 0.5)
    neg = -ramp
    np.testing.assert_allclose(neg.values, -ramp.values)
    rsub = 1.0 - ramp
    np.testing.assert_allclose(rsub.values, 1.0 - ramp.values)


def test_algebra_requires_alignment(ramp):
    other = Waveform(ramp.times + 0.5, ramp.values)
    with pytest.raises(ValueError, match="time base"):
        _ = ramp + other


def test_map(ramp):
    squared = ramp.map(lambda v: v ** 2)
    np.testing.assert_allclose(squared.values, ramp.values ** 2)


def test_uniformity(ramp):
    assert ramp.is_uniform()
    w = Waveform([0.0, 0.1, 0.3], [0.0, 1.0, 2.0])
    assert not w.is_uniform()
    assert w.sample_interval == pytest.approx(0.15)
