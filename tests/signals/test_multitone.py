"""Multitone stimuli: exact periods, LTI propagation, sampling."""

import numpy as np
import pytest

from repro.signals import Multitone, Tone, two_tone


def test_tone_validation():
    with pytest.raises(ValueError):
        Tone(-1.0, 1.0)
    with pytest.raises(ValueError):
        Tone(0.0, 1.0)


def test_tone_evaluate():
    tone = Tone(1.0, 2.0, 90.0)
    assert tone.evaluate(0.0) == pytest.approx(2.0)
    assert tone.evaluate(0.5) == pytest.approx(-2.0)


def test_multitone_needs_tones():
    with pytest.raises(ValueError):
        Multitone([])


def test_period_two_tones():
    stim = two_tone(5e3, 15e3, 1.0, 1.0)
    assert stim.fundamental_frequency() == pytest.approx(5e3)
    assert stim.period() == pytest.approx(200e-6)


def test_period_non_harmonic_pair():
    """3 Hz and 5 Hz share a 1 Hz fundamental (1 s period)."""
    stim = two_tone(3.0, 5.0, 1.0, 1.0)
    assert stim.period() == pytest.approx(1.0)
    assert stim.harmonic_indices() == [3, 5]


def test_harmonic_indices_of_paper_stimulus():
    stim = two_tone(5e3, 15e3, 0.26, 0.19)
    assert stim.harmonic_indices() == [1, 3]


def test_evaluation_scalar_and_vector():
    stim = Multitone([Tone(1.0, 1.0)], offset=0.5)
    assert stim(0.0) == pytest.approx(0.5)
    t = np.array([0.0, 0.25])
    np.testing.assert_allclose(stim(t), [0.5, 1.5])


def test_periodicity_of_evaluation():
    stim = two_tone(5e3, 15e3, 0.3, 0.2, offset=0.5, phase2_deg=45)
    period = stim.period()
    t = np.linspace(0, period, 50, endpoint=False)
    np.testing.assert_allclose(stim(t), stim(t + period), atol=1e-9)


def test_through_identity():
    stim = two_tone(1e3, 3e3, 0.4, 0.2, offset=0.5)
    passed = stim.through(lambda f: 1.0 + 0.0j)
    t = np.linspace(0, stim.period(), 64, endpoint=False)
    np.testing.assert_allclose(passed(t), stim(t), atol=1e-12)


def test_through_gain_and_phase():
    """H = 0.5 * exp(-j 90 deg) must halve amplitude and delay phase."""
    stim = Multitone([Tone(1.0, 1.0, 0.0)], offset=0.0)
    out = stim.through(lambda f: -0.5j if f > 0 else 1.0)
    # 0.5 sin(wt - 90 deg)
    assert out(0.25) == pytest.approx(0.0, abs=1e-12)
    assert out(0.5) == pytest.approx(0.5, abs=1e-12)


def test_through_matches_numeric_convolution_reference():
    """Exact LTI propagation vs brute-force frequency response check."""
    from repro.filters import BiquadFilter, BiquadSpec
    bf = BiquadFilter(BiquadSpec(11e3, 1.0, 1.0))
    stim = two_tone(5e3, 15e3, 0.26, 0.19, offset=0.5, phase2_deg=105)
    out = stim.through(bf.transfer)
    t = np.linspace(0, stim.period(), 256, endpoint=False)
    # Reference: evaluate each tone separately through H.
    ref = np.full_like(t, 0.5 * bf.transfer(0.0).real)
    for tone in stim.tones:
        h = bf.transfer(tone.freq_hz)
        ref += (abs(h) * tone.amplitude
                * np.sin(2 * np.pi * tone.freq_hz * t
                         + tone.phase_rad + np.angle(h)))
    np.testing.assert_allclose(out(t), ref, atol=1e-12)


def test_through_rejects_complex_dc():
    stim = Multitone([Tone(1.0, 1.0)], offset=0.5)
    with pytest.raises(ValueError, match="DC"):
        stim.through(lambda f: 1j)


def test_scaled_and_offset():
    stim = two_tone(1.0, 2.0, 0.4, 0.2, offset=0.5)
    scaled = stim.scaled(0.5)
    assert scaled.tones[0].amplitude == pytest.approx(0.2)
    assert scaled.offset == 0.5
    moved = stim.with_offset(0.0)
    assert moved.offset == 0.0
    assert moved.tones == stim.tones


def test_amplitude_bound():
    stim = two_tone(1.0, 2.0, 0.4, -0.2)
    assert stim.amplitude_bound() == pytest.approx(0.6)


def test_sample_tiles_periodically():
    stim = two_tone(1e3, 3e3, 0.3, 0.2, offset=0.1)
    w = stim.sample(samples_per_period=128, periods=2)
    assert len(w) == 256
    np.testing.assert_allclose(w.values[:128], w.values[128:], atol=1e-9)


def test_sample_validation():
    stim = two_tone(1e3, 3e3, 0.3, 0.2)
    with pytest.raises(ValueError):
        stim.sample(samples_per_period=1)
    with pytest.raises(ValueError):
        stim.sample(periods=0)
