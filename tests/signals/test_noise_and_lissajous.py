"""Noise model, band limiter and Lissajous composition."""

import numpy as np
import pytest

from repro.filters import BiquadFilter, BiquadSpec
from repro.signals import (
    BandLimiter,
    LissajousTrace,
    Multitone,
    NoiseModel,
    PAPER_NOISE_3SIGMA,
    Tone,
    Waveform,
    two_tone,
)


# ----------------------------------------------------------------------
# Noise
# ----------------------------------------------------------------------

def test_paper_noise_constant():
    assert PAPER_NOISE_3SIGMA == 0.015


def test_noise_sigma_is_one_third_of_spread():
    model = NoiseModel(0.015, rng=0)
    assert model.sigma == pytest.approx(0.005)


def test_noise_statistics():
    model = NoiseModel(0.015, rng=0)
    samples = model.samples(200000)
    assert np.mean(samples) == pytest.approx(0.0, abs=1e-4)
    assert np.std(samples) == pytest.approx(0.005, rel=0.02)


def test_zero_noise_is_exactly_zero():
    model = NoiseModel(0.0)
    assert np.all(model.samples(100) == 0.0)


def test_noise_validation():
    with pytest.raises(ValueError):
        NoiseModel(-0.01)


def test_corrupt_pair_independent():
    model = NoiseModel(0.015, rng=1)
    t = np.linspace(0, 1, 100)
    w = Waveform(t, np.zeros_like(t))
    x, y = model.corrupt_pair(w, w)
    assert not np.allclose(x.values, y.values)


# ----------------------------------------------------------------------
# Band limiter
# ----------------------------------------------------------------------

def test_band_limiter_passes_low_frequencies():
    fc = 200e3
    lim = BandLimiter(fc)
    t = np.arange(4096) * (200e-6 / 4096)
    w = Waveform(t, np.sin(2 * np.pi * 5e3 * t))
    out = lim.apply(w)
    # 5 kHz vs a 200 kHz pole: attenuation under 0.1 %.
    assert out.rms() == pytest.approx(w.rms(), rel=2e-3)


def test_band_limiter_attenuates_high_frequency_noise():
    lim = BandLimiter(200e3)
    rng = np.random.default_rng(0)
    t = np.arange(8192) * (200e-6 / 8192)  # fs ~ 41 MHz
    w = Waveform(t, rng.normal(0, 5e-3, len(t)))
    out = lim.apply(w)
    assert np.std(out.values) < 0.35 * np.std(w.values)


def test_band_limiter_validation():
    with pytest.raises(ValueError):
        BandLimiter(0.0)
    lim = BandLimiter(1e5)
    w = Waveform([0.0, 0.1, 0.3], [0.0, 1.0, 2.0])
    with pytest.raises(ValueError, match="uniform"):
        lim.apply(w)


def test_band_limiter_no_startup_transient():
    lim = BandLimiter(1e5)
    t = np.linspace(0, 1e-3, 1000, endpoint=False)
    w = Waveform(t, np.full_like(t, 0.7))
    out = lim.apply(w)
    np.testing.assert_allclose(out.values, 0.7, atol=1e-9)


def test_group_delay():
    lim = BandLimiter(1e5)
    assert lim.group_delay() == pytest.approx(1.0 / (2 * np.pi * 1e5))


# ----------------------------------------------------------------------
# Lissajous traces
# ----------------------------------------------------------------------

@pytest.fixture
def trace():
    stim = two_tone(5e3, 15e3, 0.26, 0.19, offset=0.5, phase2_deg=105)
    bf = BiquadFilter(BiquadSpec(11e3, 1.0, 1.0))
    return bf.lissajous(stim, 1024)


def test_trace_alignment_enforced():
    t = np.linspace(0, 1, 10)
    x = Waveform(t, t)
    y = Waveform(t + 0.1, t)
    with pytest.raises(ValueError, match="time base"):
        LissajousTrace(x, y)


def test_from_multitones_requires_common_period():
    a = Multitone([Tone(5e3, 0.1)])
    b = Multitone([Tone(7e3, 0.1)])
    with pytest.raises(ValueError, match="common period"):
        LissajousTrace.from_multitones(a, b)


def test_trace_period_and_points(trace):
    assert trace.period == pytest.approx(200e-6)
    xs, ys = trace.points()
    assert len(xs) == len(ys) == 1024


def test_point_at_wraps(trace):
    x0, y0 = trace.point_at(0.0)
    x1, y1 = trace.point_at(trace.period)
    assert x0 == pytest.approx(x1)
    assert y0 == pytest.approx(y1)


def test_closure_of_periodic_trace(trace):
    assert trace.closure_error() < 3.0  # within a few sample steps


def test_bounding_box_inside_window(trace):
    assert trace.stays_within(0.0, 1.0)
    xmin, xmax, ymin, ymax = trace.bounding_box()
    assert 0.0 < xmin < xmax < 1.0
    assert 0.0 < ymin < ymax < 1.0


def test_ascii_plot_shape(trace):
    art = trace.ascii_plot(width=40, height=12)
    lines = art.split("\n")
    assert len(lines) == 12
    assert all(len(line) == 40 for line in lines)
    assert any("*" in line for line in lines)


def test_from_functions():
    trace = LissajousTrace.from_functions(
        lambda t: np.cos(2 * np.pi * 1e3 * np.asarray(t)),
        lambda t: np.sin(2 * np.pi * 1e3 * np.asarray(t)),
        period=1e-3, samples_per_period=256)
    xs, ys = trace.points()
    np.testing.assert_allclose(xs ** 2 + ys ** 2, 1.0, atol=1e-12)
