"""Coherent harmonic analysis of periodic waveforms."""

import pytest

from repro.filters import BiquadFilter, BiquadSpec
from repro.signals import Waveform, harmonic_spectrum, tone_table, two_tone


def sampled(multitone, n=1024, periods=1):
    return multitone.sample(samples_per_period=n, periods=periods)


def test_single_tone_amplitude_and_phase():
    stim = two_tone(1e3, 2e3, 0.5, 0.0, offset=0.25, phase1_deg=30.0)
    spec = harmonic_spectrum(sampled(stim))
    assert spec.fundamental_hz == pytest.approx(1e3)
    assert spec.amplitude(0) == pytest.approx(0.25, abs=1e-9)
    assert spec.amplitude(1) == pytest.approx(0.5, abs=1e-9)
    assert spec.phase_deg(1) == pytest.approx(30.0, abs=1e-6)
    assert spec.amplitude(2) == pytest.approx(0.0, abs=1e-9)


def test_paper_stimulus_spectrum():
    from repro.paper import PAPER_STIMULUS
    spec = harmonic_spectrum(sampled(PAPER_STIMULUS, 4096))
    assert spec.amplitude(1) == pytest.approx(0.26, abs=1e-9)
    assert spec.amplitude(3) == pytest.approx(0.19, abs=1e-9)
    assert spec.phase_deg(3) == pytest.approx(105.0, abs=1e-6)
    assert spec.dominant_harmonics(2) == [1, 3]


def test_spectrum_validates_integer_periods():
    stim = two_tone(1e3, 3e3, 0.3, 0.1)
    w = sampled(stim)
    bad = Waveform(w.times, w.values)
    with pytest.raises(ValueError, match="integer"):
        harmonic_spectrum(bad, period=0.7e-3)


def test_spectrum_needs_uniform_sampling():
    w = Waveform([0.0, 1.0, 3.0], [0.0, 1.0, 0.0])
    with pytest.raises(ValueError, match="uniform"):
        harmonic_spectrum(w)


def test_multi_period_capture():
    stim = two_tone(1e3, 2e3, 0.4, 0.2)
    w = sampled(stim, n=512, periods=4)
    spec = harmonic_spectrum(w, period=1e-3)
    assert spec.amplitude(1) == pytest.approx(0.4, abs=1e-9)
    assert spec.amplitude(2) == pytest.approx(0.2, abs=1e-9)


def test_biquad_response_tone_by_tone():
    """The filtered stimulus's spectrum equals |H| per tone -- ties the
    exact LTI propagation to an independent DFT measurement."""
    bf = BiquadFilter(BiquadSpec(11e3, 1.0, 1.0))
    stim = two_tone(5e3, 15e3, 0.26, 0.19, offset=0.5, phase2_deg=105)
    out = bf.response(stim)
    spec = harmonic_spectrum(sampled(out, 4096))
    assert spec.amplitude(1) == pytest.approx(
        0.26 * abs(bf.transfer(5e3)), rel=1e-9)
    assert spec.amplitude(3) == pytest.approx(
        0.19 * abs(bf.transfer(15e3)), rel=1e-9)


def test_thd_of_pure_tone_is_zero():
    stim = two_tone(1e3, 2e3, 0.5, 0.0)
    spec = harmonic_spectrum(sampled(stim))
    assert spec.total_harmonic_distortion() == pytest.approx(0.0,
                                                             abs=1e-9)


def test_thd_detects_distortion():
    stim = two_tone(1e3, 2e3, 0.5, 0.0)
    w = sampled(stim).map(lambda v: v + 0.2 * v ** 2)  # soft clipper
    spec = harmonic_spectrum(w)
    assert spec.total_harmonic_distortion() > 0.02


def test_tone_table():
    stim = two_tone(1e3, 3e3, 0.4, 0.2, offset=0.1)
    table = tone_table(sampled(stim))
    freqs = sorted(table)
    assert len(freqs) == 2
    assert freqs[0] == pytest.approx(1e3, rel=1e-9)
    assert freqs[1] == pytest.approx(3e3, rel=1e-9)
    assert table[freqs[0]][0] == pytest.approx(0.4, abs=1e-9)
