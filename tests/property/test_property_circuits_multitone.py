"""Property-based tests: circuit invariants and multitone algebra."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.circuits import (
    Circuit,
    Resistor,
    VoltageSource,
    dc_operating_point,
)
from repro.signals.multitone import Multitone, Tone


# ----------------------------------------------------------------------
# Random resistive ladders: KCL and passivity
# ----------------------------------------------------------------------

@st.composite
def ladders(draw):
    """Random series/shunt resistor ladder driven by one source."""
    n = draw(st.integers(min_value=1, max_value=6))
    series = [draw(st.floats(min_value=10.0, max_value=1e5))
              for _ in range(n)]
    shunt = [draw(st.floats(min_value=10.0, max_value=1e5))
             for _ in range(n)]
    v = draw(st.floats(min_value=-10.0, max_value=10.0))
    assume(abs(v) > 1e-3)
    return series, shunt, v


@given(ladders())
@settings(max_examples=50, deadline=None)
def test_ladder_kcl_and_passivity(ladder):
    series, shunt, v = ladder
    ckt = Circuit("ladder")
    src = ckt.add(VoltageSource("V1", "n0", "0", dc=v))
    prev = "n0"
    for i, (rs, rp) in enumerate(zip(series, shunt)):
        nxt = f"n{i + 1}"
        ckt.add(Resistor(f"Rs{i}", prev, nxt, rs))
        ckt.add(Resistor(f"Rp{i}", nxt, "0", rp))
        prev = nxt
    system = ckt.assemble()
    sol = dc_operating_point(system)
    # KCL residual vanishes.
    assert np.max(np.abs(system.residual(sol.x))) < 1e-9
    # Passivity: the source delivers the power the resistors dissipate.
    p_source = -v * src.current(sol.x)
    p_res = 0.0
    for element in ckt.elements:
        if isinstance(element, Resistor):
            p_res += element.current(sol.x, ckt) ** 2 * element.resistance
    assert p_source == pytest.approx(p_res, rel=1e-6)
    assert p_source >= 0.0
    # Voltage magnitudes decay monotonically down a dissipative ladder.
    mags = [abs(sol.voltage(system, f"n{i}"))
            for i in range(len(series) + 1)]
    assert all(a >= b - 1e-12 for a, b in zip(mags, mags[1:]))


@given(st.floats(min_value=10.0, max_value=1e6),
       st.floats(min_value=10.0, max_value=1e6),
       st.floats(min_value=-10.0, max_value=10.0))
@settings(max_examples=50, deadline=None)
def test_divider_formula(r1, r2, v):
    ckt = Circuit()
    ckt.add(VoltageSource("V1", "a", "0", dc=v))
    ckt.add(Resistor("R1", "a", "b", r1))
    ckt.add(Resistor("R2", "b", "0", r2))
    system = ckt.assemble()
    sol = dc_operating_point(system)
    assert sol.voltage(system, "b") == pytest.approx(
        v * r2 / (r1 + r2), rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# Multitone algebra
# ----------------------------------------------------------------------

@st.composite
def multitones(draw):
    n = draw(st.integers(min_value=1, max_value=4))
    base = draw(st.integers(min_value=1, max_value=20)) * 100.0
    harmonics = draw(st.lists(st.integers(min_value=1, max_value=9),
                              min_size=n, max_size=n, unique=True))
    tones = [Tone(base * h,
                  draw(st.floats(min_value=0.01, max_value=0.5)),
                  draw(st.floats(min_value=0.0, max_value=360.0)))
             for h in harmonics]
    offset = draw(st.floats(min_value=-1.0, max_value=1.0))
    return Multitone(tones, offset)


@given(multitones())
@settings(max_examples=60, deadline=None)
def test_periodicity(stim):
    period = stim.period()
    t = np.linspace(0.0, period, 17, endpoint=False)
    np.testing.assert_allclose(stim(t + period), stim(t),
                               rtol=1e-9, atol=1e-9)


@given(multitones())
@settings(max_examples=60, deadline=None)
def test_amplitude_bound_holds(stim):
    t = np.linspace(0.0, stim.period(), 500, endpoint=False)
    assert np.max(np.abs(stim(t) - stim.offset)) \
        <= stim.amplitude_bound() + 1e-9


@given(multitones(), st.floats(min_value=0.1, max_value=3.0))
@settings(max_examples=60, deadline=None)
def test_through_is_linear_in_gain(stim, gain):
    """H = g (real) must scale the AC part by g and the offset by g."""
    out = stim.through(lambda f: gain)
    t = np.linspace(0.0, stim.period(), 64, endpoint=False)
    np.testing.assert_allclose(out(t), gain * stim(t), rtol=1e-9,
                               atol=1e-9)


@given(multitones())
@settings(max_examples=60, deadline=None)
def test_fundamental_divides_all_tones(stim):
    f0 = stim.fundamental_frequency()
    for tone in stim.tones:
        ratio = tone.freq_hz / f0
        assert ratio == pytest.approx(round(ratio), abs=1e-6)
