"""Property tests for the packed fleet-NDF kernel.

The batched kernel must inherit every invariant of the scalar
:func:`repro.core.ndf.ndf` because it *is* the same metric, computed
flat: on random populations it must match the per-die loop exactly,
stay symmetric, vanish only on identical code functions, and be
invariant under joint rotation.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ndf import ndf
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch, fleet_ndf

PERIOD = 1.0


@st.composite
def signatures(draw, max_entries=8, max_code=63):
    """Random run-length signatures with exact total duration."""
    n = draw(st.integers(min_value=1, max_value=max_entries))
    weights = [draw(st.floats(min_value=0.05, max_value=1.0))
               for _ in range(n)]
    total = sum(weights)
    codes = [draw(st.integers(min_value=0, max_value=max_code))
             for _ in range(n)]
    pairs = [(c, w / total * PERIOD) for c, w in zip(codes, weights)]
    return Signature.from_pairs(pairs, PERIOD)


@st.composite
def populations(draw, max_rows=6):
    """A golden signature plus a small random population."""
    golden = draw(signatures())
    rows = draw(st.lists(signatures(), min_size=1, max_size=max_rows))
    return golden, rows


@st.composite
def code_stacks(draw, max_rows=5, samples=24, max_code=7):
    """Random sampled code stacks on a shared uniform grid."""
    n = draw(st.integers(min_value=1, max_value=max_rows))
    stack = np.asarray(
        [[draw(st.integers(min_value=0, max_value=max_code))
          for _ in range(samples)] for _ in range(n)])
    times = PERIOD * np.arange(samples) / samples
    return times, stack


@given(populations())
@settings(max_examples=50, deadline=None)
def test_fleet_matches_per_die_exactly(population):
    golden, rows = population
    packed = SignatureBatch.from_signatures(rows)
    expected = np.asarray([ndf(row, golden) for row in rows])
    assert np.array_equal(packed.ndf_to(golden), expected)


@given(code_stacks())
@settings(max_examples=50, deadline=None)
def test_sampled_stack_matches_per_die_exactly(stack_case):
    times, stack = stack_case
    golden = Signature.from_samples(times, stack[0], PERIOD)
    packed = SignatureBatch.from_code_stack(times, stack, PERIOD)
    expected = np.asarray(
        [ndf(Signature.from_samples(times, row, PERIOD), golden)
         for row in stack])
    values = packed.ndf_to(golden)
    assert np.array_equal(values, expected)
    # Row 0 is the golden itself: exact zero, no float residue.
    assert values[0] == 0.0


@given(signatures(), signatures())
@settings(max_examples=50, deadline=None)
def test_fleet_is_symmetric(a, b):
    ab = fleet_ndf(SignatureBatch.from_signatures([a]), b)[0]
    ba = fleet_ndf(SignatureBatch.from_signatures([b]), a)[0]
    assert ab == pytest.approx(ba, abs=1e-12)


@given(populations())
@settings(max_examples=50, deadline=None)
def test_zero_iff_equal_code_function(population):
    golden, rows = population
    values = SignatureBatch.from_signatures(rows).ndf_to(golden)
    for value, row in zip(values, rows):
        if value == 0.0:
            # Equal almost everywhere -> equal codes on a dense grid.
            probes = PERIOD * (np.arange(200) + 0.5) / 200
            assert np.array_equal(row.code_at(probes),
                                  golden.code_at(probes))
        else:
            assert ndf(row, golden) > 0.0
    # And every row against itself is exactly zero.
    self_packed = SignatureBatch.from_signatures(rows)
    for i, row in enumerate(rows):
        assert self_packed.ndf_to(row)[i] == 0.0


@given(populations(), st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=40, deadline=None)
def test_joint_rotation_invariance(population, dt):
    golden, rows = population
    baseline = SignatureBatch.from_signatures(rows).ndf_to(golden)
    rotated = SignatureBatch.from_signatures(
        [row.rotated(dt) for row in rows]).ndf_to(golden.rotated(dt))
    assert np.allclose(baseline, rotated, atol=1e-9)


@given(populations())
@settings(max_examples=40, deadline=None)
def test_bounded_by_code_width(population):
    golden, rows = population
    values = SignatureBatch.from_signatures(rows).ndf_to(golden)
    assert np.all(values >= 0.0)
    assert np.all(values <= 6.0)  # 6-bit codes: dH <= 6
