"""The shard-protocol fuzz wall.

The coordinator feeds every line a worker channel produces through
:func:`decode_message`; a lost TCP segment, a half-written pipe line
or a hostile client can put *anything* there.  The wall has two
bricks: (1) every encodable message survives the wire round-trip
bit-exact, and (2) junk never escapes as anything but ``ValueError``
-- the one exception type the reader loop translates into "lose this
worker" (``tests/shard/test_tcp_campaign.py`` proves the live
coordinator survives exactly that).
"""

from __future__ import annotations

import json

import pytest
from hypothesis import given, settings, strategies as st

from repro.shard.protocol import (
    assign_message,
    decode_message,
    encode_message,
    init_message,
    pack_payload,
    shutdown_message,
    unpack_payload,
)

json_values = st.recursive(
    st.none() | st.booleans()
    | st.integers(min_value=-(2**53), max_value=2**53)
    | st.floats(allow_nan=False, allow_infinity=False)
    | st.text(max_size=20),
    lambda children: st.lists(children, max_size=4)
    | st.dictionaries(st.text(max_size=10), children, max_size=4),
    max_leaves=12)

messages = st.dictionaries(
    st.text(min_size=1, max_size=12), json_values,
    max_size=5).map(lambda d: {**d, "type": "probe"})

payload_objects = st.recursive(
    st.none() | st.booleans() | st.integers() | st.text(max_size=20)
    | st.floats(allow_nan=False),
    lambda children: st.lists(children, max_size=4)
    | st.tuples(children, children)
    | st.dictionaries(st.text(max_size=8), children, max_size=4),
    max_leaves=10)


@given(message=messages)
@settings(max_examples=100, deadline=None)
def test_encode_decode_round_trips_exactly(message):
    assert decode_message(encode_message(message)) == message


@given(obj=payload_objects)
@settings(max_examples=100, deadline=None)
def test_pack_unpack_payload_round_trips(obj):
    assert unpack_payload(pack_payload(obj)) == obj


@given(line=st.text(max_size=200))
@settings(max_examples=200, deadline=None)
def test_junk_lines_raise_value_error_and_nothing_else(line):
    """The whole fuzz wall in one property: any text line either
    decodes to a typed message dict or raises exactly ValueError."""
    try:
        message = decode_message(line)
    except ValueError:
        return
    assert isinstance(message, dict)
    assert "type" in message


@given(blob=st.binary(max_size=100))
@settings(max_examples=100, deadline=None)
def test_binary_junk_decoded_as_text_raises_only_value_error(blob):
    line = blob.decode("utf-8", errors="replace")
    try:
        decode_message(line)
    except ValueError:
        pass


@pytest.mark.parametrize("line", [
    "", "\n", "null", "42", '"a string"', "[1,2,3]", "true",
    '{"no_type": 1}', '{"type"', "{]", "\x00\x01\x02",
    '{"type": "x"} trailing garbage',
])
def test_known_nasty_corpus_raises_value_error(line):
    with pytest.raises(ValueError):
        decode_message(line)


def test_decoded_json_non_dict_is_rejected_not_returned():
    # json.loads succeeds on these; the protocol must still reject.
    for line in ("[]", "3.14", '"type"'):
        assert json.loads(line) is not None or True
        with pytest.raises(ValueError, match="without a type|undecodable"):
            decode_message(line)


@given(shard=st.integers(min_value=0, max_value=10**6),
       lo=st.integers(min_value=0, max_value=10**9),
       size=st.integers(min_value=1, max_value=10**6),
       resume=st.none() | st.text(
           alphabet="ABCDEFabcdef0123456789+/=", max_size=64))
@settings(max_examples=100, deadline=None)
def test_assign_message_round_trips_and_omits_absent_resume(
        shard, lo, size, resume):
    message = assign_message(shard, lo, lo + size, "ck.npz",
                             resume_b64=resume)
    decoded = decode_message(encode_message(message))
    assert decoded["shard"] == shard
    assert decoded["lo"] == lo and decoded["hi"] == lo + size
    if resume is None:
        assert "resume_b64" not in decoded
    else:
        assert decoded["resume_b64"] == resume


def test_init_and_shutdown_round_trip_through_the_wire():
    config = {"tolerance": 0.05}  # any picklable stands in
    fleet = [1, 2, 3]
    message = init_message(config, 0.25, fleet, 2, 5.0, None,
                           remote=True)
    decoded = decode_message(encode_message(message))
    assert decoded["remote"] is True
    assert unpack_payload(decoded["config_b64"]) == config
    assert unpack_payload(decoded["fleet_b64"]) == fleet
    assert decode_message(
        encode_message(shutdown_message()))["type"] == "shutdown"
