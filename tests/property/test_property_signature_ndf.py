"""Property-based tests for signatures and the NDF metric.

The NDF inherits metric structure from the Hamming distance; these
hypothesis tests pin the invariants the paper's method relies on:

* signatures conserve the period under any construction/rotation;
* NDF is a pseudometric: symmetric, zero on equal code functions,
  triangle inequality, bounded by the code width;
* NDF is invariant under joint rotation (the capture has no preferred
  time origin as long as golden and observed share it).
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.ndf import ndf, ndf_sampled
from repro.core.signature import Signature


@st.composite
def signatures(draw, period=1.0, max_entries=8, max_code=63):
    """Random run-length signatures with exact total duration."""
    n = draw(st.integers(min_value=1, max_value=max_entries))
    # Random positive weights normalized to the period.
    weights = [draw(st.floats(min_value=0.05, max_value=1.0))
               for _ in range(n)]
    total = sum(weights)
    codes = [draw(st.integers(min_value=0, max_value=max_code))
             for _ in range(n)]
    pairs = [(c, w / total * period) for c, w in zip(codes, weights)]
    return Signature.from_pairs(pairs, period)


@given(signatures())
@settings(max_examples=60, deadline=None)
def test_durations_sum_to_period(sig):
    assert sig.durations().sum() == pytest.approx(sig.period)
    assert len(sig.breakpoints()) == len(sig) - 1


@given(signatures())
@settings(max_examples=60, deadline=None)
def test_no_equal_neighbours_after_merge(sig):
    codes = sig.codes()
    assert all(a != b for a, b in zip(codes, codes[1:]))


@given(signatures(), st.floats(min_value=0.0, max_value=2.0))
@settings(max_examples=60, deadline=None)
def test_rotation_conserves_dwell_totals(sig, dt):
    rot = sig.rotated(dt)
    assert rot.period == pytest.approx(sig.period)

    def totals(s):
        out = {}
        for e in s:
            out[e.code] = out.get(e.code, 0.0) + e.duration
        return out

    a, b = totals(sig), totals(rot)
    assert set(a) == set(b)
    for code in a:
        assert a[code] == pytest.approx(b[code], abs=1e-9)


@given(signatures())
@settings(max_examples=40, deadline=None)
def test_ndf_identity(sig):
    assert ndf(sig, sig) == 0.0


@given(signatures(), signatures())
@settings(max_examples=40, deadline=None)
def test_ndf_symmetry(a, b):
    assert ndf(a, b) == pytest.approx(ndf(b, a), abs=1e-12)


@given(signatures(), signatures())
@settings(max_examples=40, deadline=None)
def test_ndf_bounded_by_code_width(a, b):
    assert 0.0 <= ndf(a, b) <= 6.0  # codes are at most 6 bits here


@given(signatures(), signatures(), signatures())
@settings(max_examples=30, deadline=None)
def test_ndf_triangle_inequality(a, b, c):
    assert ndf(a, c) <= ndf(a, b) + ndf(b, c) + 1e-9


@given(signatures(), signatures(),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=30, deadline=None)
def test_ndf_joint_rotation_invariance(a, b, dt):
    assert ndf(a.rotated(dt), b.rotated(dt)) == pytest.approx(
        ndf(a, b), abs=1e-9)


@given(signatures(), signatures())
@settings(max_examples=15, deadline=None)
def test_sampled_estimator_tracks_exact(a, b):
    exact = ndf(a, b)
    estimate = ndf_sampled(a, b, num_samples=30000)
    assert estimate == pytest.approx(exact, abs=2e-3)


@given(signatures(max_code=7), st.integers(min_value=2, max_value=50))
@settings(max_examples=40, deadline=None)
def test_code_at_round_trip(sig, num):
    """Reconstructing a signature from its own samples is lossless when
    sampled at every breakpoint."""
    times = np.sort(np.unique(np.concatenate(
        [[0.0], sig.breakpoints()])))
    codes = sig.code_at(times)
    rebuilt = Signature.from_samples(times, codes, sig.period)
    assert rebuilt == sig
