"""Property-based tests: parser round-trip, spectrum, yield model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis import roc_curve, yield_escape_analysis
from repro.analysis.yield_model import CutUnit
from repro.circuits import Circuit, Resistor, VoltageSource, parse_netlist
from repro.circuits.dc import dc_operating_point
from repro.signals import Tone, Multitone, harmonic_spectrum


# ----------------------------------------------------------------------
# Netlist parser round-trip against direct construction
# ----------------------------------------------------------------------

@st.composite
def ladder_descriptions(draw):
    n = draw(st.integers(min_value=1, max_value=5))
    series = [draw(st.floats(min_value=1.0, max_value=1e6))
              for _ in range(n)]
    shunt = [draw(st.floats(min_value=1.0, max_value=1e6))
             for _ in range(n)]
    v = draw(st.floats(min_value=-50.0, max_value=50.0))
    return series, shunt, v


@given(ladder_descriptions())
@settings(max_examples=40, deadline=None)
def test_parsed_ladder_matches_direct_construction(description):
    series, shunt, v = description
    # Build via API.
    direct = Circuit()
    direct.add(VoltageSource("V1", "n0", "0", dc=v))
    text_lines = [f"V1 n0 0 {v!r}"]
    prev = "n0"
    for i, (rs, rp) in enumerate(zip(series, shunt)):
        nxt = f"n{i + 1}"
        direct.add(Resistor(f"Rs{i}", prev, nxt, rs))
        direct.add(Resistor(f"Rp{i}", nxt, "0", rp))
        text_lines.append(f"Rs{i} {prev} {nxt} {rs!r}")
        text_lines.append(f"Rp{i} {nxt} 0 {rp!r}")
        prev = nxt
    parsed = parse_netlist("\n".join(text_lines))

    sys_d = direct.assemble()
    sys_p = parsed.assemble()
    sol_d = dc_operating_point(sys_d)
    sol_p = dc_operating_point(sys_p)
    for node in direct.node_names():
        assert sol_p.voltage(sys_p, node) == pytest.approx(
            sol_d.voltage(sys_d, node), rel=1e-9, abs=1e-12)


# ----------------------------------------------------------------------
# Spectrum: Parseval and reconstruction
# ----------------------------------------------------------------------

@st.composite
def small_multitones(draw):
    n = draw(st.integers(min_value=1, max_value=3))
    harmonics = draw(st.lists(st.integers(min_value=1, max_value=8),
                              min_size=n, max_size=n, unique=True))
    tones = [Tone(1e3 * h,
                  draw(st.floats(min_value=0.01, max_value=1.0)),
                  draw(st.floats(min_value=-180.0, max_value=180.0)))
             for h in harmonics]
    return Multitone(tones, draw(st.floats(min_value=-1.0, max_value=1.0)))


@given(small_multitones())
@settings(max_examples=40, deadline=None)
def test_spectrum_recovers_tones_exactly(stim):
    spec = harmonic_spectrum(stim.sample(samples_per_period=256))
    assert spec.amplitude(0) == pytest.approx(stim.offset, abs=1e-9)
    for tone in stim.tones:
        # Harmonic index relative to the *multitone's* fundamental
        # (a single 2 kHz tone has fundamental 2 kHz, index 1).
        k = int(round(tone.freq_hz / spec.fundamental_hz))
        assert spec.amplitude(k) == pytest.approx(abs(tone.amplitude),
                                                  abs=1e-9)


@given(small_multitones())
@settings(max_examples=40, deadline=None)
def test_parseval(stim):
    w = stim.sample(samples_per_period=512)
    spec = harmonic_spectrum(w)
    power_time = float(np.mean(w.values ** 2))
    power_freq = spec.amplitude(0) ** 2 + 0.5 * float(
        np.sum(spec.amplitudes[1:] ** 2))
    assert power_freq == pytest.approx(power_time, rel=1e-9)


# ----------------------------------------------------------------------
# Yield model invariants
# ----------------------------------------------------------------------

@st.composite
def unit_populations(draw):
    n = draw(st.integers(min_value=3, max_value=30))
    units = [CutUnit(draw(st.floats(min_value=-0.2, max_value=0.2)),
                     draw(st.floats(min_value=0.0, max_value=0.3)))
             for _ in range(n)]
    tolerance = draw(st.floats(min_value=0.01, max_value=0.15))
    return units, tolerance


@given(unit_populations(), st.floats(min_value=0.0, max_value=0.3))
@settings(max_examples=60, deadline=None)
def test_confusion_matrix_partitions_population(population, threshold):
    units, tolerance = population
    report = yield_escape_analysis(units, threshold, tolerance)
    assert report.total == len(units)
    assert min(report.true_pass, report.true_fail, report.yield_loss,
               report.escapes) >= 0


@given(unit_populations())
@settings(max_examples=40, deadline=None)
def test_roc_monotonicity(population):
    units, tolerance = population
    reports = roc_curve(units, tolerance)
    escapes = [r.escapes for r in reports]
    losses = [r.yield_loss for r in reports]
    assert all(a <= b for a, b in zip(escapes, escapes[1:]))
    assert all(a >= b for a, b in zip(losses, losses[1:]))
    # Extreme: the loosest threshold passes everything -- every bad
    # unit escapes and no good unit is scrapped.
    assert reports[-1].escapes == sum(
        1 for u in units if not u.is_good(tolerance))
    assert reports[-1].yield_loss == 0
