"""Property-based tests: zone encoding geometry and MOS model physics."""

import numpy as np
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.core.boundaries import LinearBoundary
from repro.core.zones import ZoneEncoder, hamming_distance
from repro.devices.mos_model import MosModel, MosParams


# ----------------------------------------------------------------------
# Hamming distance
# ----------------------------------------------------------------------

@given(st.integers(min_value=0, max_value=2 ** 16),
       st.integers(min_value=0, max_value=2 ** 16))
def test_hamming_symmetric_and_identity(a, b):
    assert hamming_distance(a, b) == hamming_distance(b, a)
    assert hamming_distance(a, a) == 0


@given(st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255),
       st.integers(min_value=0, max_value=255))
def test_hamming_triangle(a, b, c):
    assert hamming_distance(a, c) <= (hamming_distance(a, b)
                                      + hamming_distance(b, c))


# ----------------------------------------------------------------------
# Zone encoders over random line banks
# ----------------------------------------------------------------------

@st.composite
def line_banks(draw):
    """Random banks of 2-5 non-origin-crossing lines."""
    n = draw(st.integers(min_value=2, max_value=5))
    lines = []
    for i in range(n):
        kind = draw(st.sampled_from(["v", "h", "o"]))
        if kind == "v":
            lines.append(LinearBoundary.vertical(
                f"v{i}", draw(st.floats(min_value=0.1, max_value=0.9))))
        elif kind == "h":
            lines.append(LinearBoundary.horizontal(
                f"h{i}", draw(st.floats(min_value=0.1, max_value=0.9))))
        else:
            a = draw(st.floats(min_value=0.3, max_value=2.0))
            b = draw(st.floats(min_value=0.3, max_value=2.0))
            c = draw(st.floats(min_value=-1.5, max_value=-0.2))
            lines.append(LinearBoundary(f"o{i}", a, b, c))
    return lines


@given(line_banks(), st.floats(min_value=0.0, max_value=1.0),
       st.floats(min_value=0.0, max_value=1.0))
@settings(max_examples=60, deadline=None)
def test_code_bits_consistent(bank, x, y):
    encoder = ZoneEncoder(bank)
    code = encoder.code(x, y)
    bits = encoder.bits(x, y)
    assert encoder.code_string(code) == "".join(str(b) for b in bits)
    assert 0 <= code < 2 ** encoder.num_bits


@given(line_banks())
@settings(max_examples=20, deadline=None)
def test_origin_zone_is_zero_for_offset_lines(bank):
    encoder = ZoneEncoder(bank)
    assert encoder.origin_zone() == 0


def _window_segment(line, lo=0.0, hi=1.0):
    """Endpoints of a line clipped to the square window, or None."""
    points = []
    if abs(line.b) > abs(line.a):
        for x in np.linspace(lo, hi, 65):
            y = -(line.a * x + line.c) / line.b
            if lo <= y <= hi:
                points.append((x, y))
    else:
        for y in np.linspace(lo, hi, 65):
            x = -(line.b * y + line.c) / line.a
            if lo <= x <= hi:
                points.append((x, y))
    if len(points) < 2:
        return None
    return points[0], points[-1]


def _in_general_position(bank, min_gap=0.08, min_angle_sin=0.3):
    """True when no two lines run near-coincident inside the window.

    The Gray property genuinely fails where two boundaries (almost)
    coincide -- both bits flip across the same border -- so the
    property test restricts itself to transversal arrangements, which
    is also what a sane monitor design uses.  Near-parallel pairs are
    rejected unless they stay separated across the whole unit window:
    separation is measured as the distance from points *on* one line's
    in-window segment to the other line, which also catches shallow
    in-window crossings (near-parallel but not parallel lines whose
    intersection sits inside the window run within a pixel of each
    other for many pixels -- an extended two-bit pseudo-border the old
    parallel-offset gap test missed).  The angle floor is matched to
    the adjacency analysis: at crossing angle ``asin(0.3)`` the
    stretch where two lines sit within one 1/128 pixel of each other
    spans about 3 pixels, safely below the point-contact threshold
    of 5.
    """
    for i, p in enumerate(bank):
        for q in bank[i + 1:]:
            np_ = np.hypot(p.a, p.b)
            nq = np.hypot(q.a, q.b)
            cross = abs(p.a * q.b - p.b * q.a) / (np_ * nq)
            if cross >= min_angle_sin:
                continue  # clearly transversal
            # Near-parallel: walk p's in-window segment and require a
            # healthy distance to q everywhere along it (the distance
            # is affine along the segment, so the endpoints bound it
            # -- unless it changes sign, i.e. the lines cross).
            segment = _window_segment(p)
            if segment is None:
                continue  # p never enters the window: no border at all
            d0, d1 = ((q.a * x + q.b * y + q.c) / nq
                      for x, y in segment)
            if d0 * d1 <= 0.0 or min(abs(d0), abs(d1)) < min_gap:
                return False
    return True


@given(line_banks())
@settings(max_examples=10, deadline=None)
def test_transversal_line_banks_are_gray(bank):
    """Straight lines in general position only violate adjacency at
    isolated intersection points, never along borders."""
    assume(_in_general_position(bank))
    encoder = ZoneEncoder(bank)
    report = encoder.adjacency_report(grid=128)
    assert report.is_gray


# ----------------------------------------------------------------------
# MOS model properties
# ----------------------------------------------------------------------

@st.composite
def mos_models(draw):
    params = MosParams(
        polarity=1,
        vt0=draw(st.floats(min_value=0.25, max_value=0.6)),
        kp=draw(st.floats(min_value=1e-4, max_value=8e-4)),
        n=draw(st.floats(min_value=1.1, max_value=1.6)),
        lambda_=draw(st.floats(min_value=0.0, max_value=0.3)))
    w = draw(st.floats(min_value=0.2e-6, max_value=10e-6))
    return MosModel(params, w, 180e-9)


@given(mos_models(), st.floats(min_value=-0.5, max_value=1.5),
       st.floats(min_value=-0.5, max_value=1.5))
@settings(max_examples=80, deadline=None)
def test_current_monotone_in_vgs(model, vgs, dv):
    assume(dv > 1e-6)
    vds = 0.6
    assert model.drain_current(vgs + dv, vds) \
        > model.drain_current(vgs, vds)


@given(mos_models(), st.floats(min_value=0.0, max_value=1.2))
@settings(max_examples=80, deadline=None)
def test_current_positive_for_positive_vds(model, vgs):
    assert model.drain_current(vgs, 0.7) > 0.0
    assert model.saturation_current(vgs) > 0.0


@given(mos_models(), st.floats(min_value=0.0, max_value=1.2),
       st.floats(min_value=0.01, max_value=1.2))
@settings(max_examples=80, deadline=None)
def test_current_odd_under_terminal_swap(model, vgs, vds):
    """Swapping source and drain negates the current (no CLM)."""
    forward = model.drain_current(vgs, vds, with_clm=False)
    backward = model.drain_current(vgs - vds, -vds, with_clm=False)
    assert backward == pytest.approx(-forward, rel=1e-6, abs=1e-18)


@given(mos_models(), st.floats(min_value=0.5, max_value=1.2))
@settings(max_examples=40, deadline=None)
def test_gate_voltage_inversion_round_trip(model, vgs):
    target = model.saturation_current(vgs)
    recovered = model.gate_voltage_for_current(target)
    assert recovered == pytest.approx(vgs, abs=1e-5)
