"""Planner invariants under hypothesis: every plan tiles ``[0, N)``.

The merge's bit-identity rests entirely on these properties -- the
shards must be contiguous, disjoint, gap-free, ordered, and (in
fixed-size mode) chunk-aligned at every boundary except the tail.
The autotuner's carving is exercised by the campaign tests; here we
pin the static planner over the whole (num_dies, shards, chunk)
space.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.shard import ShardAutotuner, plan_shards


def _assert_tiles(plan, count):
    assert [s.index for s in plan] == list(range(len(plan)))
    cursor = 0
    for shard in plan:
        assert shard.lo == cursor, "gap or overlap at a boundary"
        assert shard.hi > shard.lo, "empty shard emitted"
        cursor = shard.hi
    assert cursor == count, "plan does not cover [0, count)"


@given(count=st.integers(min_value=0, max_value=5000),
       shards=st.integers(min_value=1, max_value=64))
@settings(max_examples=150, deadline=None)
def test_near_equal_plans_tile_exactly(count, shards):
    plan = plan_shards(count, shards)
    _assert_tiles(plan, count)
    if count:
        sizes = [s.num_dies for s in plan]
        assert max(sizes) - min(sizes) <= 1
        assert len(plan) == min(shards, count)


@given(count=st.integers(min_value=0, max_value=5000),
       shards=st.integers(min_value=1, max_value=64),
       chunk=st.integers(min_value=1, max_value=128))
@settings(max_examples=150, deadline=None)
def test_fixed_size_plans_tile_and_align(count, shards, chunk):
    plan = plan_shards(count, shards, shard_size=chunk)
    _assert_tiles(plan, count)
    # Every boundary except the tail sits on a chunk multiple.
    for shard in plan[:-1]:
        assert shard.num_dies == chunk
        assert shard.hi % chunk == 0
    if plan:
        assert plan[-1].num_dies <= chunk


@given(count=st.integers(min_value=1, max_value=2000),
       shards=st.integers(min_value=1, max_value=32),
       chunk=st.integers(min_value=1, max_value=64),
       target=st.floats(min_value=0.1, max_value=60.0),
       rates=st.lists(st.floats(min_value=0.01, max_value=1e4),
                      min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_autotuned_carving_tiles_for_any_observed_rates(
        count, shards, chunk, target, rates):
    """Simulate the coordinator's carving loop: whatever sizes the
    tuner asks for, sequential carving still tiles ``[0, count)``
    with chunk-aligned interior boundaries."""
    tuner = ShardAutotuner(target, initial_size=max(1, count // 4),
                           align=chunk, max_size=count)
    for i, rate in enumerate(rates):
        tuner.observe(i % 3, dies=max(1, int(rate)), seconds=1.0)
    carved = []
    frontier = 0
    worker = 0
    index = 0
    while frontier < count:
        size = tuner.next_size(worker % 3)
        hi = min(frontier + size, count)
        assert hi > frontier, "carving stalled"
        carved.append((index, frontier, hi))
        # Sizes are chunk multiples unless the max_size (= fleet
        # size) clamp cut the last multiple short.
        assert size % chunk == 0 or size == count
        frontier = hi
        index += 1
        worker += 1
    assert carved[0][1] == 0
    assert carved[-1][2] == count
    for (_, _, prev_hi), (_, lo, _) in zip(carved, carved[1:]):
        assert lo == prev_hi
