"""Chronogram artifacts: Fig. 7 data bundle and event extraction."""

import numpy as np
import pytest

from repro.analysis import (
    ascii_chronogram,
    build_chronogram,
    skipped_zone_events,
)
from repro.core.signature import Signature


def test_build_chronogram_consistency(golden_signature,
                                      defective_signature):
    data = build_chronogram(defective_signature, golden_signature)
    assert len(data.times) == len(data.hamming)
    assert data.ndf == pytest.approx(0.0999, abs=0.005)
    assert data.period == pytest.approx(200e-6, rel=1e-3)
    # Hamming track is consistent with the code tracks.
    xor = np.bitwise_xor(data.golden_codes.astype(int),
                         data.observed_codes.astype(int))
    popcount = np.array([bin(v).count("1") for v in xor])
    np.testing.assert_array_equal(popcount, data.hamming.astype(int))


def test_chronogram_of_identical_signatures(golden_signature):
    data = build_chronogram(golden_signature, golden_signature)
    assert data.ndf == 0.0
    assert data.max_hamming() == 0
    assert data.excursions(1) == []


def test_excursion_extraction():
    golden = Signature.from_pairs([(0b00, 0.5), (0b01, 0.5)])
    observed = Signature.from_pairs([(0b00, 0.4), (0b11, 0.6)])
    data = build_chronogram(observed, golden, num_points=1000)
    assert data.max_hamming() == 2
    bursts = data.excursions(2)
    assert len(bursts) == 1
    t0, t1 = bursts[0]
    assert t0 == pytest.approx(0.4, abs=0.01)
    assert t1 == pytest.approx(0.5, abs=0.01)


def test_paper_pair_has_hamming2_excursion(golden_signature,
                                           defective_signature):
    """Fig. 7 shows a Hamming-distance-2 event for the +10 % unit."""
    data = build_chronogram(defective_signature, golden_signature)
    assert data.max_hamming() == 2
    assert len(data.excursions(2)) >= 1


def test_skipped_zone_events(golden_signature, defective_signature):
    """The faulty trace reaches zones non-adjacent to the golden ones.

    The paper's instance of this event is code 62 vs the golden
    30 -> 28 -> 60 sequence; the reproduced stimulus produces the same
    *structure* (Hamming-2 skips between Fig. 6 zones) at its own
    crossing points.
    """
    from repro.paper import FIG6_ZONE_CODES
    events = skipped_zone_events(defective_signature, golden_signature)
    assert events
    assert all(e["hamming"] >= 2 for e in events)
    involved = {e["observed"] for e in events} | {e["golden"]
                                                  for e in events}
    assert involved <= set(FIG6_ZONE_CODES)


def test_ascii_chronogram_renders(golden_signature, defective_signature):
    data = build_chronogram(defective_signature, golden_signature,
                            num_points=500)
    art = ascii_chronogram(data, width=80, height=12)
    lines = art.split("\n")
    assert len(lines) == 14  # 12 plot rows + blank + hamming row
    assert "Hamming" in lines[-1]
