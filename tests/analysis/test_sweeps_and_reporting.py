"""Sweep drivers and report formatting."""

import numpy as np
import pytest

from repro.analysis import (
    Comparison,
    ascii_xy_plot,
    banner,
    catastrophic_coverage,
    close,
    comparison_table,
    deviation_sweep,
    format_table,
    noise_detection_study,
    process_variation_study,
)
from repro.core.decision import DecisionBand
from repro.core.testflow import SignatureTester
from repro.filters import BiquadFilter, TowThomasValues
from repro.devices.process import MonteCarloSampler
from repro.signals.noise import NoiseModel
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS


# ----------------------------------------------------------------------
# Sweeps
# ----------------------------------------------------------------------

def test_deviation_sweep_f0(setup):
    cal = deviation_sweep(setup.tester, setup.golden_spec,
                          [-0.1, -0.05, 0.0, 0.05, 0.1])
    assert cal.ndf_at(0.0) == pytest.approx(0.0, abs=1e-9)
    assert cal.ndf_at(0.1) > cal.ndf_at(0.05) > 0


def test_deviation_sweep_other_parameters(setup):
    cal_q = deviation_sweep(setup.tester, setup.golden_spec,
                            [-0.2, 0.0, 0.2], parameter="q")
    cal_g = deviation_sweep(setup.tester, setup.golden_spec,
                            [-0.2, 0.0, 0.2], parameter="gain")
    assert cal_q.ndf_at(0.2) > 0
    assert cal_g.ndf_at(0.2) > 0
    with pytest.raises(ValueError):
        deviation_sweep(setup.tester, setup.golden_spec, [0.0],
                        parameter="nope")


def test_noise_detection_study_rates():
    from repro.paper import noisy_paper_setup
    bench = noisy_paper_setup(samples_per_period=2048)
    study = noise_detection_study(
        bench.tester, bench.golden_spec, NoiseModel(0.015, rng=0),
        deviations=(-0.05, 0.05), repeats=6)
    rates = study.detection_rates()
    assert rates[0.05] == 1.0
    assert rates[-0.05] == 1.0
    assert study.false_alarm_rate() <= 0.2
    assert study.min_fully_detected() == pytest.approx(0.05)


def test_process_variation_study(bank, golden_filter):
    sampler = MonteCarloSampler(rng=0)

    def factory(encoder):
        return SignatureTester(encoder, PAPER_STIMULUS,
                               BiquadFilter(PAPER_BIQUAD),
                               samples_per_period=1024)

    values = process_variation_study(bank, factory, golden_filter,
                                     sampler, num_dies=4)
    assert values.shape == (4,)
    assert np.all(values >= 0)
    assert np.all(values < 0.1)  # monitor variation costs < 10 % NDF


def test_catastrophic_coverage(setup):
    values = TowThomasValues.from_spec(setup.golden_spec)
    band = DecisionBand(0.05)
    rows = catastrophic_coverage(setup.tester, values, band)
    assert len(rows) == 14
    detected = sum(r.detected for r in rows)
    assert detected >= 12  # opens/shorts are gross: nearly all caught


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def test_format_table_alignment():
    table = format_table(["a", "bb"], [[1, 2.5], ["xx", None]])
    lines = table.split("\n")
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "-" in lines[1]


def test_comparison_rows():
    comp = Comparison("NDF(+10%)", 0.1021, 0.0999, match=True)
    table = comparison_table([comp])
    assert "NDF(+10%)" in table
    assert "ok" in table
    bad = Comparison("zones", 16, 12, match=False)
    assert "DIFFERS" in comparison_table([bad])


def test_ascii_xy_plot():
    x = np.linspace(0, 1, 50)
    art = ascii_xy_plot(x, x ** 2, width=40, height=10)
    lines = art.split("\n")
    assert len(lines) == 11
    assert "*" in art
    assert "x:" in lines[-1]


def test_ascii_xy_plot_empty():
    assert "no finite data" in ascii_xy_plot(np.array([np.nan]),
                                             np.array([np.nan]))


def test_banner():
    art = banner("Fig. 8")
    assert art.count("\n") == 2
    assert "Fig. 8" in art


def test_close_tolerance():
    assert close(0.0999, 0.1021)
    assert not close(0.2, 0.1021)
    assert close(0.001, 0.0, abs_tol=0.01)
