"""NDF response surface over the (f0, Q) plane."""

import numpy as np
import pytest

from repro.analysis import ndf_surface
from repro.filters.biquad import BiquadFilter
from repro.paper import PAPER_BIQUAD, paper_setup


@pytest.fixture(scope="module")
def surface():
    bench = paper_setup(samples_per_period=1024)
    return ndf_surface(bench.tester, PAPER_BIQUAD,
                       f0_deviations=np.linspace(-0.1, 0.1, 5),
                       q_deviations=np.linspace(-0.2, 0.2, 5))


def test_surface_shape(surface):
    assert surface.ndf.shape == (5, 5)
    assert np.all(surface.ndf >= 0)


def test_zero_at_origin(surface):
    i = np.argmin(np.abs(surface.q_deviations))
    j = np.argmin(np.abs(surface.f0_deviations))
    assert surface.ndf[i, j] == pytest.approx(0.0, abs=1e-9)


def test_f0_profile_matches_fig8_shape(surface):
    profile = surface.f0_only_profile()
    # Monotone rise away from the centre.
    centre = len(profile) // 2
    assert np.all(np.diff(profile[centre:]) > 0)
    assert np.all(np.diff(profile[:centre + 1]) < 0)


def test_q_sensitivity_per_unit_deviation_is_weaker(surface):
    """Per unit of relative deviation, f0 moves the NDF ~3x harder
    than Q on this bench (the Fig. 8 instrument primarily verifies f0)."""
    q_range = float(np.max(np.abs(surface.q_deviations)))
    f_range = float(np.max(np.abs(surface.f0_deviations)))
    q_slope = float(np.max(surface.q_only_profile())) / q_range
    f_slope = float(np.max(surface.f0_only_profile())) / f_range
    assert q_slope < 0.55 * f_slope


def test_interpolation(surface):
    exact = surface.ndf[2, 3]
    got = surface.at(float(surface.f0_deviations[3]),
                     float(surface.q_deviations[2]))
    assert got == pytest.approx(exact, abs=1e-12)


def test_acceptance_region_shrinks_with_threshold(surface):
    loose = surface.accepted_fraction(0.10)
    tight = surface.accepted_fraction(0.02)
    assert 0.0 < tight < loose <= 1.0


def test_ambiguity_index(surface):
    """An NDF level is realized along a contour, not a point."""
    level = surface.at(0.05, 0.0)
    index = surface.ambiguity_index(level, tolerance=0.3)
    assert 0.0 < index <= 1.5


def test_custom_cut_factory():
    bench = paper_setup(samples_per_period=1024)
    calls = []

    def factory(f0_dev, q_dev):
        calls.append((f0_dev, q_dev))
        return BiquadFilter(PAPER_BIQUAD.with_f0_deviation(f0_dev))

    ndf_surface(bench.tester, PAPER_BIQUAD, [0.0, 0.05], [0.0],
                cut_factory=factory)
    assert calls == [(0.0, 0.0), (0.05, 0.0)]
