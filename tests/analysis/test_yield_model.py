"""Yield / escape analysis over a process-spread CUT population."""

import numpy as np
import pytest

from repro.analysis import (
    CutPopulation,
    CutUnit,
    optimal_threshold,
    roc_curve,
    yield_escape_analysis,
)


def synthetic_units():
    """Hand-built population: NDF = |deviation| exactly."""
    deviations = [-0.08, -0.06, -0.04, -0.02, 0.0, 0.02, 0.04, 0.06,
                  0.08]
    return [CutUnit(d, abs(d)) for d in deviations]


def test_cut_unit_ground_truth():
    unit = CutUnit(0.04, 0.04)
    assert unit.is_good(0.05)
    assert not unit.is_good(0.03)


def test_confusion_matrix_counts():
    units = synthetic_units()
    report = yield_escape_analysis(units, threshold=0.05,
                                   tolerance=0.05)
    # Good units (|d| <= 0.05): -0.04 .. 0.04 -> five of them; all pass
    # the 0.05 threshold.  Bad units (|d| = 0.06, 0.08) all fail.
    assert report.true_pass == 5
    assert report.true_fail == 4
    assert report.yield_loss == 0
    assert report.escapes == 0
    assert report.total == len(units)


def test_mismatched_threshold_produces_overkill_and_escapes():
    units = synthetic_units()
    tight = yield_escape_analysis(units, threshold=0.03, tolerance=0.05)
    assert tight.yield_loss == 2  # the |d| = 0.04 good units fail
    assert tight.escapes == 0
    loose = yield_escape_analysis(units, threshold=0.07, tolerance=0.05)
    assert loose.escapes == 2  # the |d| = 0.06 bad units pass
    assert loose.yield_loss == 0
    assert tight.yield_loss_rate > 0
    assert loose.escape_rate > 0


def test_roc_is_monotone():
    units = synthetic_units()
    reports = roc_curve(units, tolerance=0.05)
    escapes = [r.escapes for r in reports]
    losses = [r.yield_loss for r in reports]
    # Raising the threshold can only add escapes and remove overkill.
    assert all(a <= b for a, b in zip(escapes, escapes[1:]))
    assert all(a >= b for a, b in zip(losses, losses[1:]))


def test_optimal_threshold_balances_costs():
    units = synthetic_units()
    exact = optimal_threshold(units, tolerance=0.05, escape_cost=10.0)
    # With NDF == |d| a perfect threshold exists: no errors at all.
    assert exact.escapes == 0
    assert exact.yield_loss == 0


def test_optimal_threshold_prefers_overkill_when_escapes_cost_more():
    # Distorted population where NDF ordering is imperfect.
    units = [CutUnit(0.0, 0.00), CutUnit(0.02, 0.02),
             CutUnit(0.06, 0.04),   # bad unit with low NDF
             CutUnit(0.04, 0.05),   # good unit with high NDF
             CutUnit(0.08, 0.09)]
    cheap_escapes = optimal_threshold(units, 0.05, escape_cost=0.5)
    dear_escapes = optimal_threshold(units, 0.05, escape_cost=100.0)
    assert dear_escapes.escapes <= cheap_escapes.escapes
    assert dear_escapes.threshold <= cheap_escapes.threshold


def test_population_statistics():
    from repro.paper import PAPER_BIQUAD
    population = CutPopulation(PAPER_BIQUAD, sigma_f0=0.03, rng=0)
    deviations = population.draw_deviations(4000)
    assert np.mean(deviations) == pytest.approx(0.0, abs=3e-3)
    assert np.std(deviations) == pytest.approx(0.03, rel=0.1)


def test_population_measurement(setup):
    population = CutPopulation(setup.golden_spec, sigma_f0=0.03, rng=1)
    units = population.measure(setup.tester, count=6)
    assert len(units) == 6
    for unit in units:
        # NDF tracks |deviation| along the Fig. 8 line (~1.0 slope).
        assert unit.ndf == pytest.approx(abs(unit.f0_deviation),
                                         abs=0.02)
