"""Table I bank and the Fig. 6 zone map (the paper's key code census)."""

import pytest

from repro.core.zones import hamming_distance
from repro.monitor import table1_bank, table1_config
from repro.paper import FIG6_ZONE_CODES


def test_table1_rows_exist():
    for row in range(1, 7):
        config = table1_config(row)
        assert config.name == f"curve{row}"
        assert len(config.widths_nm) == 4
    with pytest.raises(ValueError):
        table1_config(0)
    with pytest.raises(ValueError):
        table1_config(7)


def test_table1_widths_match_paper():
    assert table1_config(1).widths_nm == (3000.0, 600.0, 600.0, 3000.0)
    assert table1_config(3).widths_nm == (1800.0,) * 4


def test_table1_hookups_match_paper():
    assert table1_config(1).hookups == ("y", 0.2, "x", 0.6)
    assert table1_config(2).hookups == (0.6, "y", 0.2, "x")
    assert table1_config(6).hookups == ("y", 0.0, "x", 0.0)


def test_bank_order_is_msb_first(encoder):
    assert [b.name for b in encoder.boundaries] == [
        f"curve{i}" for i in range(1, 7)]
    assert encoder.num_bits == 6


def test_origin_zone_is_all_zeros(encoder):
    assert encoder.origin_zone() == 0


def test_fig6_spot_codes(encoder):
    """Points read off Fig. 6 must carry the printed codes."""
    assert encoder.code_string(encoder.code(0.45, 0.25)) == "000100"
    assert encoder.code_string(encoder.code(0.25, 0.45)) == "000101"
    assert encoder.code_string(encoder.code(0.20, 0.30)) == "000001"
    assert encoder.code_string(encoder.code(0.60, 0.30)) == "000100"
    assert encoder.code(0.05, 0.02) == 0
    assert encoder.code(0.98, 0.99) == 63


def test_zone_census_is_exactly_fig6(encoder):
    """The realized zones on the 0-1 V window are the paper's sixteen."""
    census = encoder.zone_census(grid=256)
    assert set(census) == set(FIG6_ZONE_CODES)


def test_adjacent_zones_differ_in_one_bit(encoder):
    report = encoder.adjacency_report(grid=256)
    assert report.is_gray
    # All one-bit pairs dominate; point contacts only at intersections.
    one_bit = [p for p in report.pairs if hamming_distance(*p) == 1]
    assert len(one_bit) >= 15


def test_partial_bank(encoder):
    bank = table1_bank(rows=[3, 6])
    assert len(bank) == 2
    assert bank[0].name == "curve3"


def test_ascii_zone_map(encoder):
    art = encoder.ascii_zone_map(width=32, height=16)
    lines = art.split("\n")
    assert len(lines) == 16
    assert len(set("".join(lines))) > 4  # several distinct zones visible
