"""Transistor-level Fig. 2 monitor vs the analytic current balance."""

import pytest

from repro.monitor import (
    TransistorMonitor,
    locus_rms_difference,
    table1_config,
    table1_monitor,
)


@pytest.fixture(scope="module")
def xtor3():
    return TransistorMonitor(table1_config(3))


def test_feedback_weaker_than_load_enforced():
    with pytest.raises(ValueError, match="hysteresis"):
        TransistorMonitor(table1_config(3), load_width_nm=1000.0,
                          feedback_width_nm=2000.0)


def test_outputs_within_rails(xtor3):
    v1, v2 = xtor3.solve_outputs(0.3, 0.7)
    assert 0.0 <= v1 <= 1.2
    assert 0.0 <= v2 <= 1.2


def test_differential_output_sign_tracks_balance(xtor3):
    """More left-branch drive pulls out1 low: decision > 0."""
    analytic = table1_monitor(3)
    # Point clearly outside the arc: left branch (x, y inputs) wins.
    assert analytic.decision(0.9, 0.9) > 0
    assert xtor3.decision(0.9, 0.9) > 0
    # Point near the origin: right branch (DC biases) wins.
    assert analytic.decision(0.1, 0.1) < 0
    assert xtor3.decision(0.1, 0.1) < 0


def test_bits_agree_with_analytic_away_from_boundary(xtor3):
    analytic = table1_monitor(3)
    for x, y in [(0.1, 0.1), (0.9, 0.8), (0.2, 0.9), (0.8, 0.15),
                 (0.5, 0.5)]:
        if abs(analytic.decision(x, y)) < 0.2 * abs(
                analytic.decision(1.0, 1.0)):
            continue  # skip points too close to the trip locus
        assert xtor3.bit(x, y) == analytic.bit(x, y), (x, y)


def test_digital_output_is_bit(xtor3):
    assert xtor3.digital_output(0.9, 0.9) in (0, 1)
    assert xtor3.digital_output(0.9, 0.9) == xtor3.bit(0.9, 0.9)


@pytest.mark.slow
def test_locus_agreement_with_analytic(xtor3):
    """The simulated trip locus tracks the current balance closely."""
    rms = locus_rms_difference(table1_monitor(3), xtor3, points=9)
    assert rms < 0.03  # tens of millivolts: CLM/load residual only
