"""Analytic monitor: boundary physics, Table I behaviour, variations."""

import numpy as np
import pytest

from repro.devices import NMOS_65NM
from repro.devices.process import DeviceVariation, MonteCarloSampler
from repro.monitor import MonitorConfig, table1_monitor


def test_config_validation():
    with pytest.raises(ValueError):
        MonitorConfig((1.0, 1.0, 1.0), ("x", "y", 0.5, 0.5))  # 3 widths
    with pytest.raises(ValueError):
        MonitorConfig((1.0,) * 4, ("x", 0.1, 0.2, 0.3))  # no y
    with pytest.raises(ValueError):
        MonitorConfig((1.0,) * 4, ("x", "y", "z", 0.3))  # bad hookup


def test_branch_currents_balance_on_boundary():
    monitor = table1_monitor(3)
    xs = np.linspace(0.0, 1.0, 101)
    ys = monitor.locus_points(xs)
    valid = ~np.isnan(ys)
    assert np.count_nonzero(valid) > 10
    left, right = monitor.branch_currents(xs[valid], ys[valid])
    np.testing.assert_allclose(left, right, rtol=1e-6)


def test_curve3_is_circular_arc_in_strong_inversion():
    """Equal widths, V3=V4=0.55: locus ~ circle centred at (VT, VT)."""
    monitor = table1_monitor(3)
    xs = np.linspace(0.45, 0.6, 21)  # segment well above threshold
    ys = monitor.locus_points(xs)
    valid = ~np.isnan(ys)
    vt = NMOS_65NM.vt0
    radii = np.hypot(xs[valid] - vt, ys[valid] - vt)
    expected = np.sqrt(2.0) * (0.55 - vt)
    np.testing.assert_allclose(radii, expected, rtol=0.05)


def test_curve6_is_diagonal():
    monitor = table1_monitor(6)
    for v in (0.3, 0.5, 0.7, 0.9):
        assert monitor.decision(v, v) == pytest.approx(0.0, abs=1e-12)
    # Origin side is below the diagonal (bit 0 below, 1 above).
    assert monitor.bit(0.6, 0.4) == 0
    assert monitor.bit(0.4, 0.6) == 1


def test_curve1_positive_slope_segment():
    monitor = table1_monitor(1)
    xs = np.linspace(0.0, 1.0, 101)
    ys = monitor.locus_points(xs)
    valid = ~np.isnan(ys)
    slopes = np.diff(ys[valid]) / np.diff(xs[valid])
    assert np.all(slopes > -1e-9)


def test_curves_3_4_5_ordered_by_bias():
    """Higher DC bias pushes the arc away from the origin.

    Probed at x = 0.25 V where all three arcs cross the window (the
    subthreshold-limited curve 4 exists only at small inputs).
    """
    heights = {}
    for row in (4, 3, 5):  # biases 0.3, 0.55, 0.75
        monitor = table1_monitor(row)
        ys = monitor.locus_points(np.array([0.25]))
        heights[row] = ys[0]
    assert not any(np.isnan(h) for h in heights.values())
    assert heights[4] < heights[3] < heights[5]


def test_origin_bit_is_zero_for_all_rows():
    for row in range(1, 7):
        assert table1_monitor(row).bit(0.0, 0.0) == 0


def test_bit_vectorized():
    monitor = table1_monitor(3)
    xs = np.array([0.1, 0.9])
    ys = np.array([0.1, 0.9])
    bits = monitor.bit(xs, ys)
    assert bits.tolist() == [0, 1]


def test_variation_moves_boundary():
    monitor = table1_monitor(3)
    varied = monitor.with_variations(
        [DeviceVariation(delta_vt=0.03)] * 2 + [DeviceVariation()] * 2)
    xs = np.linspace(0.3, 0.7, 11)
    y0 = monitor.locus_points(xs)
    y1 = varied.locus_points(xs)
    both = ~np.isnan(y0) & ~np.isnan(y1)
    assert np.any(both)
    # Left devices weakened (higher VT): boundary must move.
    assert np.max(np.abs(y0[both] - y1[both])) > 1e-3


def test_variation_list_length_checked():
    monitor = table1_monitor(3)
    with pytest.raises(ValueError):
        monitor.with_variations([DeviceVariation()])


def test_with_die_uses_shared_process_shift():
    monitor = table1_monitor(3)
    sampler = MonteCarloSampler(rng=0, include_mismatch=False)
    die = sampler.sample_die()
    varied = monitor.with_die(die)
    # Without mismatch, all four devices carry the same global shift.
    vts = {dev.params.vt0 for dev in varied.devices}
    assert len(vts) == 1
    assert vts.pop() == pytest.approx(
        NMOS_65NM.vt0 + die.nmos_global.delta_vt)


def test_symmetric_config_symmetric_boundary():
    """Row 3 swaps x/y symmetrically: locus mirrors across y = x."""
    monitor = table1_monitor(3)
    g1 = monitor.decision(0.3, 0.6)
    g2 = monitor.decision(0.6, 0.3)
    assert g1 == pytest.approx(g2, rel=1e-12)
