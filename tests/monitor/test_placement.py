"""Bias placement optimization of the monitor bank."""

import numpy as np
import pytest

from repro.core.testflow import SignatureTester
from repro.filters.biquad import BiquadFilter
from repro.monitor import (
    BiasPlacementOptimizer,
    apply_biases,
    distinct_bias_values,
    table1_config,
)
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS


def test_distinct_bias_values():
    assert distinct_bias_values(table1_config(1)) == [0.2, 0.6]
    assert distinct_bias_values(table1_config(3)) == [0.55]
    assert distinct_bias_values(table1_config(6)) == [0.0]


def test_apply_biases_preserves_sharing():
    config = table1_config(3)  # V3 = V4 = 0.55
    moved = apply_biases(config, [0.6])
    assert moved.hookups == ("y", "x", 0.6, 0.6)
    assert moved.widths_nm == config.widths_nm


def test_apply_biases_validates_count():
    with pytest.raises(ValueError):
        apply_biases(table1_config(1), [0.5])  # needs two values


def _tester_factory(encoder):
    return SignatureTester(encoder, PAPER_STIMULUS,
                           BiquadFilter(PAPER_BIQUAD),
                           samples_per_period=1024)


def _cut_factory(dev):
    return BiquadFilter(PAPER_BIQUAD.with_f0_deviation(dev))


@pytest.fixture(scope="module")
def optimizer():
    # Optimize only the three symmetric arcs: cheap and effective.
    configs = [table1_config(r) for r in (3, 4, 5)]
    return BiasPlacementOptimizer(configs, _tester_factory,
                                  _cut_factory, target_deviation=0.05)


def test_initial_vector_layout(optimizer):
    np.testing.assert_allclose(optimizer.initial_vector(),
                               [0.55, 0.3, 0.75])


def test_objective_positive_at_start(optimizer):
    assert optimizer.objective(optimizer.initial_vector()) > 0.0


def test_objective_rejects_out_of_bounds(optimizer):
    assert optimizer.objective(np.array([0.55, 0.3, 1.5])) == 0.0


@pytest.mark.slow
def test_optimization_does_not_regress(optimizer):
    result = optimizer.optimize(max_iterations=15)
    assert result.optimized_objective >= result.initial_objective
    assert len(result.configs) == 3
    # All biases still inside the window.
    for config in result.configs:
        for value in distinct_bias_values(config):
            assert 0.1 <= value <= 0.9
