"""Locus extraction descriptors (Fig. 4) and Monte Carlo envelopes."""

import numpy as np
import pytest

from repro.devices.process import MonteCarloSampler
from repro.monitor import (
    boundary_spread,
    bank_samples,
    characterize,
    diagonal_deviation,
    extract_locus,
    locus_rms_difference,
    table1_bank,
    table1_monitor,
)


def test_curves_1_2_positive_slope():
    for row in (1, 2):
        ch = characterize(table1_monitor(row))
        assert ch.slope_sign == +1, f"curve {row} must rise"


def test_curves_3_4_5_negative_slope():
    for row in (3, 4, 5):
        ch = characterize(table1_monitor(row))
        assert ch.slope_sign == -1, f"curve {row} must fall"


def test_curve6_is_45_degrees():
    ch = characterize(table1_monitor(6))
    assert ch.mean_slope == pytest.approx(1.0, abs=0.05)
    assert diagonal_deviation(table1_monitor(6)) < 0.02


def test_straight_line_has_no_curvature():
    """Curve 6 is straight; arcs 3-5 carry visible curvature."""
    straight = characterize(table1_monitor(6))
    arc = characterize(table1_monitor(3))
    assert arc.curvature_rms > 10 * max(straight.curvature_rms, 1e-9)


def test_coverage_and_crossings():
    ch = characterize(table1_monitor(3))
    assert ch.coverage > 0.2
    mid = ch.crossing_at(0.42)
    assert 0.3 < mid < 0.8


def test_extract_locus_matches_decision_zero():
    monitor = table1_monitor(5)
    xs, ys = extract_locus(monitor, points=41)
    valid = ~np.isnan(ys)
    g = monitor.decision(xs[valid], ys[valid])
    scale = abs(monitor.decision(1.0, 1.0))
    assert np.max(np.abs(g)) < 1e-6 * scale


def test_locus_rms_difference_self_is_zero():
    m = table1_monitor(3)
    assert locus_rms_difference(m, m) == pytest.approx(0.0, abs=1e-9)


# ----------------------------------------------------------------------
# Monte Carlo
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def spread():
    sampler = MonteCarloSampler(rng=0)
    return boundary_spread(table1_monitor(3), sampler, num_dies=30,
                           points=41)


def test_envelope_contains_nominal(spread):
    assert spread.contains(spread.nominal)


def test_envelope_width_is_reasonable(spread):
    width = spread.max_spread()
    assert 0.005 < width < 0.3  # tens of millivolts of 3-sigma spread


def test_fresh_die_falls_inside_envelope(spread):
    sampler = MonteCarloSampler(rng=999)
    die = sampler.sample_die()
    varied = table1_monitor(3).with_die(die)
    ys = varied.locus_points(spread.xs)
    assert spread.contains(ys, fraction=0.9)


def test_spread_shrinks_with_device_area():
    """Pelgrom: quadrupling W must roughly halve the mismatch spread."""
    sampler_small = MonteCarloSampler(rng=1, include_process=False)
    sampler_big = MonteCarloSampler(rng=1, include_process=False)
    small = boundary_spread(table1_monitor(3), sampler_small,
                            num_dies=40, points=21)
    from repro.monitor import MonitorBoundary
    big_config = table1_monitor(3).config
    big = boundary_spread(
        MonitorBoundary(
            type(big_config)(tuple(w * 4 for w in big_config.widths_nm),
                             big_config.hookups,
                             length_nm=big_config.length_nm,
                             name=big_config.name,
                             reference_point=big_config.reference_point)),
        sampler_big, num_dies=40, points=21)
    s_small = np.nanmedian(small.sigma)
    s_big = np.nanmedian(big.sigma)
    assert s_big < 0.7 * s_small


def test_bank_samples_share_process_shift():
    sampler = MonteCarloSampler(rng=2, include_mismatch=False)
    banks = bank_samples(table1_bank(), sampler, num_dies=2)
    assert len(banks) == 2
    # Within one die every (equal-nominal) device sees the same shift.
    die0_vts = {dev.params.vt0 for m in banks[0] for dev in m.devices}
    assert len(die0_vts) == 1
    die1_vts = {dev.params.vt0 for m in banks[1] for dev in m.devices}
    assert die0_vts != die1_vts
