"""Token-bucket rate limiting with a deterministic fake clock."""

import pytest

from repro.service import RateLimiter, TokenBucket


class FakeClock:
    """Manually advanced monotonic clock."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_bucket_burst_then_refill():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=3.0, clock=clock)
    assert [bucket.try_acquire() for _ in range(4)] \
        == [True, True, True, False]
    # 2 tokens/s: after 0.5 s exactly one token is back.
    clock.advance(0.5)
    assert bucket.try_acquire()
    assert not bucket.try_acquire()


def test_bucket_never_exceeds_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    clock.advance(100.0)
    assert bucket.tokens == pytest.approx(2.0)


def test_bucket_retry_after_hint():
    clock = FakeClock()
    bucket = TokenBucket(rate=4.0, burst=1.0, clock=clock)
    assert bucket.try_acquire()
    # Empty; one token takes 1/4 s at 4 tokens/s.
    assert bucket.retry_after() == pytest.approx(0.25)
    clock.advance(0.25)
    assert bucket.retry_after() == pytest.approx(0.0)


def test_bucket_rejects_bad_parameters():
    with pytest.raises(ValueError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(ValueError):
        TokenBucket(rate=1.0, burst=0.0)


def test_limiter_disabled_admits_everything():
    limiter = RateLimiter(rate=None)
    assert not limiter.enabled
    for _ in range(100):
        admitted, retry = limiter.allow("anyone")
        assert admitted and retry == 0.0
    assert limiter.active_clients == 0


def test_limiter_isolates_clients():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock)
    assert limiter.allow("a") == (True, 0.0)
    admitted, retry = limiter.allow("a")
    assert not admitted and retry == pytest.approx(1.0)
    # Client b has its own untouched bucket.
    assert limiter.allow("b") == (True, 0.0)
    assert limiter.active_clients == 2


def test_limiter_refills_per_client():
    clock = FakeClock()
    limiter = RateLimiter(rate=2.0, burst=2.0, clock=clock)
    assert limiter.allow("a")[0]
    assert limiter.allow("a")[0]
    assert not limiter.allow("a")[0]
    clock.advance(0.5)
    assert limiter.allow("a")[0]


def test_limiter_prunes_full_buckets():
    clock = FakeClock()
    limiter = RateLimiter(rate=1.0, burst=1.0, clock=clock,
                          prune_threshold=4)
    for i in range(5):
        limiter.allow(f"client{i}")
    # All five buckets are empty, so nothing can be pruned yet.
    assert limiter.active_clients == 5
    clock.advance(10.0)
    limiter.allow("trigger")
    # The refilled (full) buckets dropped; only the one the trigger
    # request just drained survives.
    assert limiter.active_clients == 1


def test_limiter_burst_defaults_to_rate():
    limiter = RateLimiter(rate=7.0)
    assert limiter.burst == 7.0
