"""Coalescing batcher: packed passes, slices bit-identical to solo."""

import threading

import numpy as np
import pytest

from repro.campaign import (
    ScreeningRequest,
    deviation_sweep_population,
    montecarlo_dies,
    trace_population,
)
from repro.service import (
    CoalescingBatcher,
    MetricsRegistry,
    ScreeningSession,
    concatenate_populations,
)

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def session():
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES)
    session.warm(dictionary=False)
    return session


@pytest.fixture()
def batcher(session):
    batcher = CoalescingBatcher(session, window=0.02)
    yield batcher
    batcher.close()


def _lots(golden_spec, seeds=(0, 1, 2), dies=5):
    return [montecarlo_dies(golden_spec, dies, sigma_f0=0.05,
                            seed=seed) for seed in seeds]


def test_concatenate_populations_preserves_rows(golden_spec):
    lots = _lots(golden_spec, seeds=(3, 4))
    combined = concatenate_populations(lots)
    assert len(combined) == sum(len(lot) for lot in lots)
    assert combined.labels == lots[0].labels + lots[1].labels
    np.testing.assert_array_equal(
        combined.f0_deviations,
        np.concatenate([lot.f0_deviations for lot in lots]))
    assert combined.specs == lots[0].specs + lots[1].specs


def test_concurrent_slices_match_solo_runs(session):
    """The tentpole contract: a client's coalesced slice is

    bit-identical to running its lot alone."""
    lots = _lots(session.engine.config.golden_spec, seeds=(0, 1, 2, 3))
    solo = [session.submit(ScreeningRequest(population=lot))
            for lot in lots]

    metrics = MetricsRegistry()
    batcher = CoalescingBatcher(session, window=0.1, metrics=metrics)
    try:
        results = [None] * len(lots)
        barrier = threading.Barrier(len(lots))

        def work(i, lot):
            barrier.wait()
            results[i] = batcher.submit(
                ScreeningRequest(population=lot))

        threads = [threading.Thread(target=work, args=(i, lot))
                   for i, lot in enumerate(lots)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        batcher.close()

    for reference, sliced in zip(solo, results):
        np.testing.assert_array_equal(reference.ndfs, sliced.ndfs)
        np.testing.assert_array_equal(reference.verdicts,
                                      sliced.verdicts)
        np.testing.assert_array_equal(reference.f0_deviations,
                                      sliced.f0_deviations)
        assert reference.labels == sliced.labels
        assert reference.threshold == sliced.threshold
    # The four requests actually shared passes: every flush recorded
    # its request count, and they sum to the four submissions.
    snap = metrics.snapshot()["windows"]
    coalesced = snap["coalesced_requests"]
    assert coalesced["sum"] == len(lots)
    assert coalesced["count"] <= len(lots)
    assert snap["coalesced_dies"]["sum"] == sum(len(lot)
                                                for lot in lots)


def test_flush_groups_and_slices_directly(session):
    """Deterministic path: _flush on a hand-built batch coalesces

    compatible requests into one pass and scatters exact slices."""
    from repro.service.batcher import _Pending

    lots = _lots(session.engine.config.golden_spec, seeds=(5, 6))
    solo = [session.submit(ScreeningRequest(population=lot))
            for lot in lots]
    metrics = MetricsRegistry()
    batcher = CoalescingBatcher(session, window=0.0, metrics=metrics)
    try:
        pendings = [_Pending(ScreeningRequest(population=lot), lot)
                    for lot in lots]
        batcher._flush(pendings)
        for pending in pendings:
            assert pending.done.is_set()
            assert pending.error is None
        for reference, pending in zip(solo, pendings):
            np.testing.assert_array_equal(reference.ndfs,
                                          pending.result.ndfs)
            np.testing.assert_array_equal(reference.verdicts,
                                          pending.result.verdicts)
        # One combined pass for the whole batch.
        window = metrics.snapshot()["windows"]["coalesced_requests"]
        assert window["count"] == 1
        assert window["last"] == 2
    finally:
        batcher.close()


def test_incompatible_bands_split_groups(session):
    """Different explicit thresholds cannot share a pass."""
    from repro.service.batcher import _Pending

    lot = _lots(session.engine.config.golden_spec, seeds=(7,))[0]
    loose = ScreeningRequest(population=lot, band=0.5)
    tight = ScreeningRequest(population=lot, band=0.001)
    metrics = MetricsRegistry()
    batcher = CoalescingBatcher(session, window=0.0, metrics=metrics)
    try:
        pendings = [_Pending(loose, lot), _Pending(tight, lot)]
        batcher._flush(pendings)
        assert pendings[0].result.threshold == 0.5
        assert pendings[1].result.threshold == 0.001
        window = metrics.snapshot()["windows"]["coalesced_requests"]
        assert window["count"] == 2  # two passes, one per band
    finally:
        batcher.close()


def test_max_dies_splits_oversized_groups(session):
    from repro.service.batcher import _Pending

    lots = _lots(session.engine.config.golden_spec,
                 seeds=(8, 9, 10), dies=4)
    metrics = MetricsRegistry()
    batcher = CoalescingBatcher(session, window=0.0, max_dies=8,
                                metrics=metrics)
    try:
        pendings = [_Pending(ScreeningRequest(population=lot), lot)
                    for lot in lots]
        batcher._flush(pendings)
        window = metrics.snapshot()["windows"]["coalesced_dies"]
        # 12 dies at a cap of 8: two passes (8 + 4).
        assert window["count"] == 2
        assert window["recent_max"] <= 8
        solo = session.submit(ScreeningRequest(population=lots[-1]))
        np.testing.assert_array_equal(solo.ndfs,
                                      pendings[-1].result.ndfs)
    finally:
        batcher.close()


def test_auto_band_and_equal_threshold_share_a_pass(session):
    """band='auto' resolves to the calibrated threshold, so it groups
    with requests pinning that same number explicitly."""
    from repro.service.batcher import _Pending

    threshold = session.threshold()
    lot = _lots(session.engine.config.golden_spec, seeds=(11,))[0]
    metrics = MetricsRegistry()
    batcher = CoalescingBatcher(session, window=0.0, metrics=metrics)
    try:
        pendings = [
            _Pending(ScreeningRequest(population=lot), lot),
            _Pending(ScreeningRequest(population=lot, band=threshold),
                     lot),
        ]
        batcher._flush(pendings)
        window = metrics.snapshot()["windows"]["coalesced_requests"]
        assert window["count"] == 1 and window["last"] == 2
        np.testing.assert_array_equal(pendings[0].result.ndfs,
                                      pendings[1].result.ndfs)
    finally:
        batcher.close()


def test_non_coalescible_requests_pass_through(session):
    """Streams, noise and trace stacks bypass the queue entirely."""
    batcher = CoalescingBatcher(session, window=10.0)  # long window:
    # a queued request would visibly hang; pass-through returns fast.
    try:
        lot = _lots(session.engine.config.golden_spec, seeds=(12,),
                    dies=2)[0]
        noise = batcher.submit(ScreeningRequest(
            population=lot, mode="noise", repeats=2))
        assert noise.ndf_matrix.shape == (2, 2)

        traces = session.engine.golden().y[None, :]
        result = batcher.submit(ScreeningRequest(
            population=trace_population(traces)))
        assert result.num_dies == 1
    finally:
        batcher.close()


def test_raw_spec_list_coalesces_with_solo_labels(session):
    golden_spec = session.engine.config.golden_spec
    specs = deviation_sweep_population(golden_spec, [-0.1, 0.1]).specs
    solo = session.submit(ScreeningRequest(population=list(specs)))
    batcher = CoalescingBatcher(session, window=0.0)
    try:
        sliced = batcher.submit(ScreeningRequest(
            population=list(specs)))
    finally:
        batcher.close()
    np.testing.assert_array_equal(solo.ndfs, sliced.ndfs)
    assert solo.labels == sliced.labels


def test_closed_batcher_rejects_submissions(session):
    batcher = CoalescingBatcher(session, window=0.0)
    batcher.close()
    lot = _lots(session.engine.config.golden_spec, seeds=(13,),
                dies=1)[0]
    with pytest.raises(RuntimeError):
        batcher.submit(ScreeningRequest(population=lot))


def test_group_error_propagates_to_every_member(session):
    from repro.service.batcher import _Pending

    lot = _lots(session.engine.config.golden_spec, seeds=(14,),
                dies=2)[0]
    batcher = CoalescingBatcher(session, window=0.0)
    try:
        bad = _Pending(ScreeningRequest(population=lot,
                                        band="not-a-band"), lot)
        batcher._flush([bad])
        assert bad.done.is_set()
        assert bad.error is not None
    finally:
        batcher.close()
