"""Span nesting under the coalescing batcher.

N concurrent compatible clients coalesce into ONE engine pass: the
trace must show exactly one ``batcher.flush`` span carrying all N
request ids, with one ``batcher.slice`` child per client and the
single ``session.submit``/``campaign.submit`` chain beneath it.
"""

import threading

import numpy as np
import pytest

from repro.campaign import ScreeningRequest, montecarlo_dies
from repro.obs import Tracer, install_tracer, new_request_id
from repro.service import CoalescingBatcher, ScreeningSession

pytestmark = pytest.mark.campaign

SAMPLES = 512
THRESHOLD = 0.05


@pytest.fixture(scope="module")
def session():
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES)
    session.warm(dictionary=False)
    return session


@pytest.fixture
def tracer():
    tracer = Tracer()
    previous = install_tracer(tracer)
    yield tracer
    install_tracer(previous)


def _lot(seed, dies=5):
    from repro.paper import PAPER_BIQUAD

    return montecarlo_dies(PAPER_BIQUAD, dies, sigma_f0=0.03,
                           seed=seed)


def test_concurrent_clients_one_flush_span_n_slices(session, tracer):
    clients = 3
    barrier = threading.Barrier(clients)
    batcher = CoalescingBatcher(session, window=0.2)
    rids = [new_request_id() for __ in range(clients)]
    results = {}

    def submit(index):
        request = ScreeningRequest(
            population=_lot(seed=index), band=THRESHOLD,
            client=f"client-{index}", request_id=rids[index])
        barrier.wait()
        results[index] = batcher.submit(request, timeout=30)

    try:
        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(clients)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        batcher.close()

    records = tracer.records()
    flushes = [r for r in records if r.name == "batcher.flush"]
    assert len(flushes) == 1, \
        "concurrent compatible lots must coalesce into one flush"
    flush = flushes[0]
    assert flush.attributes["clients"] == clients
    assert flush.attributes["dies"] == clients * 5
    assert sorted(flush.attributes["request_ids"]) == sorted(rids)

    slices = [r for r in records if r.name == "batcher.slice"]
    assert len(slices) == clients
    assert all(s.parent_id == flush.span_id for s in slices)
    assert sorted(s.attributes["request_id"] for s in slices) \
        == sorted(rids)
    assert sorted(s.attributes["client"] for s in slices) \
        == [f"client-{i}" for i in range(clients)]

    # Exactly one engine pass ran, nested under the flush.
    submits = [r for r in records if r.name == "session.submit"]
    assert len(submits) == 1
    assert submits[0].parent_id == flush.span_id
    engine = [r for r in records if r.name == "campaign.submit"]
    assert len(engine) == 1
    assert engine[0].parent_id == submits[0].span_id

    # And the coalesced slices really went back to the right clients.
    for index in range(clients):
        solo = session.submit(ScreeningRequest(
            population=_lot(seed=index), band=THRESHOLD))
        assert np.array_equal(results[index].ndfs, solo.ndfs)
        assert np.array_equal(results[index].verdicts, solo.verdicts)


def test_solo_flush_keeps_the_single_request_identity(session, tracer):
    batcher = CoalescingBatcher(session, window=0.0)
    rid = new_request_id()
    try:
        batcher.submit(ScreeningRequest(
            population=_lot(seed=42), band=THRESHOLD, client="solo",
            request_id=rid), timeout=30)
    finally:
        batcher.close()
    records = tracer.records()
    flush = next(r for r in records if r.name == "batcher.flush")
    assert flush.attributes["clients"] == 1
    assert flush.attributes["request_ids"] == [rid]
    # A solo group's packed pass keeps the requester's identity, so
    # the session span (and every engine stage under it) carries the
    # request id end to end.
    submit = next(r for r in records if r.name == "session.submit")
    assert submit.attributes["request_id"] == rid
    assert submit.attributes["client"] == "solo"
    stages = [r for r in records if r.name.startswith("stage.")]
    assert stages
    assert all(r.attributes.get("request_id") == rid for r in stages)


def test_non_coalescible_requests_bypass_the_flush_span(session,
                                                        tracer):
    batcher = CoalescingBatcher(session, window=0.0)
    rid = new_request_id()
    try:
        batcher.submit(ScreeningRequest(
            population=iter([_lot(seed=1)]), mode="stream",
            band=THRESHOLD, request_id=rid), timeout=None)
    finally:
        batcher.close()
    records = tracer.records()
    assert not any(r.name == "batcher.flush" for r in records)
    submit = next(r for r in records if r.name == "session.submit")
    assert submit.attributes["request_id"] == rid
