"""Session re-entrancy: concurrent submits == serial, bit for bit."""

import threading

import numpy as np
import pytest

from repro.campaign import ScreeningRequest, montecarlo_dies
from repro.service import MetricsRegistry, ScreeningSession

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def session():
    return ScreeningSession.from_paper(samples_per_period=SAMPLES)


def _lots(golden_spec, count=6, dies=8):
    """Distinct deterministic die-lots (different seeds)."""
    return [montecarlo_dies(golden_spec, dies, sigma_f0=0.05, seed=seed)
            for seed in range(count)]


def test_threads_match_serial_bit_for_bit(session):
    """N threads through one session == the serial reference."""
    lots = _lots(session.engine.config.golden_spec)
    serial = [session.submit(ScreeningRequest(population=lot))
              for lot in lots]

    concurrent = [None] * len(lots)
    errors = []

    def work(i, lot):
        try:
            concurrent[i] = session.submit(
                ScreeningRequest(population=lot))
        except BaseException as error:  # surfaced below
            errors.append(error)

    threads = [threading.Thread(target=work, args=(i, lot))
               for i, lot in enumerate(lots)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert not errors
    for reference, observed in zip(serial, concurrent):
        np.testing.assert_array_equal(reference.ndfs, observed.ndfs)
        np.testing.assert_array_equal(reference.verdicts,
                                      observed.verdicts)
        assert reference.threshold == observed.threshold
        assert reference.labels == observed.labels


def test_cold_cache_single_flight(golden_spec):
    """Racing first requests compute the golden artifacts once."""
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES)
    lot = montecarlo_dies(golden_spec, 4, sigma_f0=0.05, seed=1)
    results = [None] * 4
    barrier = threading.Barrier(4)

    def work(i):
        barrier.wait()
        results[i] = session.submit(ScreeningRequest(population=lot))

    threads = [threading.Thread(target=work, args=(i,))
               for i in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for observed in results[1:]:
        np.testing.assert_array_equal(results[0].ndfs, observed.ndfs)
    # Single-flight: the golden/band artifacts compiled exactly once
    # (hits for every request after the first).
    info = session.cache_info
    assert info.misses <= 3  # golden, band sweep, band
    assert info.hits > 0


def test_reentrancy_across_executors(session):
    """Threaded submits stay bit-identical under a pool executor."""
    from repro.campaign import CampaignEngine, ProcessPoolExecutor

    lots = _lots(session.engine.config.golden_spec, count=2, dies=6)
    serial = [session.submit(ScreeningRequest(population=lot))
              for lot in lots]
    executor = ProcessPoolExecutor(max_workers=2)
    try:
        pooled_session = ScreeningSession(CampaignEngine(
            session.engine.config, cache=session.engine.cache,
            executor=executor))
        observed = [None] * len(lots)

        def work(i, lot):
            observed[i] = pooled_session.submit(
                ScreeningRequest(population=lot))

        threads = [threading.Thread(target=work, args=(i, lot))
                   for i, lot in enumerate(lots)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    finally:
        executor.shutdown()
    for reference, pooled in zip(serial, observed):
        np.testing.assert_array_equal(reference.ndfs, pooled.ndfs)
        np.testing.assert_array_equal(reference.verdicts,
                                      pooled.verdicts)


def test_session_counts_and_metrics(golden_spec):
    metrics = MetricsRegistry()
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES,
                                          metrics=metrics)
    lot = montecarlo_dies(golden_spec, 3, sigma_f0=0.05, seed=9)
    session.submit(ScreeningRequest(population=lot))
    session.submit(ScreeningRequest(population=lot, mode="noise",
                                    repeats=2))
    assert session.submitted == 2
    snap = metrics.snapshot()
    assert snap["counters"]['session_requests_total{mode="run"}'] == 1
    assert snap["counters"]['session_requests_total{mode="noise"}'] == 1
    assert any(key.startswith("stage_seconds")
               for key in snap["windows"])


def test_warm_populates_cache(golden_spec):
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES)
    warmed = session.warm(dictionary=False)
    assert warmed == {"golden": True, "band": True,
                      "dictionary": False}
    info = session.cache_info
    assert info.size >= 2
    # A warmed submit never misses.
    misses_before = session.cache_info.misses
    lot = montecarlo_dies(golden_spec, 2, sigma_f0=0.05, seed=3)
    session.submit(ScreeningRequest(population=lot))
    assert session.cache_info.misses == misses_before


def test_threshold_shortcut(session):
    assert session.threshold() == session.engine.band().threshold
