"""Request-id propagation: client -> header -> server spans and logs.

One *logical* request keeps one id across every retry attempt, the
server echoes it back (header and body), spans and structured log
lines carry it, and an idempotent replay logs the id of the original
execution it was answered from.
"""

import io
import json
import threading
import time

import pytest

from repro.obs import (
    REQUEST_ID_HEADER,
    Tracer,
    install_tracer,
    set_log_sink,
)
from repro.service import (
    RetryPolicy,
    ScreeningSession,
    ServiceClient,
    ServiceUnavailable,
    build_server,
)
from repro.testing.faultinject import inject

pytestmark = pytest.mark.campaign

SAMPLES = 512


# ----------------------------------------------------------------------
# Client side, no sockets: the retry loop reuses one id
# ----------------------------------------------------------------------
class _FakeTransport:
    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []

    def __call__(self, path, payload, headers):
        self.calls.append((path, payload, dict(headers)))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _fake_client(outcomes):
    client = ServiceClient(
        "http://fake:1", client_id="t",
        retry=RetryPolicy(max_attempts=4, base_delay=0.001, jitter=0.0))
    client._sleep = lambda seconds: None
    transport = _FakeTransport(outcomes)
    client._request_once = transport
    return client, transport


def test_every_retry_attempt_replays_the_same_request_id():
    ok = json.dumps({"ok": True}).encode()
    client, transport = _fake_client(
        [ServiceUnavailable("reset"), ServiceUnavailable("reset"), ok])
    client.campaign(dies=1)
    assert len(transport.calls) == 3
    ids = [headers[REQUEST_ID_HEADER]
           for __, __, headers in transport.calls]
    assert len(set(ids)) == 1
    assert ids[0] == client.last_request_id


def test_each_logical_request_gets_a_fresh_id():
    ok = json.dumps({"ok": True}).encode()
    client, transport = _fake_client([ok, ok])
    client.campaign(dies=1)
    first = client.last_request_id
    client.campaign(dies=1)
    assert client.last_request_id != first
    ids = [headers[REQUEST_ID_HEADER]
           for __, __, headers in transport.calls]
    assert ids == [first, client.last_request_id]


def test_client_retry_events_are_logged_with_the_id():
    ok = json.dumps({"ok": True}).encode()
    client, __ = _fake_client([ServiceUnavailable("reset"), ok])
    sink = io.StringIO()
    previous = set_log_sink(sink)
    try:
        client.campaign(dies=1)
    finally:
        set_log_sink(previous)
    events = [json.loads(line) for line in
              sink.getvalue().splitlines()]
    retries = [e for e in events if e["event"] == "client.retry"]
    assert len(retries) == 1
    assert retries[0]["request_id"] == client.last_request_id
    assert retries[0]["attempt"] == 1


# ----------------------------------------------------------------------
# End to end: a real server, a forced retry, spans + logs join up
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def server():
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES)
    session.warm(dictionary=False)
    server = build_server(port=0, window=0.002, session=session)
    server.start()
    yield server
    server.close()


@pytest.fixture
def telemetry():
    """Capture spans and log lines for one test, then restore."""
    tracer = Tracer()
    previous_tracer = install_tracer(tracer)
    sink = io.StringIO()
    previous_sink = set_log_sink(sink)
    yield tracer, sink
    set_log_sink(previous_sink)
    install_tracer(previous_tracer)


def _events(sink):
    return [json.loads(line) for line in sink.getvalue().splitlines()]


def _await_access(sink, path, timeout=5.0):
    """Access lines land *after* the reply bytes (duration includes the
    write), so a fast client can read the sink before the handler
    thread logs -- poll briefly instead of racing it."""
    deadline = time.monotonic() + timeout
    while True:
        access = [e for e in _events(sink)
                  if e["event"] == "http.request"
                  and e["path"] == path]
        if access or time.monotonic() >= deadline:
            return access
        time.sleep(0.005)


def test_request_id_round_trips_through_the_server(server, telemetry):
    tracer, sink = telemetry
    client = ServiceClient(server.url, client_id="rid-test")
    body = client.campaign(kind="mc", dies=6, seed=3)
    rid = client.last_request_id
    assert body["request_id"] == rid
    # The access log line carries the client's id.
    access = _await_access(sink, "/campaign")
    assert access and access[-1]["request_id"] == rid
    assert access[-1]["status"] == 200
    assert access[-1]["duration_ms"] > 0
    assert access[-1]["client"] == "rid-test"
    # Server-side spans carry it too, down through the engine stages.
    tagged = {r.name for r in tracer.records()
              if r.attributes.get("request_id") == rid}
    assert "http.request" in tagged
    assert "session.submit" in tagged
    assert any(name.startswith("stage.") for name in tagged)
    flushes = [r for r in tracer.records()
               if r.name == "batcher.flush"
               and rid in r.attributes.get("request_ids", [])]
    assert len(flushes) == 1


def test_request_id_survives_a_forced_retry_and_replay(server,
                                                       telemetry):
    __, sink = telemetry
    client = ServiceClient(
        server.url, client_id="retry-test",
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0))
    # First attempt executes, then the handler dies before answering;
    # the retry replays the same request id AND idempotency key, and
    # is answered from the original execution's cache.
    with inject("server.handler.close", times=1) as fault:
        body = client.campaign(kind="mc", dies=5, seed=9)
        assert fault.fired == 1
    rid = client.last_request_id
    assert body["request_id"] == rid
    events = _events(sink)
    retries = [e for e in events if e["event"] == "client.retry"]
    assert [e["request_id"] for e in retries] == [rid]
    replays = [e for e in events if e["event"] == "idempotent.replay"]
    assert len(replays) == 1
    # The replay log line joins this retry to the execution that
    # actually ran -- which carried the same logical request id.
    assert replays[0]["original_request_id"] == rid
    assert replays[0]["request_id"] == rid


def test_server_mints_an_id_when_the_client_sends_none(server,
                                                       telemetry):
    __, sink = telemetry
    import urllib.request

    request = urllib.request.Request(server.url + "/healthz")
    with urllib.request.urlopen(request, timeout=30) as response:
        echoed = response.headers.get(REQUEST_ID_HEADER)
    assert echoed  # server-minted, echoed back
    access = _await_access(sink, "/healthz")
    assert access and access[-1]["request_id"] == echoed


def test_healthz_reports_uptime_inflight_and_last_error(server):
    client = ServiceClient(server.url, client_id="health-test")
    body = client.healthz()
    assert body["uptime_seconds"] >= 0
    assert body["inflight"] == 0
    first_error = body["last_error"]
    with inject("server.handler.error", times=1):
        with pytest.raises(Exception):
            client.campaign(kind="mc", dies=1)
    body = client.healthz()
    assert body["last_error"] is not None
    assert body["last_error"] != first_error
    assert body["last_error"] <= __import__("time").time()


def test_concurrent_requests_keep_their_own_ids(server, telemetry):
    __, sink = telemetry
    rids = {}

    def call(seed):
        client = ServiceClient(server.url, client_id=f"c{seed}")
        body = client.campaign(kind="mc", dies=4, seed=seed)
        rids[client.last_request_id] = body["request_id"]

    threads = [threading.Thread(target=call, args=(seed,))
               for seed in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(rids) == 4
    assert all(sent == echoed for sent, echoed in rids.items())
