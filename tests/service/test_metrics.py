"""Metrics registry: counters, gauges, windows, render stability."""

import threading

import pytest

from repro.service import MetricsRegistry, timed


def test_counter_get_or_create_and_labels():
    registry = MetricsRegistry()
    a = registry.counter("requests_total", endpoint="campaign")
    b = registry.counter("requests_total", endpoint="campaign")
    other = registry.counter("requests_total", endpoint="diagnose")
    assert a is b
    assert a is not other
    a.inc()
    a.inc(2)
    assert a.value == 3
    assert other.value == 0


def test_counter_rejects_negative_increment():
    counter = MetricsRegistry().counter("n")
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_gauge_moves_both_ways():
    gauge = MetricsRegistry().gauge("inflight")
    gauge.inc()
    gauge.inc()
    gauge.dec()
    assert gauge.value == 1
    gauge.set(7.5)
    assert gauge.value == 7.5


def test_window_snapshot_tracks_lifetime_and_recent():
    window = MetricsRegistry(window_size=3).window("batch")
    for value in (1, 2, 3, 4):
        window.observe(value)
    snap = window.snapshot()
    assert snap["count"] == 4
    assert snap["sum"] == 10
    assert snap["last"] == 4
    # Recent stats cover only the retained window (2, 3, 4).
    assert snap["recent_min"] == 2
    assert snap["recent_max"] == 4
    assert snap["recent_mean"] == 3


def test_render_is_sorted_and_parseable():
    registry = MetricsRegistry(namespace="repro")
    registry.counter("requests_total", endpoint="campaign").inc()
    registry.gauge("inflight", endpoint="campaign").set(2)
    registry.window("batch_size").observe(3)
    text = registry.render()
    lines = text.strip().splitlines()
    assert 'repro_requests_total{endpoint="campaign"} 1' in lines
    assert 'repro_inflight{endpoint="campaign"} 2' in lines
    assert "repro_batch_size_count 1" in lines
    assert "repro_batch_size_sum 3" in lines
    assert any(line.startswith("repro_uptime_seconds") for line in lines)
    # Every line is "name[{labels}] value" with a float-parseable value.
    for line in lines:
        name, value = line.rsplit(" ", 1)
        assert name
        float(value)


def test_render_escapes_label_values():
    registry = MetricsRegistry(namespace="repro")
    registry.counter("errors_total", kind='a"b\\c').inc()
    line = registry.render().splitlines()[0]
    assert line == 'repro_errors_total{kind="a\\"b\\\\c"} 1'


def test_observe_timings_creates_stage_windows():
    registry = MetricsRegistry()
    registry.observe_timings({"synth": 0.5, "encode": 0.25, "total": 1.0},
                             mode="run")
    snap = registry.snapshot()
    stages = [key for key in snap["windows"]
              if key.startswith("stage_seconds")]
    assert len(stages) == 3
    text = registry.render()
    assert 'stage_seconds_sum{mode="run",stage="synth"} 0.5' in text


def test_timed_observes_elapsed_seconds():
    window = MetricsRegistry().window("elapsed")
    with timed(window):
        pass
    snap = window.snapshot()
    assert snap["count"] == 1
    assert snap["last"] >= 0


def test_registry_is_thread_safe():
    registry = MetricsRegistry()
    counter = registry.counter("hits")

    def work():
        for _ in range(1000):
            counter.inc()
            registry.window("w").observe(1)

    threads = [threading.Thread(target=work) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 8000
    assert registry.window("w").snapshot()["count"] == 8000
