"""HTTP service: endpoints, bit-identity, throttling, metrics."""

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.campaign import ScreeningRequest, montecarlo_dies
from repro.service import (
    MetricsRegistry,
    ScreeningSession,
    ServiceClient,
    ServiceError,
    build_server,
)
from repro.service.server import (
    BadRequest,
    campaign_payload,
    population_from_payload,
    request_from_payload,
)

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def session():
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES)
    session.warm(dictionary=False)
    return session


@pytest.fixture(scope="module")
def server(session):
    server = build_server(port=0, window=0.002, session=session)
    server.start()
    yield server
    server.close()


@pytest.fixture(scope="module")
def client(server):
    return ServiceClient(server.url, client_id="pytest")


# ----------------------------------------------------------------------
# Payload parsing (no server needed)
# ----------------------------------------------------------------------
def test_population_from_payload_kinds(golden_spec):
    mc = population_from_payload({"kind": "mc", "dies": 3, "seed": 1},
                                 golden_spec)
    assert len(mc) == 3
    sweep = population_from_payload(
        {"kind": "sweep", "deviations": [-0.1, 0.1]}, golden_spec)
    assert len(sweep) == 2
    traces = population_from_payload(
        {"kind": "traces", "y": [[0.0] * 8]}, golden_spec)
    assert len(traces) == 1


@pytest.mark.parametrize("payload", [
    {"kind": "nope"},
    {"kind": "mc", "dies": -1},
    {"kind": "sweep"},
    {"kind": "sweep", "deviations": []},
    {"kind": "traces"},
    {"kind": "traces", "y": [[[1.0]]]},
])
def test_population_from_payload_rejects(golden_spec, payload):
    with pytest.raises(BadRequest):
        population_from_payload(payload, golden_spec)


def test_request_from_payload_band_parsing(golden_spec):
    request = request_from_payload({"kind": "mc", "dies": 1,
                                    "band": "0.25"}, golden_spec)
    assert request.band == 0.25
    with pytest.raises(BadRequest):
        request_from_payload({"kind": "mc", "band": "wide"},
                             golden_spec)


def test_campaign_payload_shape(session, golden_spec):
    lot = montecarlo_dies(golden_spec, 2, sigma_f0=0.05, seed=4)
    result = session.submit(ScreeningRequest(population=lot))
    payload = campaign_payload(result)
    assert payload["dies"] == 2
    assert len(payload["ndfs"]) == 2
    assert len(payload["verdicts"]) == 2
    assert payload["pass"] + payload["fail"] == 2
    json.dumps(payload)  # JSON-clean end to end
    assert "ndfs" not in campaign_payload(result, include_ndfs=False)


# ----------------------------------------------------------------------
# Live server
# ----------------------------------------------------------------------
def test_healthz_reports_warm_state(client):
    health = client.healthz()
    assert health["status"] == "ok"
    assert health["cache"]["size"] >= 2


def test_campaign_is_bit_identical_to_library_run(server, client,
                                                  session):
    response = client.campaign(kind="mc", dies=6, sigma=0.05, seed=11)
    lot = montecarlo_dies(session.engine.config.golden_spec, 6,
                          sigma_f0=0.05, seed=11)
    direct = session.engine.run(lot)
    assert response["ndfs"] == [float(v) for v in direct.ndfs]
    assert response["verdicts"] == [bool(v) for v in direct.verdicts]
    assert response["threshold"] == direct.threshold
    assert response["labels"] == direct.labels
    assert response["client"] == "pytest"


def test_concurrent_clients_each_get_their_own_slice(server, session):
    seeds = [20, 21, 22, 23]
    responses = [None] * len(seeds)
    barrier = threading.Barrier(len(seeds))

    def work(i, seed):
        barrier.wait()
        responses[i] = ServiceClient(
            server.url, client_id=f"lot{seed}").campaign(
                kind="mc", dies=4, sigma=0.05, seed=seed)

    threads = [threading.Thread(target=work, args=(i, seed))
               for i, seed in enumerate(seeds)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    for seed, response in zip(seeds, responses):
        lot = montecarlo_dies(session.engine.config.golden_spec, 4,
                              sigma_f0=0.05, seed=seed)
        direct = session.engine.run(lot)
        assert response["ndfs"] == [float(v) for v in direct.ndfs]
        assert response["verdicts"] == [bool(v)
                                        for v in direct.verdicts]


def test_diagnose_returns_dictionary_matches(client):
    response = client.diagnose(kind="sweep",
                               deviations=[-0.15, 0.0, 0.15],
                               top_k=2)
    diagnosis = response["diagnosis"]
    # Only the two failing dies reach the matcher.
    assert diagnosis["dies"] == 2
    for match in diagnosis["matches"]:
        assert len(match["candidates"]) == 2


def test_bad_payload_is_400(client):
    with pytest.raises(ServiceError) as excinfo:
        client.campaign(kind="nope")
    assert excinfo.value.status == 400


def test_unknown_endpoint_is_404(server):
    request = urllib.request.Request(server.url + "/nope",
                                     data=b"{}")
    with pytest.raises(urllib.error.HTTPError) as excinfo:
        urllib.request.urlopen(request, timeout=10)
    assert excinfo.value.code == 404


def test_metrics_scrape_has_request_series(client):
    client.campaign(kind="mc", dies=1, seed=0)
    text = client.metrics_text()
    assert 'repro_requests_total{endpoint="campaign"}' in text
    assert "repro_coalesced_requests_count" in text
    assert "repro_stage_seconds_sum" in text
    assert "repro_uptime_seconds" in text


def test_rate_limited_client_gets_429():
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES)
    session.warm(dictionary=False)
    metrics = MetricsRegistry()
    server = build_server(port=0, window=0.0, rate=0.001, burst=2,
                          session=session, metrics=metrics)
    server.start()
    try:
        client = ServiceClient(server.url, client_id="greedy")
        client.campaign(kind="mc", dies=1, seed=0)
        client.campaign(kind="mc", dies=1, seed=0)
        with pytest.raises(ServiceError) as excinfo:
            client.campaign(kind="mc", dies=1, seed=0)
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after > 0
        # A different client identity is not throttled.
        other = ServiceClient(server.url, client_id="patient")
        assert other.campaign(kind="mc", dies=1, seed=0)["dies"] == 1
        text = client.metrics_text()
        assert 'repro_throttled_total{endpoint="campaign"} 1' in text
    finally:
        server.close()


def test_internal_error_is_500(server, monkeypatch):
    def boom(request, timeout=None):
        raise RuntimeError("engine exploded")

    monkeypatch.setattr(server.batcher, "submit", boom)
    client = ServiceClient(server.url, client_id="unlucky")
    with pytest.raises(ServiceError) as excinfo:
        client.campaign(kind="mc", dies=1, seed=0)
    assert excinfo.value.status == 500
    assert "engine exploded" in str(excinfo.value)


def test_wait_ready_times_out_fast_on_dead_port():
    client = ServiceClient("http://127.0.0.1:9", timeout=0.2)
    with pytest.raises(TimeoutError):
        client.wait_ready(timeout=0.5, interval=0.1)
