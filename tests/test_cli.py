"""Command-line interface."""

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "200 us" in out
    assert "0.1021" in out


def test_zonemap(capsys):
    assert main(["zonemap"]) == 0
    out = capsys.readouterr().out
    assert "realized zones:" in out
    assert " 63" in out


def test_chronogram(capsys):
    assert main(["chronogram", "--dev", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "NDF(+10% f0)" in out
    assert "paper: 0.1021" in out


def test_sweep(capsys):
    assert main(["sweep", "--points", "5"]) == 0
    out = capsys.readouterr().out
    assert "linearity R^2" in out


def test_test_command_pass(capsys):
    assert main(["test", "--dev", "0.02", "--tolerance", "0.05"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_test_command_fail_unit(capsys):
    # A bad unit correctly failing still exits 0 (expected outcome).
    assert main(["test", "--dev", "0.15", "--tolerance", "0.05"]) == 0
    assert "FAIL" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])
