"""Command-line interface."""

import re

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "200 us" in out
    assert "0.1021" in out


def test_zonemap(capsys):
    assert main(["zonemap"]) == 0
    out = capsys.readouterr().out
    assert "realized zones:" in out
    assert " 63" in out


def test_chronogram(capsys):
    assert main(["chronogram", "--dev", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "NDF(+10% f0)" in out
    assert "paper: 0.1021" in out


def test_sweep(capsys):
    assert main(["sweep", "--points", "5"]) == 0
    out = capsys.readouterr().out
    assert "linearity R^2" in out


def test_test_command_pass(capsys):
    assert main(["test", "--dev", "0.02", "--tolerance", "0.05"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_test_command_fail_unit(capsys):
    # A bad unit correctly failing still exits 0 (expected outcome).
    assert main(["test", "--dev", "0.15", "--tolerance", "0.05"]) == 0
    assert "FAIL" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_campaign_mc(capsys):
    assert main(["campaign", "--dies", "8", "--seed", "1",
                 "--samples", "512"]) == 0
    out = capsys.readouterr().out
    assert "campaign: mc (8 dies" in out
    verdicts = re.search(r"(\d+) PASS / (\d+) FAIL", out)
    assert verdicts is not None
    # Mild 3% spread vs a 5% band: most of the 8 dies must pass.
    assert int(verdicts.group(1)) >= 6
    assert "golden cache" in out


def test_campaign_json(capsys):
    import json

    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dies"] == 4
    assert payload["pass"] + payload["fail"] == 4
    assert payload["threshold"] > 0


def test_campaign_corners(capsys):
    assert main(["campaign", "--scenario", "corners",
                 "--samples", "512"]) == 0
    assert "5 dies" in capsys.readouterr().out


def test_campaign_faults(capsys):
    assert main(["campaign", "--scenario", "faults",
                 "--samples", "512"]) == 0
    out = capsys.readouterr().out
    verdicts = re.search(r"(\d+) PASS / (\d+) FAIL", out)
    assert verdicts is not None
    # Opens/shorts are gross defects: most of the universe must fail.
    assert int(verdicts.group(2)) > int(verdicts.group(1))


def test_campaign_executor_pool(capsys):
    assert main(["campaign", "--dies", "6", "--samples", "512",
                 "--executor", "pool", "--workers", "2",
                 "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["executor"].startswith("process-pool")
    assert payload["pass"] + payload["fail"] == 6


def test_campaign_executor_shm(capsys):
    assert main(["campaign", "--dies", "6", "--samples", "512",
                 "--executor", "shm", "--workers", "2", "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["executor"].startswith("shared-memory")


def test_campaign_stream_matches_monolithic(capsys):
    assert main(["campaign", "--dies", "20", "--samples", "512",
                 "--seed", "3", "--json"]) == 0
    import json

    monolithic = json.loads(capsys.readouterr().out)
    assert main(["campaign", "--dies", "20", "--samples", "512",
                 "--seed", "3", "--stream", "--chunk", "6",
                 "--json"]) == 0
    streamed = json.loads(capsys.readouterr().out)
    assert streamed["executor"] == "serial+stream"
    assert (streamed["pass"], streamed["fail"]) \
        == (monolithic["pass"], monolithic["fail"])
    assert streamed["ndf_mean"] == monolithic["ndf_mean"]


def test_campaign_noise_repeats(capsys):
    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--repeats", "5", "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "mc+noise"
    assert payload["repeats"] == 5
    assert payload["dies"] == 4
    assert 0.0 <= payload["detection_rate_mean"] <= 1.0


def test_campaign_noise_human_readable(capsys):
    assert main(["campaign", "--dies", "3", "--samples", "512",
                 "--repeats", "4", "--noise", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "3 dies x 4 repeats" in out
    assert "detection:" in out


def test_campaign_stream_requires_mc_scenario(capsys):
    assert main(["campaign", "--scenario", "corners", "--stream",
                 "--samples", "512"]) == 2
    assert main(["campaign", "--stream", "--repeats", "2",
                 "--samples", "512"]) == 2


def test_campaign_noise_flag_requires_repeats(capsys):
    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--noise", "0.01"]) == 2
    assert "--repeats" in capsys.readouterr().err


def test_campaign_noise_rejects_pool_executor(capsys):
    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--repeats", "3", "--executor", "pool"]) == 2
    assert "serial" in capsys.readouterr().err


def test_campaign_chunk_must_be_positive():
    with pytest.raises(SystemExit):
        main(["campaign", "--stream", "--chunk", "0",
              "--samples", "512"])
