"""Command-line interface."""

import re

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "200 us" in out
    assert "0.1021" in out


def test_zonemap(capsys):
    assert main(["zonemap"]) == 0
    out = capsys.readouterr().out
    assert "realized zones:" in out
    assert " 63" in out


def test_chronogram(capsys):
    assert main(["chronogram", "--dev", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "NDF(+10% f0)" in out
    assert "paper: 0.1021" in out


def test_sweep(capsys):
    assert main(["sweep", "--points", "5"]) == 0
    out = capsys.readouterr().out
    assert "linearity R^2" in out


def test_test_command_pass(capsys):
    assert main(["test", "--dev", "0.02", "--tolerance", "0.05"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_test_command_fail_unit(capsys):
    # A bad unit correctly failing still exits 0 (expected outcome).
    assert main(["test", "--dev", "0.15", "--tolerance", "0.05"]) == 0
    assert "FAIL" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_campaign_mc(capsys):
    assert main(["campaign", "--dies", "8", "--seed", "1",
                 "--samples", "512"]) == 0
    out = capsys.readouterr().out
    assert "campaign: mc (8 dies" in out
    verdicts = re.search(r"(\d+) PASS / (\d+) FAIL", out)
    assert verdicts is not None
    # Mild 3% spread vs a 5% band: most of the 8 dies must pass.
    assert int(verdicts.group(1)) >= 6
    assert "golden cache" in out


def test_campaign_json(capsys):
    import json

    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dies"] == 4
    assert payload["pass"] + payload["fail"] == 4
    assert payload["threshold"] > 0


def test_campaign_corners(capsys):
    assert main(["campaign", "--scenario", "corners",
                 "--samples", "512"]) == 0
    assert "5 dies" in capsys.readouterr().out


def test_campaign_faults(capsys):
    assert main(["campaign", "--scenario", "faults",
                 "--samples", "512"]) == 0
    out = capsys.readouterr().out
    verdicts = re.search(r"(\d+) PASS / (\d+) FAIL", out)
    assert verdicts is not None
    # Opens/shorts are gross defects: most of the universe must fail.
    assert int(verdicts.group(2)) > int(verdicts.group(1))
