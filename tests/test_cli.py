"""Command-line interface."""

import re

import pytest

from repro.cli import main


def test_info(capsys):
    assert main(["info"]) == 0
    out = capsys.readouterr().out
    assert "200 us" in out
    assert "0.1021" in out


def test_zonemap(capsys):
    assert main(["zonemap"]) == 0
    out = capsys.readouterr().out
    assert "realized zones:" in out
    assert " 63" in out


def test_chronogram(capsys):
    assert main(["chronogram", "--dev", "0.1"]) == 0
    out = capsys.readouterr().out
    assert "NDF(+10% f0)" in out
    assert "paper: 0.1021" in out


def test_sweep(capsys):
    assert main(["sweep", "--points", "5"]) == 0
    out = capsys.readouterr().out
    assert "linearity R^2" in out


def test_test_command_pass(capsys):
    assert main(["test", "--dev", "0.02", "--tolerance", "0.05"]) == 0
    assert "PASS" in capsys.readouterr().out


def test_test_command_fail_unit(capsys):
    # A bad unit correctly failing still exits 0 (expected outcome).
    assert main(["test", "--dev", "0.15", "--tolerance", "0.05"]) == 0
    assert "FAIL" in capsys.readouterr().out


def test_requires_command():
    with pytest.raises(SystemExit):
        main([])


def test_campaign_mc(capsys):
    assert main(["campaign", "--dies", "8", "--seed", "1",
                 "--samples", "512"]) == 0
    out = capsys.readouterr().out
    assert "campaign: mc (8 dies" in out
    verdicts = re.search(r"(\d+) PASS / (\d+) FAIL", out)
    assert verdicts is not None
    # Mild 3% spread vs a 5% band: most of the 8 dies must pass.
    assert int(verdicts.group(1)) >= 6
    assert "golden cache" in out


def test_campaign_json(capsys):
    import json

    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["dies"] == 4
    assert payload["pass"] + payload["fail"] == 4
    assert payload["threshold"] > 0


def test_campaign_corners(capsys):
    assert main(["campaign", "--scenario", "corners",
                 "--samples", "512"]) == 0
    assert "5 dies" in capsys.readouterr().out


def test_campaign_faults(capsys):
    assert main(["campaign", "--scenario", "faults",
                 "--samples", "512"]) == 0
    out = capsys.readouterr().out
    verdicts = re.search(r"(\d+) PASS / (\d+) FAIL", out)
    assert verdicts is not None
    # Opens/shorts are gross defects: most of the universe must fail.
    assert int(verdicts.group(2)) > int(verdicts.group(1))


def test_campaign_executor_pool(capsys):
    assert main(["campaign", "--dies", "6", "--samples", "512",
                 "--executor", "pool", "--workers", "2",
                 "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["executor"].startswith("process-pool")
    assert payload["pass"] + payload["fail"] == 6


def test_campaign_executor_shm(capsys):
    assert main(["campaign", "--dies", "6", "--samples", "512",
                 "--executor", "shm", "--workers", "2", "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["executor"].startswith("shared-memory")


def test_campaign_stream_matches_monolithic(capsys):
    assert main(["campaign", "--dies", "20", "--samples", "512",
                 "--seed", "3", "--json"]) == 0
    import json

    monolithic = json.loads(capsys.readouterr().out)
    assert main(["campaign", "--dies", "20", "--samples", "512",
                 "--seed", "3", "--stream", "--chunk", "6",
                 "--json"]) == 0
    streamed = json.loads(capsys.readouterr().out)
    assert streamed["executor"] == "serial+stream"
    assert (streamed["pass"], streamed["fail"]) \
        == (monolithic["pass"], monolithic["fail"])
    assert streamed["ndf_mean"] == monolithic["ndf_mean"]


def test_campaign_noise_repeats(capsys):
    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--repeats", "5", "--json"]) == 0
    import json

    payload = json.loads(capsys.readouterr().out)
    assert payload["scenario"] == "mc+noise"
    assert payload["repeats"] == 5
    assert payload["dies"] == 4
    assert 0.0 <= payload["detection_rate_mean"] <= 1.0


def test_campaign_noise_human_readable(capsys):
    assert main(["campaign", "--dies", "3", "--samples", "512",
                 "--repeats", "4", "--noise", "0.01"]) == 0
    out = capsys.readouterr().out
    assert "3 dies x 4 repeats" in out
    assert "detection:" in out


def test_campaign_stream_requires_mc_scenario(capsys):
    assert main(["campaign", "--scenario", "corners", "--stream",
                 "--samples", "512"]) == 2
    assert main(["campaign", "--stream", "--repeats", "2",
                 "--samples", "512"]) == 2


def test_campaign_noise_flag_requires_repeats(capsys):
    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--noise", "0.01"]) == 2
    assert "--repeats" in capsys.readouterr().err


def test_campaign_noise_pool_executor_matches_serial(capsys):
    import json

    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--repeats", "3", "--json"]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--repeats", "3", "--executor", "pool",
                 "--workers", "2", "--json"]) == 0
    pooled = json.loads(capsys.readouterr().out)
    assert pooled["executor"].startswith("process-pool")
    assert pooled["detection_rate_mean"] == serial["detection_rate_mean"]
    assert pooled["ndf_mean"] == serial["ndf_mean"]


def test_campaign_faults_names_failing_dies(capsys):
    assert main(["campaign", "--scenario", "faults",
                 "--samples", "512"]) == 0
    out = capsys.readouterr().out
    assert "detected:" in out
    assert "r1-open" in out  # failing dies named by fault, not index


def test_campaign_faults_json_carries_fault_labels(capsys):
    import json

    assert main(["campaign", "--scenario", "faults",
                 "--samples", "512", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["faults"]) == 14
    by_label = {entry["label"]: entry for entry in payload["faults"]}
    assert by_label["r1-open"]["kind"] == "open"
    assert by_label["r1-open"]["target"] == "r1"
    assert by_label["r1-open"]["detected"]
    # The matched inverter pair is invisible by construction.
    assert set(payload["fault_escapes"]) == {"r4-open", "r4-short"}


def test_diagnose_human_readable(capsys):
    assert main(["diagnose", "--samples", "512", "--per-fault", "2",
                 "--seed", "1"]) == 0
    out = capsys.readouterr().out
    assert "fault dictionary: 20 faults" in out
    assert "coverage:" in out
    assert "ambiguity:" in out
    assert "group top-1:" in out
    assert "diagnosed:" in out


def test_diagnose_json_and_save_load(capsys, tmp_path):
    import json

    path = str(tmp_path / "dictionary.npz")
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--save", path, "--json"]) == 0
    compiled = json.loads(capsys.readouterr().out)
    assert compiled["saved"] == path
    assert len(compiled["faults"]) == 20
    assert "confusion" not in compiled  # --per-fault 0: report only
    assert main(["diagnose", "--samples", "512", "--per-fault", "2",
                 "--load", path, "--top-k", "2", "--json"]) == 0
    loaded = json.loads(capsys.readouterr().out)
    assert loaded["faults"] == compiled["faults"]
    assert loaded["ndfs"] == compiled["ndfs"]
    assert 0.0 <= loaded["accuracy"] <= 1.0
    assert loaded["group_accuracy"] >= loaded["accuracy"]
    assert all(len(m["candidates"]) == 2
               for m in loaded["diagnosis"]["matches"])


def test_diagnose_catastrophic_only(capsys):
    import json

    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--no-parametric", "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert len(payload["faults"]) == 14


def test_campaign_chunk_must_be_positive():
    with pytest.raises(SystemExit):
        main(["campaign", "--stream", "--chunk", "0",
              "--samples", "512"])


def test_diagnose_load_rejects_mismatched_grid(capsys, tmp_path):
    path = str(tmp_path / "dictionary.npz")
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--save", path]) == 0
    capsys.readouterr()
    assert main(["diagnose", "--samples", "1024", "--per-fault", "0",
                 "--load", path]) == 2
    assert "different bench configuration" in capsys.readouterr().err


def test_diagnose_load_honours_tolerance(capsys, tmp_path):
    import json

    path = str(tmp_path / "dictionary.npz")
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--save", path, "--json"]) == 0
    saved = json.loads(capsys.readouterr().out)
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--load", path, "--tolerance", "0.10", "--json"]) == 0
    loose = json.loads(capsys.readouterr().out)
    # The wider band re-resolves the threshold instead of keeping the
    # stale saved one, so fewer (or equal) faults stay detectable.
    assert loose["threshold"] > saved["threshold"]
    assert loose["coverage"] <= saved["coverage"]


def test_diagnose_load_excludes_compile_flags(capsys, tmp_path):
    path = str(tmp_path / "dictionary.npz")
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--save", path]) == 0
    capsys.readouterr()
    assert main(["diagnose", "--load", path, "--save", path]) == 2
    assert "mutually exclusive" in capsys.readouterr().err
    assert main(["diagnose", "--load", path, "--no-parametric"]) == 2
    assert "--no-parametric" in capsys.readouterr().err


def test_diagnose_save_normalizes_npz_suffix(capsys, tmp_path):
    import os

    bare = str(tmp_path / "dict_no_ext")
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--save", bare]) == 0
    out = capsys.readouterr().out
    assert f"saved:       {bare}.npz" in out
    assert os.path.exists(bare + ".npz")
    # Loading by the bare name the user typed works too.
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--load", bare]) == 0


def test_diagnose_json_is_strict_with_top_k_1(capsys):
    """Top-1-only matches have an infinite margin; the payload must
    encode it as null, not the non-standard Infinity literal."""
    import json

    assert main(["diagnose", "--samples", "512", "--per-fault", "1",
                 "--top-k", "1", "--json"]) == 0
    raw = capsys.readouterr().out
    assert "Infinity" not in raw and "NaN" not in raw
    payload = json.loads(raw)
    assert all(m["margin"] is None
               for m in payload["diagnosis"]["matches"])


def test_diagnose_second_signature_auto(capsys):
    import json

    assert main(["diagnose", "--samples", "512", "--per-fault", "2",
                 "--seed", "1", "--second-signature", "auto",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    second = payload["second_signature"]
    assert second["chosen"] is not None
    assert ["r1-open", "r5-short"] in second["resolved_groups"]
    assert ["r4-open", "r4-short"] in second["invisible_groups"]
    # One-die slack: only group-aware accuracy is provably no-regress.
    assert second["accuracy"] >= payload["accuracy"] - 0.05


def test_diagnose_second_signature_named(capsys):
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--second-signature", "bias-0.10_level1e-05"]) == 0
    out = capsys.readouterr().out
    assert "second bank: bias-0.10_level1e-05" in out
    assert "resolved" in out and "invisible" in out


def test_diagnose_second_signature_bad_name(capsys):
    assert main(["diagnose", "--samples", "512", "--per-fault", "0",
                 "--second-signature", "bogus"]) == 2
    assert "--second-signature" in capsys.readouterr().err


def test_campaign_second_signature_named(capsys):
    import json

    assert main(["campaign", "--scenario", "faults", "--samples",
                 "512", "--second-signature", "bias-0.10_level1e-05",
                 "--json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    assert payload["second_signature"] == "bias-0.10_level1e-05"
    assert len(payload["channels"]) == 2
    assert payload["combined_fail"] >= payload["fail"]


def test_campaign_second_signature_rejects_noise(capsys):
    assert main(["campaign", "--dies", "4", "--samples", "512",
                 "--repeats", "2",
                 "--second-signature", "auto"]) == 2
    assert "single-channel" in capsys.readouterr().err


def test_campaign_second_signature_rejects_monitor_mc(capsys):
    assert main(["campaign", "--scenario", "monitor-mc", "--dies", "2",
                 "--samples", "512",
                 "--second-signature", "auto"]) == 2
    assert "CUT population" in capsys.readouterr().err


def test_diagnose_pinned_second_signature_honoured_when_no_split(capsys):
    """A pinned bank that splits nothing is still used for the
    two-channel study (only 'auto' degrades to single-channel)."""
    assert main(["diagnose", "--samples", "512", "--per-fault", "2",
                 "--second-signature", "bias-0.05"]) == 0
    out = capsys.readouterr().out
    assert "second bank: (none)" in out  # the search found no split
    assert "with 2nd signature:" in out  # ... but the bank is used


def test_campaign_sharded_matches_serial(capsys):
    import json

    assert main(["campaign", "--dies", "8", "--seed", "1",
                 "--samples", "512", "--shards", "2",
                 "--shard-chunk", "2", "--json"]) == 0
    sharded = json.loads(capsys.readouterr().out)
    assert main(["campaign", "--dies", "8", "--seed", "1",
                 "--samples", "512", "--json"]) == 0
    serial = json.loads(capsys.readouterr().out)
    assert sharded["executor"] == "sharded[2]"
    assert sharded["shards"]["completed"] == 2.0
    for key in ("pass", "fail", "threshold", "ndf_mean", "ndf_p95"):
        assert sharded[key] == serial[key], key


def test_campaign_shards_exclusions(capsys):
    assert main(["campaign", "--shards", "2", "--stream"]) == 2
    assert "checkpointed streams" in capsys.readouterr().err
    assert main(["campaign", "--shards", "2", "--repeats", "3"]) == 2
    capsys.readouterr()
    assert main(["campaign", "--shards", "2",
                 "--executor", "pool"]) == 2
    assert "worker processes" in capsys.readouterr().err
    assert main(["campaign", "--shards", "2", "--scenario",
                 "corners"]) == 2
    assert "streaming-capable" in capsys.readouterr().err
    assert main(["campaign", "--shards", "2",
                 "--second-signature", "auto"]) == 2
    assert "single-channel" in capsys.readouterr().err
    assert main(["campaign", "--shard-chunk", "4"]) == 2
    assert "--shards N" in capsys.readouterr().err


def test_campaign_listen_and_autotune_require_shards(capsys):
    assert main(["campaign", "--listen", "127.0.0.1:9100"]) == 2
    assert "--shards N" in capsys.readouterr().err
    assert main(["campaign", "--shard-autotune", "5"]) == 2
    assert "--shards N" in capsys.readouterr().err
    assert main(["campaign", "--shards", "2",
                 "--listen", "nonsense"]) == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_shard_worker_is_a_visible_command(capsys):
    import pytest as _pytest

    with _pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    assert "shard-worker" in capsys.readouterr().out
    # Its own --help comes from the worker's parser (the protocol
    # intercept), and documents the TCP dial-in flag.
    with _pytest.raises(SystemExit) as excinfo:
        main(["shard-worker", "--help"])
    assert excinfo.value.code == 0
    assert "--connect" in capsys.readouterr().out


def test_shard_worker_rejects_bad_endpoint(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["shard-worker", "--connect", "nonsense"])
    assert excinfo.value.code == 2
    assert "HOST:PORT" in capsys.readouterr().err


def test_campaign_autotuned_sharded_runs(capsys):
    import json

    assert main(["campaign", "--dies", "8", "--seed", "1",
                 "--samples", "512", "--shards", "2",
                 "--shard-chunk", "2", "--shard-autotune", "0.5",
                 "--json"]) == 0
    sharded = json.loads(capsys.readouterr().out)
    assert main(["campaign", "--dies", "8", "--seed", "1",
                 "--samples", "512", "--json"]) == 0
    serial = json.loads(capsys.readouterr().out)
    for key in ("pass", "fail", "threshold", "ndf_mean", "ndf_p95"):
        assert sharded[key] == serial[key], key
