"""The reproduction's headline assertions against the paper's artifacts.

Every numbered claim in the evaluation section is pinned here:

* Fig. 1  -- golden vs +10 % Lissajous differ visibly, stay in 0-1 V;
* Fig. 6  -- the golden trace traverses exactly the sixteen printed
  zone codes; neighbouring zones differ in one bit;
* Fig. 7  -- period 200 us; NDF(+10 %) ~ 0.1021; a Hamming-2 excursion
  where the faulty trace skips a zone sequence through code 62;
* Fig. 8  -- NDF grows near-linearly and near-symmetrically, reaching
  ~0.19 at +-20 %; with 3-sigma = 0.015 V noise, +-1 % deviations of f0
  remain detectable.
"""

import numpy as np
import pytest

from repro.analysis import build_chronogram, skipped_zone_events
from repro.core.ndf import ndf
from repro.paper import FIG6_ZONE_CODES, FIG7_NDF_10PCT, noisy_paper_setup


# ----------------------------------------------------------------------
# Fig. 1
# ----------------------------------------------------------------------

def test_fig1_traces_stay_in_window(setup):
    golden = setup.tester.trace_of(setup.golden_filter())
    shifted = setup.tester.trace_of(setup.deviated_filter(0.10))
    assert golden.stays_within(0.0, 1.0)
    assert shifted.stays_within(0.0, 1.0)


def test_fig1_deviation_changes_the_curve(setup):
    golden = setup.tester.trace_of(setup.golden_filter())
    shifted = setup.tester.trace_of(setup.deviated_filter(0.10))
    gap = np.max(np.abs(golden.y.values - shifted.y.values))
    assert gap > 0.02  # visibly different, as in Fig. 1


# ----------------------------------------------------------------------
# Fig. 6
# ----------------------------------------------------------------------

def test_fig6_golden_zone_set(setup, golden_signature):
    assert golden_signature.distinct_codes() == set(FIG6_ZONE_CODES)


def test_fig6_defective_visits_code_62(setup, defective_signature):
    assert 62 in defective_signature.distinct_codes()


def test_fig6_gray_adjacency(encoder):
    assert encoder.adjacency_report(grid=256).is_gray


# ----------------------------------------------------------------------
# Fig. 7
# ----------------------------------------------------------------------

def test_fig7_period_is_200us(golden_signature):
    assert golden_signature.period == pytest.approx(200e-6)


def test_fig7_ndf_anchor(golden_signature, defective_signature):
    value = ndf(defective_signature, golden_signature)
    assert value == pytest.approx(FIG7_NDF_10PCT, abs=0.01)


def test_fig7_hamming2_excursion(golden_signature, defective_signature):
    """The +10 % chronogram peaks at Hamming distance 2 -- the paper's
    skipped-zone event (reproduced at this stimulus's own crossings)."""
    data = build_chronogram(defective_signature, golden_signature)
    assert data.max_hamming() == 2
    events = skipped_zone_events(defective_signature, golden_signature)
    assert len(events) >= 1


# ----------------------------------------------------------------------
# Fig. 8
# ----------------------------------------------------------------------

@pytest.fixture(scope="module")
def fig8(setup):
    return setup.fig8_sweep(np.linspace(-0.20, 0.20, 11))


def test_fig8_zero_at_origin(fig8):
    assert fig8.ndf_at(0.0) == pytest.approx(0.0, abs=1e-9)


def test_fig8_magnitude_at_20pct(fig8):
    assert 0.15 < fig8.ndf_at(0.20) < 0.25
    assert 0.15 < fig8.ndf_at(-0.20) < 0.30


def test_fig8_monotone_in_magnitude(fig8):
    pos = fig8.ndfs[fig8.deviations >= 0]
    neg = fig8.ndfs[fig8.deviations <= 0][::-1]
    assert np.all(np.diff(pos) > 0)
    assert np.all(np.diff(neg) > 0)


def test_fig8_near_linear(fig8):
    r2_neg, r2_pos = fig8.linearity_r2()
    assert r2_pos > 0.99
    assert r2_neg > 0.97


def test_fig8_near_symmetric(fig8):
    assert fig8.symmetry_error() < 0.03


def test_fig8_tolerance_band_decides(setup, fig8):
    band = fig8.band_for_tolerance(0.05)
    good = setup.tester.measure(setup.deviated_filter(0.02), band)
    bad = setup.tester.measure(setup.deviated_filter(0.12), band)
    assert good.verdict.passed
    assert not bad.verdict.passed


# ----------------------------------------------------------------------
# Noise study (Section IV-C)
# ----------------------------------------------------------------------

@pytest.mark.slow
def test_one_percent_detectable_under_paper_noise():
    bench = noisy_paper_setup(samples_per_period=4096)
    noise = bench.noise_model(rng=11)
    golden_pop = bench.tester.noisy_ndf_population(
        bench.golden_filter(), noise, repeats=10)
    for dev in (+0.01, -0.01):
        pop = bench.tester.noisy_ndf_population(
            bench.deviated_filter(dev), noise, repeats=10)
        # Worst-case separation: every faulty run above every clean run.
        assert pop.min() > golden_pop.max(), f"{dev:+.0%} not separated"
