"""Cross-model integration: the structural CUT in the signature flow.

The paper simulated a real Biquad circuit; the reproduction's primary
path is the exact behavioural model.  These tests close the loop: the
Tow-Thomas netlist, pushed through the same monitors and capture,
must yield the same signatures and NDF values.
"""

import pytest

from repro.core.ndf import ndf
from repro.core.testflow import SignatureTester
from repro.filters import TowThomasBiquad, TowThomasValues, f0_deviation
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS, paper_setup


@pytest.fixture(scope="module")
def values():
    return TowThomasValues.from_spec(PAPER_BIQUAD)


@pytest.fixture(scope="module")
def structural_tester(values):
    bench = paper_setup(samples_per_period=2048)
    return SignatureTester(bench.encoder, PAPER_STIMULUS,
                           TowThomasBiquad(values),
                           samples_per_period=2048)


def test_structural_golden_matches_behavioral(structural_tester):
    bench = paper_setup(samples_per_period=2048)
    sig_struct = structural_tester.golden_signature()
    sig_beh = bench.tester.golden_signature()
    # Same zone traversal; crossing times agree to a tiny fraction of T.
    assert sig_struct.codes() == sig_beh.codes()
    assert ndf(sig_struct, sig_beh) < 1e-3


def test_structural_f0_fault_ndf(structural_tester, values):
    """A +10 % f0 fault injected at *component level* gives the same
    NDF as the behavioural parameter shift."""
    faulted = f0_deviation(0.10).apply_to_biquad(values)
    value = structural_tester.ndf_of(faulted)
    assert value == pytest.approx(0.1021, abs=0.012)


def test_structural_transient_signature(values):
    """Full transient simulation -> signature, no frequency-domain
    shortcut anywhere in the CUT path."""
    bench = paper_setup(samples_per_period=1024)

    class TransientCut:
        def __init__(self):
            self.tt = TowThomasBiquad(values, PAPER_STIMULUS)

        def lissajous(self, stimulus, samples_per_period):
            return self.tt.simulate_steady_period(samples_per_period)

    tester = SignatureTester(bench.encoder, PAPER_STIMULUS,
                             TransientCut(), samples_per_period=1024,
                             refine=False)
    sig_tr = tester.golden_signature()
    # Compare against the behavioural capture at the *same* grid
    # quantization (no bisection refinement) so the residual reflects
    # integration accuracy, not capture resolution.
    beh_tester = SignatureTester(bench.encoder, PAPER_STIMULUS,
                                 bench.golden_filter(),
                                 samples_per_period=1024, refine=False)
    sig_beh = beh_tester.golden_signature()
    assert ndf(sig_tr, sig_beh) < 5e-3


def test_catastrophic_fault_yields_large_ndf(structural_tester, values):
    """An open integrator capacitor destroys the response: NDF >> any
    parametric deviation of Fig. 8."""
    from repro.filters import Fault, FaultKind
    faulted = Fault(FaultKind.OPEN, "c2").apply_to_biquad(values)
    assert structural_tester.ndf_of(faulted) > 0.3
