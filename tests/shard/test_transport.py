"""Transport-layer unit tests: both carriers, one wire discipline.

The coordinator's behaviour must not depend on the carrier, so these
tests drive :class:`PipeTransport` and :class:`SocketTransport`
through the identical send/receive/fault surface -- socket pairs and
a tiny echo subprocess stand in for real workers.
"""

from __future__ import annotations

import socket
import subprocess
import sys

import pytest

from repro.obs.metrics import default_registry
from repro.shard.transport import (
    PipeTransport,
    SocketListener,
    SocketTransport,
    TransportClosed,
    dial,
    parse_endpoint,
)
from repro.testing.faultinject import arm


def _socket_pair():
    left, right = socket.socketpair()
    return SocketTransport(left), SocketTransport(right)


def _echo_pipe():
    proc = subprocess.Popen(
        [sys.executable, "-c",
         "import sys\n"
         "for line in sys.stdin:\n"
         "    sys.stdout.write(line)\n"
         "    sys.stdout.flush()\n"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE,
        text=True, bufsize=1)
    return PipeTransport(proc, stderr_path="/nonexistent")


# ---------------------------------------------------------------------
# parse_endpoint
# ---------------------------------------------------------------------
def test_parse_endpoint_host_port():
    assert parse_endpoint("127.0.0.1:9100") == ("127.0.0.1", 9100)
    assert parse_endpoint("node-a.local:0") == ("node-a.local", 0)


@pytest.mark.parametrize("junk", ["", "9100", ":9100", "host:",
                                  "host:abc", "host:1:2:x"])
def test_parse_endpoint_rejects_junk(junk):
    with pytest.raises(ValueError):
        parse_endpoint(junk)


# ---------------------------------------------------------------------
# SocketTransport basics
# ---------------------------------------------------------------------
def test_socket_round_trip_lines():
    a, b = _socket_pair()
    try:
        a.send_line('{"type":"ping"}')
        a.send_line('{"type":"done"}')
        received = b.lines()
        assert next(received).strip() == '{"type":"ping"}'
        assert next(received).strip() == '{"type":"done"}'
    finally:
        a.kill()
        b.kill()


def test_socket_send_after_kill_raises_transport_closed():
    a, b = _socket_pair()
    b.kill()
    a.kill()
    with pytest.raises(TransportClosed):
        a.send_line("x")
    assert not a.alive()


def test_socket_peer_close_reads_as_eof():
    a, b = _socket_pair()
    a.send_line("one")
    a.kill()
    try:
        assert [line.strip() for line in b.lines()] == ["one"]
    finally:
        b.kill()


def test_socket_counts_bytes_both_directions():
    a, b = _socket_pair()
    sent = default_registry().counter(
        "shard_bytes_total", direction="sent", transport="socket")
    received = default_registry().counter(
        "shard_bytes_total", direction="received",
        transport="socket")
    sent_before, received_before = sent.value, received.value
    try:
        a.send_line("hello")  # 5 + newline
        assert next(b.lines()).strip() == "hello"
    finally:
        a.kill()
        b.kill()
    assert sent.value == sent_before + 6
    assert received.value == received_before + 6


# ---------------------------------------------------------------------
# PipeTransport basics
# ---------------------------------------------------------------------
def test_pipe_round_trip_and_describe():
    transport = _echo_pipe()
    try:
        assert transport.alive()
        assert str(transport.proc.pid) in transport.describe()
        transport.send_line("echo-me")
        assert next(transport.lines()).strip() == "echo-me"
    finally:
        transport.kill()
    assert not transport.alive()


def test_pipe_send_after_exit_raises_transport_closed():
    transport = _echo_pipe()
    transport.kill()
    with pytest.raises(TransportClosed):
        transport.send_line("too late")


# ---------------------------------------------------------------------
# Fault gates (identical on every carrier)
# ---------------------------------------------------------------------
def test_drop_fault_swallows_one_sent_line():
    a, b = _socket_pair()
    try:
        arm("shard.transport.drop", times=1)
        a.send_line("lost in flight")
        a.send_line("delivered")
        assert next(b.lines()).strip() == "delivered"
    finally:
        a.kill()
        b.kill()


def test_drop_fault_swallows_one_received_line():
    a, b = _socket_pair()
    try:
        a.send_line("first")
        a.send_line("second")
        arm("shard.transport.drop", times=1)
        assert next(b.lines()).strip() == "second"
    finally:
        a.kill()
        b.kill()


def test_partition_fault_severs_send_side():
    a, b = _socket_pair()
    try:
        arm("shard.transport.partition", times=1)
        with pytest.raises(TransportClosed):
            a.send_line("never arrives")
        assert not a.alive()
    finally:
        a.kill()
        b.kill()


def test_partition_fault_severs_receive_side_as_eof():
    a, b = _socket_pair()
    try:
        a.send_line("doomed")
        arm("shard.transport.partition", times=1)
        assert list(b.lines()) == []
        assert not b.alive()
    finally:
        a.kill()
        b.kill()


def test_delay_fault_is_latency_not_loss(monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SLOW_S", "0.01")
    a, b = _socket_pair()
    try:
        arm("shard.transport.delay", times=1)
        a.send_line("late but intact")
        assert next(b.lines()).strip() == "late but intact"
    finally:
        a.kill()
        b.kill()


# ---------------------------------------------------------------------
# Listener + dial
# ---------------------------------------------------------------------
def test_listener_accept_and_dial_round_trip():
    listener = SocketListener("127.0.0.1", 0)
    host, port = listener.address
    assert port != 0  # ephemeral port resolved at bind
    try:
        client = dial(host, port, attempts=5, delay=0.05)
        server_side = listener.accept(timeout=2.0)
        assert server_side is not None
        assert "socket[" in server_side.describe()
        client_side = SocketTransport(client)
        try:
            client_side.send_line("dialed in")
            assert next(server_side.lines()).strip() == "dialed in"
            server_side.send_line("assigned")
            assert next(client_side.lines()).strip() == "assigned"
        finally:
            client_side.kill()
            server_side.kill()
    finally:
        listener.close()


def test_listener_accept_times_out_quietly():
    listener = SocketListener("127.0.0.1", 0)
    try:
        assert listener.accept(timeout=0.05) is None
    finally:
        listener.close()
    assert listener.accept(timeout=0.05) is None  # closed: still None


def test_dial_gives_up_with_context():
    listener = SocketListener("127.0.0.1", 0)
    host, port = listener.address
    listener.close()
    with pytest.raises(ConnectionError, match=str(port)):
        dial(host, port, attempts=2, delay=0.01)
