"""Shared sharding fixtures: fault hygiene and a small warm bench.

The drill tests arm fault points through the environment; the autouse
fixture keeps the registry clean on both sides so an armed fault can
never leak between tests (or in from the caller's shell).
"""

from __future__ import annotations

import pytest

from repro.testing.faultinject import disarm_all, reset_env_cache

SAMPLES = 512


@pytest.fixture(autouse=True)
def _clean_faults(monkeypatch):
    monkeypatch.delenv("REPRO_FAULTS", raising=False)
    monkeypatch.delenv("REPRO_SHARD_WORKER_FAULTS", raising=False)
    disarm_all()
    reset_env_cache()
    yield
    disarm_all()
    reset_env_cache()


@pytest.fixture()
def small_engine():
    """A fast private-cache engine over the paper bench (512 samples)."""
    from repro.campaign import CampaignEngine
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

    return CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=SAMPLES)
