"""Fleet descriptions rebuild any global die range bit-identical."""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.campaign.scenarios import (
    SpecPopulation,
    deviation_sweep_population,
    stream_montecarlo_dies,
)
from repro.paper import PAPER_BIQUAD
from repro.shard import MonteCarloFleet, PopulationFleet, as_fleet


def _collect(chunks):
    """(specs, f0, q, labels) accumulated over population chunks."""
    specs, f0, q, labels = [], [], [], []
    for chunk in chunks:
        specs.extend(chunk.specs)
        f0.extend(chunk.f0_deviations)
        q.extend(chunk.q_deviations)
        labels.extend(chunk.labels)
    return specs, np.asarray(f0), np.asarray(q), labels


def test_mc_fleet_range_matches_monolithic_stream():
    fleet = MonteCarloFleet(PAPER_BIQUAD, 20, sigma_f0=0.04, seed=7,
                            chunk_size=3)
    whole = _collect(stream_montecarlo_dies(
        PAPER_BIQUAD, 20, chunk_size=3, sigma_f0=0.04, seed=7))
    ranged = _collect(fleet.chunks(5, 13))
    assert ranged[3] == whole[3][5:13]  # labels
    np.testing.assert_array_equal(ranged[1], whole[1][5:13])
    assert [s.f0_hz for s in ranged[0]] == \
        [s.f0_hz for s in whole[0][5:13]]


def test_mc_fleet_concatenated_shards_equal_whole():
    fleet = MonteCarloFleet(PAPER_BIQUAD, 17, sigma_f0=0.05, seed=1,
                            chunk_size=4)
    whole = _collect(fleet.chunks(0, 17))
    pieces = [_collect(fleet.chunks(lo, hi))
              for lo, hi in [(0, 6), (6, 7), (7, 17)]]
    np.testing.assert_array_equal(
        np.concatenate([p[1] for p in pieces]), whole[1])
    assert sum((p[3] for p in pieces), []) == whole[3]


def test_mc_fleet_bounds_and_pickle():
    fleet = MonteCarloFleet(PAPER_BIQUAD, 10)
    with pytest.raises(ValueError):
        fleet.chunks(-1, 5)
    with pytest.raises(ValueError):
        fleet.chunks(0, 11)
    with pytest.raises(ValueError):
        fleet.chunks(7, 3)
    clone = pickle.loads(pickle.dumps(fleet))
    assert clone == fleet and len(clone) == 10


def test_population_fleet_slices_rows():
    population = deviation_sweep_population(
        PAPER_BIQUAD, np.linspace(-0.2, 0.2, 9))
    fleet = PopulationFleet(population, chunk_size=2)
    assert len(fleet) == 9
    specs, f0, __, labels = _collect(fleet.chunks(3, 8))
    assert labels == list(population.labels[3:8])
    np.testing.assert_array_equal(f0, population.f0_deviations[3:8])
    assert [s.f0_hz for s in specs] == \
        [s.f0_hz for s in population.specs[3:8]]
    with pytest.raises(ValueError):
        fleet.chunks(0, 10)


def test_population_fleet_empty_range_yields_nothing():
    population = deviation_sweep_population(
        PAPER_BIQUAD, np.linspace(-0.1, 0.1, 5))
    fleet = PopulationFleet(population)
    assert list(fleet.chunks(2, 2)) == []


def test_as_fleet_coercions():
    fleet = MonteCarloFleet(PAPER_BIQUAD, 5)
    assert as_fleet(fleet) is fleet
    population = deviation_sweep_population(
        PAPER_BIQUAD, np.linspace(-0.1, 0.1, 5))
    wrapped = as_fleet(population, chunk_size=2)
    assert isinstance(wrapped, PopulationFleet)
    assert wrapped.chunk_size == 2
    # A raw spec sequence wraps with synthetic labels and NaN truth.
    raw = as_fleet(list(population.specs))
    assert len(raw) == 5
    chunk = next(iter(raw.chunks(0, 5)))
    assert isinstance(chunk, SpecPopulation)
    assert chunk.labels[0] == "die00000"
    assert np.isnan(chunk.f0_deviations).all()
