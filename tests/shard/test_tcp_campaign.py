"""Multi-node campaigns over loopback TCP: the no-shared-FS contract.

The coordinator listens, workers dial in with ``repro shard-worker
--connect``, and every checkpoint crosses the wire base64-encoded
inside protocol messages -- nothing here assumes the worker can see
the coordinator's filesystem.  The drills sever a worker mid-shard
(an abrupt socket close, exactly what a partition or a dead host
produces) and require the merged result to stay **bit-identical** to
the monolithic run, with the resume starting from the shipped
checkpoint rather than from zero.
"""

from __future__ import annotations

import os
import socket
import subprocess
import sys
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs.trace import tracing
from repro.paper import PAPER_BIQUAD
from repro.shard import (
    MonteCarloFleet,
    ShardCoordinator,
    ShardWorkerError,
)

pytestmark = pytest.mark.campaign

DIES = 12
SIGMA = 0.05
SEED = 3
HEARTBEAT = 15.0
SRC_ROOT = str(Path(__file__).resolve().parents[2] / "src")


def _mc_fleet(count=DIES, chunk=2):
    return MonteCarloFleet(PAPER_BIQUAD, count, sigma_f0=SIGMA,
                           seed=SEED, chunk_size=chunk)


def _worker_env(faults=None):
    env = dict(os.environ)
    env.pop("REPRO_FAULTS", None)
    env.pop("REPRO_SHARD_WORKER_FAULTS", None)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = SRC_ROOT if not existing \
        else SRC_ROOT + os.pathsep + existing
    if faults is not None:
        env["REPRO_FAULTS"] = faults
    return env


def _start_worker(host, port, faults=None):
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "shard-worker",
         "--connect", f"{host}:{port}"],
        env=_worker_env(faults), stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL)


class _Campaign:
    """Run a listening coordinator on a thread; workers dial in."""

    def __init__(self, engine, fleet, **kwargs):
        self.coordinator = ShardCoordinator(
            engine.config, engine.band().threshold, fleet,
            heartbeat=HEARTBEAT, listen=("127.0.0.1", 0), **kwargs)
        self.address = self.coordinator.address
        self.result = None
        self.error = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()

    def _run(self):
        try:
            self.result = self.coordinator.run()
        except BaseException as error:  # surfaced in join()
            self.error = error

    def join(self, timeout=180.0):
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "campaign did not finish"
        if self.error is not None:
            raise self.error
        return self.result


def _monolithic(engine, fleet, count=DIES):
    return engine.run_stream(fleet.chunks(0, count),
                             band=engine.band().threshold)


def test_two_tcp_workers_merge_bit_identical(small_engine):
    fleet = _mc_fleet()
    campaign = _Campaign(small_engine, fleet, shards=4)
    host, port = campaign.address
    workers = [_start_worker(host, port) for _ in range(2)]
    try:
        merged, stats = campaign.join()
    finally:
        for proc in workers:
            proc.wait(timeout=30)
    reference = _monolithic(small_engine, fleet)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert merged.complete
    assert stats["completed"] == 4.0
    assert stats["reassigned"] == 0.0
    assert stats["workers"] == 2.0


def test_worker_severed_mid_shard_resumes_from_shipped_checkpoint(
        small_engine):
    """The headline drill: one of two TCP workers dies mid-shard
    (abrupt socket close, as a partition produces).  The survivor
    takes the shard over and resumes from the checkpoint bytes the
    dead worker shipped home -- bit-identical merge, no shared FS."""
    fleet = _mc_fleet()
    campaign = _Campaign(small_engine, fleet, shards=2)
    host, port = campaign.address
    # Worker A SIGKILLs itself right after its second progress report
    # -- past an inline-shipped checkpoint, so the resume is real --
    # while worker B screens its own shard concurrently.
    doomed = _start_worker(host, port,
                           faults="shard.worker.kill:1:1")
    survivor = _start_worker(host, port)
    try:
        merged, stats = campaign.join()
    finally:
        doomed.wait(timeout=30)
        survivor.wait(timeout=30)
    reference = _monolithic(small_engine, fleet)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert stats["reassigned"] >= 1.0
    assert stats["dispatched"] >= 3.0  # 2 planned + the re-dispatch


def test_late_rejoining_worker_is_inited_and_handed_pending_shards(
        small_engine):
    """Kill the only worker mid-shard, then connect a brand-new one:
    it must be re-inited on accept and resume the pending shard from
    the coordinator-held checkpoint (resume_b64), not from zero."""
    fleet = _mc_fleet()
    with tracing() as tracer:
        campaign = _Campaign(small_engine, fleet, shards=2)
        host, port = campaign.address
        doomed = _start_worker(host, port,
                               faults="shard.worker.kill:1:1")
        doomed.wait(timeout=120)
        time.sleep(0.5)  # the campaign is now workerless, mid-shard
        rejoiner = _start_worker(host, port)
        try:
            merged, stats = campaign.join()
        finally:
            rejoiner.wait(timeout=30)
    reference = _monolithic(small_engine, fleet)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert stats["reassigned"] == 1.0
    # The rejoiner's worker-side spans came home over the socket and
    # prove the resume started past the shard's own lo.
    runs = [r for r in tracer.records()
            if r.name == "shard.worker.run"]
    assert runs, "worker spans did not ride home over TCP"
    assert any(r.attributes["resume_at"] > r.attributes["lo"]
               for r in runs)


def test_garbage_speaking_client_is_dropped_campaign_survives(
        small_engine):
    """The fuzz wall, live: a client that connects and speaks junk is
    lost (protocol desync) without crashing the coordinator; a real
    worker finishes the campaign bit-identical."""
    fleet = _mc_fleet()
    campaign = _Campaign(small_engine, fleet, shards=2)
    host, port = campaign.address
    fuzzer = socket.create_connection((host, port), timeout=10.0)
    fuzzer.sendall(b"\x00\xffthis is not json at all{{{]\n")
    worker = _start_worker(host, port)
    try:
        merged, stats = campaign.join()
    finally:
        worker.wait(timeout=30)
        fuzzer.close()
    reference = _monolithic(small_engine, fleet)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert stats["completed"] == 2.0


def test_workerless_campaign_fails_after_rejoin_grace(small_engine):
    campaign = _Campaign(small_engine, _mc_fleet(), shards=2,
                         rejoin_grace=1.0)
    with pytest.raises(ShardWorkerError, match="--connect"):
        campaign.join(timeout=60.0)


def test_engine_listen_path_reports_tcp_executor(small_engine):
    probe = socket.socket()
    probe.bind(("127.0.0.1", 0))
    port = probe.getsockname()[1]
    probe.close()
    fleet = _mc_fleet()
    outcome = {}

    def run():
        try:
            outcome["result"] = small_engine.run_sharded(
                fleet, shards=2, band="auto", heartbeat=HEARTBEAT,
                listen=f"127.0.0.1:{port}")
        except BaseException as error:
            outcome["error"] = error

    thread = threading.Thread(target=run, daemon=True)
    thread.start()
    worker = _start_worker("127.0.0.1", port)
    thread.join(timeout=180.0)
    worker.wait(timeout=30)
    assert "error" not in outcome, outcome.get("error")
    result = outcome["result"]
    assert result.executor == "sharded-tcp[2]"
    reference = _monolithic(small_engine, fleet)
    np.testing.assert_array_equal(result.ndfs, reference.ndfs)
    np.testing.assert_array_equal(result.verdicts, reference.verdicts)
