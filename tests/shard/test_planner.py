"""Range tiling: every die covered exactly once, never an empty shard."""

from __future__ import annotations

import pytest

from repro.shard import Shard, plan_shards


def _covers(plan, count):
    """The plan tiles [0, count) contiguously without overlap."""
    expected = 0
    for shard in plan:
        assert shard.lo == expected
        assert shard.hi > shard.lo
        expected = shard.hi
    assert expected == count


def test_even_split():
    plan = plan_shards(12, 3)
    assert [(s.lo, s.hi) for s in plan] == [(0, 4), (4, 8), (8, 12)]
    _covers(plan, 12)


def test_uneven_split_spreads_remainder_front():
    plan = plan_shards(10, 3)
    assert [s.num_dies for s in plan] == [4, 3, 3]
    _covers(plan, 10)


def test_more_shards_than_dies_clamps():
    plan = plan_shards(2, 8)
    assert len(plan) == 2
    assert all(s.num_dies == 1 for s in plan)
    _covers(plan, 2)


def test_zero_dies_plans_nothing():
    assert plan_shards(0, 4) == []
    assert plan_shards(0, 4, shard_size=3) == []


def test_shard_size_overrides_shards():
    plan = plan_shards(10, 2, shard_size=4)
    assert [(s.lo, s.hi) for s in plan] == [(0, 4), (4, 8), (8, 10)]
    _covers(plan, 10)


def test_shard_size_exact_multiple():
    plan = plan_shards(8, 99, shard_size=4)
    assert [s.num_dies for s in plan] == [4, 4]
    _covers(plan, 8)


@pytest.mark.parametrize("count,shards", [(1, 1), (7, 2), (100, 7),
                                          (5, 5), (1000, 16)])
def test_coverage_property(count, shards):
    plan = plan_shards(count, shards)
    _covers(plan, count)
    assert [s.index for s in plan] == list(range(len(plan)))
    # Near-equal: sizes differ by at most one die.
    sizes = [s.num_dies for s in plan]
    assert max(sizes) - min(sizes) <= 1


def test_shard_validation():
    with pytest.raises(ValueError):
        Shard(0, 5, 5)  # empty range
    with pytest.raises(ValueError):
        Shard(0, 5, 3)  # inverted
    with pytest.raises(ValueError):
        Shard(0, -1, 3)  # negative lo


def test_checkpoint_names_are_stable_and_distinct():
    plan = plan_shards(30, 3)
    names = [s.checkpoint_name() for s in plan]
    assert len(set(names)) == 3
    assert names[0] == "shard_0000.npz"


# ---------------------------------------------------------------------
# ShardAutotuner
# ---------------------------------------------------------------------
def test_autotuner_unmeasured_worker_gets_initial_size():
    from repro.shard import ShardAutotuner

    tuner = ShardAutotuner(10.0, initial_size=64)
    assert tuner.next_size("w0") == 64
    assert tuner.rate("w0") is None


def test_autotuner_sizes_follow_observed_rates():
    from repro.shard import ShardAutotuner

    tuner = ShardAutotuner(10.0, initial_size=64)
    tuner.observe("fast", dies=100, seconds=1.0)   # 100 dies/s
    tuner.observe("slow", dies=100, seconds=100.0)  # 1 die/s
    assert tuner.next_size("fast") == 1000
    assert tuner.next_size("slow") == 10
    # Slow hosts get smaller slices than fast ones, always.
    assert tuner.next_size("slow") < tuner.next_size("fast")


def test_autotuner_smooths_rather_than_jumps():
    from repro.shard import ShardAutotuner

    tuner = ShardAutotuner(1.0, smoothing=0.5)
    tuner.observe("w", dies=100, seconds=1.0)
    tuner.observe("w", dies=10, seconds=1.0)  # a slow outlier shard
    assert tuner.rate("w") == pytest.approx(55.0)  # EWMA, not 10


def test_autotuner_quantizes_to_alignment_and_clamps():
    from repro.shard import ShardAutotuner

    tuner = ShardAutotuner(1.0, initial_size=5, align=4, max_size=16)
    assert tuner.initial_size == 8  # 5 rounded up to a chunk multiple
    tuner.observe("w", dies=13, seconds=1.0)
    assert tuner.next_size("w") == 16  # ceil(13 -> 16), within max
    tuner.observe("big", dies=1000, seconds=1.0)
    assert tuner.next_size("big") == 16  # clamped to max_size
    tuner.observe("tiny", dies=1, seconds=10.0)
    assert tuner.next_size("tiny") == 4  # never below one chunk


def test_autotuner_ignores_degenerate_observations():
    from repro.shard import ShardAutotuner

    tuner = ShardAutotuner(1.0)
    tuner.observe("w", dies=0, seconds=1.0)
    tuner.observe("w", dies=5, seconds=0.0)
    assert tuner.rate("w") is None


def test_autotuner_validation():
    from repro.shard import ShardAutotuner

    with pytest.raises(ValueError):
        ShardAutotuner(0.0)
    with pytest.raises(ValueError):
        ShardAutotuner(1.0, initial_size=0)
    with pytest.raises(ValueError):
        ShardAutotuner(1.0, align=0)
    with pytest.raises(ValueError):
        ShardAutotuner(1.0, smoothing=0.0)
