"""Network fault drills: the transport fault points under a campaign.

These drills arm ``shard.transport.*`` faults in the *coordinator's*
process (the transport layer is coordinator-side), with ``workers=1``
and a heartbeat far longer than the campaign so the coordinator's
line sequence is deterministic: trip 1 is always the ``init`` send,
trips 2-3 are the first ``assign`` send and the ``hello`` receive (in
either order), and every trip after that is a ``progress``/``done``
receive.  ``after=N`` therefore lands each fault on an exact
protocol line.

The contract under every fault: the merged result stays bit-identical
to the monolithic run.  A partition loses the worker and the shard
resumes from its checkpoint; a delay is latency, not loss -- nothing
may be reassigned; a dropped progress line costs nothing; a dropped
``done`` is caught by the progress watchdog.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.trace import tracing
from repro.paper import PAPER_BIQUAD
from repro.shard import MonteCarloFleet, ShardCoordinator
from repro.testing.faultinject import arm

pytestmark = pytest.mark.campaign

DIES = 12
SIGMA = 0.05
SEED = 3
HEARTBEAT = 30.0  # no pings, no stall teardown within any drill


def _mc_fleet(count=DIES, chunk=2):
    return MonteCarloFleet(PAPER_BIQUAD, count, sigma_f0=SIGMA,
                           seed=SEED, chunk_size=chunk)


def _reference(engine, fleet, count=DIES):
    return engine.run_stream(fleet.chunks(0, count),
                             band=engine.band().threshold)


def _run(engine, fleet, shards=2, **kwargs):
    coordinator = ShardCoordinator(
        engine.config, engine.band().threshold, fleet,
        shards=shards, workers=1, heartbeat=HEARTBEAT, **kwargs)
    merged, stats = coordinator.run()
    return merged, stats


def test_partition_mid_shard_reassigns_and_resumes_from_checkpoint(
        small_engine):
    """Sever the pipe right after the first progress report: the
    worker is lost, the shard reassigns, and the respawned worker
    resumes from the checkpoint -- not from die zero."""
    fleet = _mc_fleet()
    reference = _reference(small_engine, fleet)
    # Trips 1-3: init, assign, hello.  Trip 4: the first progress
    # line of shard 0 -- one durable checkpoint past its lo.
    arm("shard.transport.partition", times=1, after=3)
    with tracing() as tracer:
        merged, stats = _run(small_engine, fleet)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert stats["reassigned"] == 1.0
    assert stats["dispatched"] == stats["planned"] + 1.0
    runs = [r for r in tracer.records()
            if r.name == "shard.worker.run"]
    assert any(r.attributes["resume_at"] > r.attributes["lo"]
               for r in runs), "reassignment restarted from zero"


def test_delayed_lines_under_threshold_cause_no_false_loss(
        small_engine, monkeypatch):
    """Latency is not loss: every protocol line delivered late (but
    well under the heartbeat deadline) must not trigger reassignment."""
    monkeypatch.setenv("REPRO_FAULT_SLOW_S", "0.1")
    fleet = _mc_fleet(chunk=4)
    reference = _reference(small_engine, fleet)
    arm("shard.transport.delay", times=-1)
    merged, stats = _run(small_engine, fleet)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert stats["reassigned"] == 0.0
    assert stats["dispatched"] == stats["planned"]


def test_dropped_progress_line_is_harmless(small_engine):
    """Progress reports are advisory: losing one in flight changes
    nothing about the result or the dispatch accounting."""
    fleet = _mc_fleet()
    reference = _reference(small_engine, fleet)
    arm("shard.transport.drop", times=1, after=3)  # first progress
    merged, stats = _run(small_engine, fleet)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert stats["reassigned"] == 0.0


def test_dropped_done_is_caught_by_the_progress_watchdog(
        small_engine):
    """Heartbeats prove liveness, not progress: a worker whose
    ``done`` vanished keeps pinging forever.  ``progress_timeout``
    declares it lost; the reassigned shard's checkpoint is already
    complete, so the resume is a no-op and the merge is identical."""
    fleet = _mc_fleet(count=6)
    reference = _reference(small_engine, fleet, count=6)
    # One shard of three chunks: trips 1-3 init/assign/hello, trips
    # 4-6 progress, trip 7 the done line.
    arm("shard.transport.drop", times=1, after=6)
    merged, stats = _run(small_engine, fleet, shards=1,
                         progress_timeout=6.0)
    np.testing.assert_array_equal(merged.values(np.empty(0)),
                                  reference.ndfs)
    assert stats["reassigned"] == 1.0
    assert stats["completed"] == 1.0
