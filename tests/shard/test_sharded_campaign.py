"""Sharded campaigns merge bit-identical -- even through a worker kill.

Every test compares full result vectors (NDFs, verdicts, deviations,
labels) with ``array_equal``, never ``allclose``: the contract is
byte-for-byte identity with the monolithic run, not numerical
closeness.  The drill tests arm fault points in the *worker's*
environment through ``REPRO_SHARD_WORKER_FAULTS``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.campaign import (
    ScreeningRequest,
    deviation_sweep_population,
    montecarlo_dies,
    parameter_grid,
)
from repro.obs.metrics import default_registry
from repro.paper import PAPER_BIQUAD
from repro.shard import (
    MonteCarloFleet,
    PopulationFleet,
    ShardCoordinator,
    ShardWorkerError,
)

pytestmark = pytest.mark.campaign

DIES = 12
SIGMA = 0.05
SEED = 3
HEARTBEAT = 15.0  # generous: CI boxes start interpreters slowly


def _mc_fleet(count=DIES, chunk=4):
    return MonteCarloFleet(PAPER_BIQUAD, count, sigma_f0=SIGMA,
                           seed=SEED, chunk_size=chunk)


def _assert_same_result(a, b):
    np.testing.assert_array_equal(a.ndfs, b.ndfs)
    np.testing.assert_array_equal(a.verdicts, b.verdicts)
    np.testing.assert_array_equal(a.f0_deviations, b.f0_deviations)
    np.testing.assert_array_equal(a.q_deviations, b.q_deviations)
    assert list(a.labels) == list(b.labels)
    assert a.threshold == b.threshold


def test_mc_bit_identical_to_monolithic(small_engine):
    population = montecarlo_dies(PAPER_BIQUAD, DIES, sigma_f0=SIGMA,
                                 seed=SEED)
    reference = small_engine.run(population, band="auto")
    sharded = small_engine.run_sharded(_mc_fleet(), shards=3,
                                       band="auto",
                                       heartbeat=HEARTBEAT)
    _assert_same_result(sharded, reference)
    assert sharded.executor == "sharded[3]"
    assert sharded.shard_stats["completed"] == 3.0
    assert sharded.shard_stats["reassigned"] == 0.0


def test_single_shard_matches_multi(small_engine):
    one = small_engine.run_sharded(_mc_fleet(), shards=1, band="auto",
                                   heartbeat=HEARTBEAT)
    three = small_engine.run_sharded(_mc_fleet(), shards=3,
                                     band="auto", heartbeat=HEARTBEAT)
    _assert_same_result(one, three)
    assert one.executor == "sharded[1]"


def test_sweep_population_bit_identical(small_engine):
    population = deviation_sweep_population(
        PAPER_BIQUAD, np.linspace(-0.2, 0.2, 9))
    reference = small_engine.run(population, band="auto")
    sharded = small_engine.run_sharded(
        PopulationFleet(population, chunk_size=2), shards=3,
        band="auto", heartbeat=HEARTBEAT)
    _assert_same_result(sharded, reference)


def test_grid_population_bit_identical(small_engine):
    axis = np.linspace(-0.1, 0.1, 3)
    population = parameter_grid(PAPER_BIQUAD, axis, axis)
    reference = small_engine.run(population, band="auto")
    sharded = small_engine.run_sharded(population, shards=2,
                                       band="auto",
                                       heartbeat=HEARTBEAT)
    _assert_same_result(sharded, reference)


def test_fewer_workers_than_shards(small_engine):
    population = montecarlo_dies(PAPER_BIQUAD, DIES, sigma_f0=SIGMA,
                                 seed=SEED)
    reference = small_engine.run(population, band="auto")
    sharded = small_engine.run_sharded(_mc_fleet(chunk=2),
                                       shards=4, workers=2,
                                       band="auto",
                                       heartbeat=HEARTBEAT)
    _assert_same_result(sharded, reference)
    assert sharded.shard_stats["workers"] == 2.0
    assert sharded.shard_stats["completed"] == 4.0


def test_empty_fleet(small_engine):
    result = small_engine.run_sharded(_mc_fleet(count=0), shards=3,
                                      band="auto",
                                      heartbeat=HEARTBEAT)
    assert result.num_dies == 0
    assert result.shard_stats["planned"] == 0.0


def test_kill_drill_reassigns_and_stays_bit_identical(
        small_engine, monkeypatch):
    """SIGKILL one worker mid-shard: the shard reassigns, resumes
    from its checkpoint, and the merged result is still bit-identical."""
    population = montecarlo_dies(PAPER_BIQUAD, DIES, sigma_f0=SIGMA,
                                 seed=SEED)
    reference = small_engine.run(population, band="auto")
    # Kill the first worker right after its second progress report --
    # past a durable checkpoint, so the resume is a true mid-shard one.
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULTS",
                       "shard.worker.kill:1:1")
    before = default_registry().counter("shard_reassigned_total").value
    sharded = small_engine.run_sharded(_mc_fleet(chunk=2), shards=3,
                                       band="auto",
                                       heartbeat=HEARTBEAT)
    _assert_same_result(sharded, reference)
    assert sharded.shard_stats["reassigned"] >= 1.0
    assert sharded.shard_stats["dispatched"] > \
        sharded.shard_stats["planned"]
    after = default_registry().counter("shard_reassigned_total").value
    assert after > before


def test_worker_error_raises_with_context(small_engine, monkeypatch):
    monkeypatch.setenv("REPRO_SHARD_WORKER_FAULTS",
                       "shard.worker.error")
    with pytest.raises(ShardWorkerError) as excinfo:
        small_engine.run_sharded(_mc_fleet(), shards=2, band="auto",
                                 heartbeat=HEARTBEAT)
    assert "FaultInjected" in str(excinfo.value)


def test_coordinator_reuses_workers_across_shards(small_engine):
    """More shards than workers: each worker screens several shards
    through one process (no respawn per shard)."""
    threshold = small_engine.band().threshold
    coordinator = ShardCoordinator(
        small_engine.config, threshold, _mc_fleet(chunk=3),
        shards=4, workers=1, heartbeat=HEARTBEAT)
    merged, stats = coordinator.run()
    assert stats["completed"] == 4.0
    assert stats["workers"] == 1.0
    assert merged.num_dies == DIES
    assert merged.complete


def test_sharded_request_rejects_signatures_and_channels(small_engine):
    fleet = _mc_fleet()
    with pytest.raises(ValueError, match="signatures"):
        small_engine.submit(ScreeningRequest(
            population=fleet, mode="sharded", keep_signatures=True))
    encoder = small_engine.config.encoder
    with pytest.raises(ValueError, match="single-channel"):
        small_engine.submit(ScreeningRequest(
            population=fleet, mode="sharded",
            encoders=[encoder, encoder]))


def test_request_validates_shard_fields():
    with pytest.raises(ValueError):
        ScreeningRequest(population=[], mode="sharded", shards=0)
    with pytest.raises(ValueError):
        ScreeningRequest(population=[], mode="sharded", shard_size=0)
    with pytest.raises(ValueError):
        ScreeningRequest(population=[], mode="sharded",
                         shard_heartbeat=0.0)
    with pytest.raises(ValueError):
        ScreeningRequest(population=[], mode="sharded",
                         shard_workers=0)


def test_offset_stream_checkpoints_carry_start_index(
        small_engine, tmp_path):
    """A shard-style offset stream writes a checkpoint naming its
    global range, resumes behind it, and rejects a stream that starts
    before the checkpoint's own range."""
    from repro.campaign.checkpoint import StreamCheckpoint

    fleet = _mc_fleet(chunk=2)
    path = str(tmp_path / "shard.npz")
    result = small_engine.run_stream(fleet.chunks(4, 10), band="auto",
                                     checkpoint=path, stream_offset=4)
    assert result.num_dies == 6
    state = StreamCheckpoint.load(path)
    assert state.start_index == 4
    assert state.next_index == 10
    assert state.complete
    # Re-running the same range resumes (skips everything): the
    # result is bit-identical to the first pass.
    again = small_engine.run_stream(fleet.chunks(4, 10), band="auto",
                                    checkpoint=path, stream_offset=4)
    _assert_same_result(again, result)
    # A stream starting before the checkpoint's range cannot merge.
    with pytest.raises(ValueError, match="does not contain"):
        small_engine.run_stream(fleet.chunks(0, 10), band="auto",
                                checkpoint=path, stream_offset=0)


def test_autotuned_campaign_carves_dynamically_and_stays_identical(
        small_engine):
    """Autotuned sizing changes scheduling only, never results: the
    carved ranges still tile [0, N) and merge bit-identical."""
    population = montecarlo_dies(PAPER_BIQUAD, DIES, sigma_f0=SIGMA,
                                 seed=SEED)
    reference = small_engine.run(population, band="auto")
    sharded = small_engine.run_sharded(_mc_fleet(chunk=2), shards=3,
                                       band="auto",
                                       heartbeat=HEARTBEAT,
                                       workers=2,
                                       autotune_s=0.5)
    _assert_same_result(sharded, reference)
    assert sharded.shard_stats["planned"] >= 1.0
    assert sharded.shard_stats["completed"] == \
        sharded.shard_stats["planned"]
    assert sharded.shard_stats["reassigned"] == 0.0


def test_request_validates_autotune_seconds():
    with pytest.raises(ValueError):
        ScreeningRequest(population=[], mode="sharded",
                         shard_autotune_s=0.0)
