"""The coordinator <-> worker wire: framing and payload round-trips."""

from __future__ import annotations

import json

import pytest

from repro.shard.protocol import (
    assign_message,
    decode_message,
    encode_message,
    init_message,
    pack_payload,
    shutdown_message,
    unpack_payload,
)


def test_encode_decode_roundtrip():
    message = {"type": "progress", "shard": 3, "next_index": 512}
    line = encode_message(message)
    assert "\n" not in line
    assert decode_message(line) == message


def test_decode_rejects_junk():
    with pytest.raises(ValueError):
        decode_message("not json at all {")
    with pytest.raises(ValueError):
        decode_message(json.dumps(["a", "list"]))
    with pytest.raises(ValueError):
        decode_message(json.dumps({"no": "type"}))


def test_payload_roundtrip():
    payload = {"nested": [1, 2, 3], "text": "x" * 100}
    packed = pack_payload(payload)
    assert packed.isascii()
    assert unpack_payload(packed) == payload


def test_init_message_shape():
    message = init_message({"cfg": True}, 0.05, ("fleet",), 2, 7.5,
                           {"trace_id": "t", "parent_span_id": 9})
    line = encode_message(message)  # must be JSON-serializable
    decoded = decode_message(line)
    assert decoded["type"] == "init"
    assert decoded["threshold"] == 0.05
    assert decoded["checkpoint_every"] == 2
    assert decoded["heartbeat"] == 7.5
    assert decoded["trace"]["parent_span_id"] == 9
    assert unpack_payload(decoded["config_b64"]) == {"cfg": True}
    assert unpack_payload(decoded["fleet_b64"]) == ("fleet",)


def test_init_message_without_trace():
    message = init_message({}, None, None, 1, 5.0, None)
    decoded = decode_message(encode_message(message))
    assert decoded["trace"] is None
    assert decoded["threshold"] is None


def test_assign_and_shutdown_shapes():
    assign = decode_message(encode_message(
        assign_message(2, 100, 250, "/tmp/shard_0002.npz")))
    assert assign == {"type": "assign", "shard": 2, "lo": 100,
                      "hi": 250, "checkpoint": "/tmp/shard_0002.npz"}
    assert decode_message(encode_message(shutdown_message())) == \
        {"type": "shutdown"}
