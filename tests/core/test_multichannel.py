"""Multi-channel signatures (the multi-variable generalization)."""

import pytest

from repro.core import (
    BiquadTwoTapCut,
    ChannelSpec,
    MultiChannelTester,
)
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS


@pytest.fixture(scope="module")
def two_tap_tester(encoder):
    channels = [ChannelSpec("lp", encoder, weight=1.0),
                ChannelSpec("bp", encoder, weight=1.0)]
    return MultiChannelTester(channels, PAPER_STIMULUS,
                              BiquadTwoTapCut(PAPER_BIQUAD),
                              samples_per_period=2048)


def test_channel_validation(encoder):
    with pytest.raises(ValueError, match="at least one"):
        MultiChannelTester([], PAPER_STIMULUS,
                           BiquadTwoTapCut(PAPER_BIQUAD))
    dup = [ChannelSpec("lp", encoder), ChannelSpec("lp", encoder)]
    with pytest.raises(ValueError, match="unique"):
        MultiChannelTester(dup, PAPER_STIMULUS,
                           BiquadTwoTapCut(PAPER_BIQUAD))


def test_unknown_channel_rejected():
    cut = BiquadTwoTapCut(PAPER_BIQUAD)
    with pytest.raises(ValueError, match="unknown channel"):
        cut.lissajous_of("hp", PAPER_STIMULUS, 256)


def test_golden_signatures_per_channel(two_tap_tester):
    golden = two_tap_tester.golden_signature()
    assert set(golden.channels) == {"lp", "bp"}
    assert golden["lp"].period == pytest.approx(200e-6)
    assert golden["bp"].period == pytest.approx(200e-6)
    assert golden.total_entries() > 10


def test_lp_channel_matches_single_channel_flow(two_tap_tester, setup):
    """Channel 'lp' is exactly the paper's instrument."""
    golden_multi = two_tap_tester.golden_signature()["lp"]
    # Resample the bench golden at the same rate for a fair comparison.
    from repro.core import SignatureTester, ndf
    from repro.filters.biquad import BiquadFilter
    single = SignatureTester(setup.encoder, PAPER_STIMULUS,
                             BiquadFilter(PAPER_BIQUAD),
                             samples_per_period=2048)
    assert ndf(golden_multi, single.golden_signature()) \
        == pytest.approx(0.0, abs=1e-6)


def test_combined_ndf_zero_for_golden(two_tap_tester):
    assert two_tap_tester.combined_ndf(
        BiquadTwoTapCut(PAPER_BIQUAD)) == 0.0


def test_both_channels_see_q_deviations(two_tap_tester):
    q_shifted = BiquadTwoTapCut(PAPER_BIQUAD.with_q_deviation(0.20))
    values = two_tap_tester.channel_ndfs(q_shifted)
    assert values["lp"] > 0.02
    assert values["bp"] > 0.02


def test_f0_deviations_seen_by_both(two_tap_tester):
    f0_shifted = BiquadTwoTapCut(PAPER_BIQUAD.with_f0_deviation(0.10))
    values = two_tap_tester.channel_ndfs(f0_shifted)
    assert values["lp"] > 0.05
    assert values["bp"] > 0.05


def test_channel_ratio_separates_fault_classes(two_tap_tester):
    """Diagnosis: the (lp, bp) NDF pair points at the drifted parameter.

    An f0 fault loads both taps nearly equally (ratio ~1.15); a Q fault
    loads the LP tap roughly twice as hard as the BP tap -- so the
    ratio classifies the fault where the scalar NDF cannot.
    """
    def ratio(cut):
        values = two_tap_tester.channel_ndfs(cut)
        return values["lp"] / values["bp"]

    r_f0 = ratio(BiquadTwoTapCut(PAPER_BIQUAD.with_f0_deviation(0.10)))
    r_q = ratio(BiquadTwoTapCut(PAPER_BIQUAD.with_q_deviation(0.20)))
    assert r_q > 1.4 * r_f0


def test_combined_ndf_weighting(encoder):
    channels = [ChannelSpec("lp", encoder, weight=3.0),
                ChannelSpec("bp", encoder, weight=1.0)]
    tester = MultiChannelTester(channels, PAPER_STIMULUS,
                                BiquadTwoTapCut(PAPER_BIQUAD),
                                samples_per_period=1024)
    cut = BiquadTwoTapCut(PAPER_BIQUAD.with_q_deviation(0.2))
    per_channel = tester.channel_ndfs(cut)
    combined = tester.combined_ndf(cut)
    expected = (3 * per_channel["lp"] + per_channel["bp"]) / 4
    assert combined == pytest.approx(expected, rel=1e-9)


def test_bp_trace_rebias_keeps_window(two_tap_tester):
    cut = BiquadTwoTapCut(PAPER_BIQUAD)
    trace = cut.lissajous_of("bp", PAPER_STIMULUS, 1024)
    xmin, xmax, ymin, ymax = trace.bounding_box()
    assert 0.0 <= ymin <= ymax <= 1.0
