"""Capture models: bisection refinement and the Fig. 5 hardware model."""

import numpy as np
import pytest

from repro.core.boundaries import LinearBoundary
from repro.core.capture import (
    AsyncCapture,
    CaptureConfig,
    capture_signature,
)
from repro.core.signature import Signature
from repro.core.zones import ZoneEncoder
from repro.signals.lissajous import LissajousTrace
from repro.signals.waveform import Waveform


@pytest.fixture
def circle_trace():
    """Circle traced over 1 ms, centred at (0.5, 0.5).

    The 45-degree starting phase keeps the first sample off both
    quadrant boundaries, so every crossing lies strictly inside the
    period: x = 0.5 at t = 1/8 and 5/8 ms, y = 0.5 at 3/8 and 7/8 ms.
    """
    t = np.arange(512) * (1e-3 / 512)
    phase = 2 * np.pi * 1e3 * t + np.pi / 4
    x = 0.5 + 0.4 * np.cos(phase)
    y = 0.5 + 0.4 * np.sin(phase)
    return LissajousTrace(Waveform(t, x), Waveform(t, y), 1e-3)


@pytest.fixture
def quad_encoder():
    """Vertical + horizontal midlines: four quadrant zones."""
    return ZoneEncoder([LinearBoundary.vertical("v", 0.5),
                        LinearBoundary.horizontal("h", 0.5)])


def test_circle_visits_four_quadrants(quad_encoder, circle_trace):
    sig = capture_signature(quad_encoder, circle_trace, refine=False)
    assert sig.distinct_codes() == {0b00, 0b01, 0b10, 0b11}
    assert sig.period == pytest.approx(1e-3)


EXPECTED_CROSSINGS = np.array([0.125e-3, 0.375e-3, 0.625e-3, 0.875e-3])


def test_refined_crossings_are_exact(quad_encoder, circle_trace):
    """Refined transition instants land on the exact crossing angles,
    far beyond the 512-sample grid resolution."""
    sig = capture_signature(quad_encoder, circle_trace, refine=True)
    got = sig.breakpoints()
    assert len(got) == 4
    np.testing.assert_allclose(got, EXPECTED_CROSSINGS, atol=2e-8)


def test_refinement_beats_sampling_quantization(quad_encoder,
                                                circle_trace):
    coarse = capture_signature(quad_encoder, circle_trace, refine=False)
    fine = capture_signature(quad_encoder, circle_trace, refine=True)
    dt = 1e-3 / 512
    err_coarse = np.max(np.abs(coarse.breakpoints() - EXPECTED_CROSSINGS))
    err_fine = np.max(np.abs(fine.breakpoints() - EXPECTED_CROSSINGS))
    assert err_fine < err_coarse / 100
    assert err_coarse <= dt * (1 + 1e-9)  # bounded by the grid


def test_constant_code_trace(quad_encoder):
    t = np.arange(64) * (1e-3 / 64)
    trace = LissajousTrace(Waveform(t, np.full(64, 0.2)),
                           Waveform(t, np.full(64, 0.2)), 1e-3)
    sig = capture_signature(quad_encoder, trace)
    assert len(sig) == 1
    assert sig.entries[0].code == 0


# ----------------------------------------------------------------------
# Asynchronous capture (Fig. 5)
# ----------------------------------------------------------------------

def test_capture_config_validation():
    with pytest.raises(ValueError):
        CaptureConfig(clock_hz=0.0)
    with pytest.raises(ValueError):
        CaptureConfig(counter_bits=0)
    cfg = CaptureConfig(clock_hz=10e6, counter_bits=8)
    assert cfg.tick == pytest.approx(1e-7)
    assert cfg.max_count == 255


def test_quantize_rounds_to_clock_edges(quad_encoder):
    ideal = Signature.from_pairs(
        [(0, 0.24e-3), (1, 0.26e-3), (3, 0.25e-3), (2, 0.25e-3)])
    cap = AsyncCapture(quad_encoder, CaptureConfig(clock_hz=1e5))  # 10 us
    quantized = cap.quantize(ideal)
    ticks = quantized.durations() / 1e-5
    np.testing.assert_allclose(ticks, np.round(ticks), atol=1e-9)
    assert quantized.period == pytest.approx(1e-3)
    assert quantized.codes() == ideal.codes()


def test_quantize_collapses_glitches(quad_encoder):
    """Zones living entirely between two clock edges vanish.

    The glitch spans 0.41-0.411 ms; both of its transitions round up to
    the same 100 us edge (tick 5), so the synchronized capture only
    sees the final code of the burst.
    """
    ideal = Signature.from_pairs(
        [(0, 0.41e-3), (1, 1e-6), (3, 0.59e-3 - 1e-6)])
    cap = AsyncCapture(quad_encoder, CaptureConfig(clock_hz=1e4))  # 100 us
    quantized = cap.quantize(ideal)
    assert 1 not in quantized.distinct_codes()
    assert quantized.codes() == [0, 3]


def test_quantize_keeps_glitch_spanning_an_edge(quad_encoder):
    """A short zone that straddles a clock edge is captured (one tick)."""
    ideal = Signature.from_pairs(
        [(0, 0.4e-3 - 0.5e-6), (1, 1e-6), (3, 0.6e-3 - 0.5e-6)])
    cap = AsyncCapture(quad_encoder, CaptureConfig(clock_hz=1e4))
    quantized = cap.quantize(ideal)
    assert quantized.codes() == [0, 1, 3]
    assert quantized.entries[1].duration == pytest.approx(1e-4)


def test_counter_saturation(quad_encoder):
    """Dwells longer than 2^m - 1 ticks saturate the time register."""
    ideal = Signature.from_pairs([(0, 0.9e-3), (1, 0.1e-3)])
    cfg = CaptureConfig(clock_hz=1e6, counter_bits=8)  # max 255 us
    quantized = AsyncCapture(quad_encoder, cfg).quantize(ideal)
    assert quantized.entries[0].duration == pytest.approx(255e-6)
    # Saturation shrinks the reported period: the signature keeps its
    # own (shorter) total; the paper leaves overflow handling open.
    assert quantized.period < ideal.period


def test_counter_wrap_mode(quad_encoder):
    ideal = Signature.from_pairs([(0, 0.3e-3), (1, 0.7e-3)])
    cfg = CaptureConfig(clock_hz=1e6, counter_bits=8, wrap=True)
    quantized = AsyncCapture(quad_encoder, cfg).quantize(ideal)
    # 700 ticks wraps modulo 256 -> 188 ticks.
    assert quantized.entries[1].duration == pytest.approx(188e-6)


def test_fine_clock_approaches_ideal(quad_encoder, circle_trace):
    ideal = capture_signature(quad_encoder, circle_trace, refine=True)
    cap = AsyncCapture(quad_encoder, CaptureConfig(clock_hz=100e6))
    quantized = cap.capture(circle_trace)
    assert quantized.codes() == ideal.codes()
    np.testing.assert_allclose(quantized.breakpoints(),
                               ideal.breakpoints(), atol=2e-8)
