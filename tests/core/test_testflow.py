"""End-to-end tester: caching, sweeps, noise populations, prefilter."""

import numpy as np
import pytest

from repro.core.capture import AsyncCapture, CaptureConfig
from repro.core.decision import DecisionBand
from repro.signals.filtering import BandLimiter
from repro.signals.noise import NoiseModel
from repro.paper import PAPER_STIMULUS, paper_setup


def test_golden_signature_cached(setup):
    a = setup.tester.golden_signature()
    b = setup.tester.golden_signature()
    assert a is b


def test_golden_ndf_is_zero(setup, golden_filter):
    assert setup.tester.ndf_of(golden_filter) == 0.0


def test_measure_with_band(setup):
    band = DecisionBand(0.05)
    good = setup.tester.measure(setup.deviated_filter(0.01), band)
    bad = setup.tester.measure(setup.deviated_filter(0.15), band)
    assert good.verdict.passed
    assert not bad.verdict.passed
    assert good.ndf < bad.ndf


def test_measure_without_band(setup):
    result = setup.tester.measure(setup.deviated_filter(0.05))
    assert result.verdict is None
    assert result.ndf > 0


def test_sweep_sorted_and_monotone_sides(setup):
    cal = setup.tester.sweep_with([-0.1, 0.05, -0.05, 0.1],
                                  setup.deviated_filter)
    assert np.all(np.diff(cal.deviations) > 0)
    assert cal.ndf_at(0.1) > cal.ndf_at(0.05)
    assert cal.ndf_at(-0.1) > cal.ndf_at(-0.05)


def test_noisy_population_statistics(setup):
    noise = NoiseModel(0.015, rng=0)
    pop = setup.tester.noisy_ndf_population(setup.golden_filter(), noise,
                                            repeats=5)
    assert pop.shape == (5,)
    assert np.all(pop >= 0)
    assert np.all(pop < 0.2)  # noise floor, not gross corruption


def test_detection_rate(setup):
    noise = NoiseModel(0.015, rng=1)
    band = DecisionBand(0.05)
    rate_big = setup.tester.detection_rate(setup.deviated_filter(0.20),
                                           noise, band, repeats=4)
    assert rate_big == 1.0
    rate_good = setup.tester.detection_rate(setup.golden_filter(),
                                            noise, band, repeats=4)
    assert rate_good < 1.0


def test_prefilter_keeps_golden_ndf_zero():
    """The front-end pole delays both captures equally: NDF stays 0."""
    bench = paper_setup(prefilter=BandLimiter(200e3),
                        samples_per_period=2048)
    assert bench.tester.ndf_of(bench.golden_filter()) == 0.0


def test_prefilter_preserves_deviation_sensitivity():
    plain = paper_setup(samples_per_period=2048)
    filtered = paper_setup(prefilter=BandLimiter(200e3),
                           samples_per_period=2048)
    v_plain = plain.tester.ndf_of(plain.deviated_filter(0.10))
    v_filt = filtered.tester.ndf_of(filtered.deviated_filter(0.10))
    assert v_filt == pytest.approx(v_plain, rel=0.15)


def test_async_capture_in_flow():
    encoder_setup = paper_setup(
        capture=None, samples_per_period=2048)
    quantized_setup = paper_setup(samples_per_period=2048)
    quantized_setup.tester.capture = AsyncCapture(
        quantized_setup.encoder, CaptureConfig(clock_hz=10e6))
    v_ideal = encoder_setup.tester.ndf_of(
        encoder_setup.deviated_filter(0.10))
    v_quant = quantized_setup.tester.ndf_of(
        quantized_setup.deviated_filter(0.10))
    # 10 MHz clock on a 200 us period: quantization error well under 1 %.
    assert v_quant == pytest.approx(v_ideal, rel=0.02)


def test_trace_of_applies_noise_and_filter():
    noise = NoiseModel(0.015, rng=3)
    bench = paper_setup(noise=noise, prefilter=BandLimiter(200e3),
                        samples_per_period=2048)
    trace = bench.tester.trace_of(bench.golden_filter())
    clean = bench.golden_filter().lissajous(PAPER_STIMULUS, 2048)
    # Noise made it through (filtered, so small but nonzero).
    assert not np.allclose(trace.y.values, clean.y.values)
