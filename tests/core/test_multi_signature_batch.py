"""MultiSignatureBatch: per-channel parity with independent batches.

The multi-channel batch is a thin stack of single-channel CSR batches;
every operation (extraction, NDF, select, concatenate) must be
bit-identical to running K independent :class:`SignatureBatch`
pipelines -- nothing may be shared or re-derived across channels.
"""

import numpy as np
import pytest

from repro.core.multi_signature_batch import MultiSignatureBatch
from repro.core.signature import Signature
from repro.core.signature_batch import SignatureBatch

pytestmark = pytest.mark.campaign


def _code_stacks(n=7, t=40, k=3, seed=5):
    rng = np.random.default_rng(seed)
    times = np.sort(rng.uniform(0.0, 0.9, t - 1))
    times = np.concatenate([[0.0], times])
    return times, [rng.integers(0, 8, size=(n, t))
                   for __ in range(k)], 1.0


def _goldens(k=3, seed=9):
    rng = np.random.default_rng(seed)
    goldens = []
    for __ in range(k):
        runs = rng.integers(2, 6)
        codes = rng.integers(0, 8, runs)
        durations = rng.uniform(0.05, 0.4, runs)
        durations *= 1.0 / durations.sum()
        goldens.append(Signature.from_pairs(
            zip(codes.tolist(), durations.tolist()), 1.0))
    return goldens


def test_from_code_stacks_matches_independent_extraction():
    times, stacks, period = _code_stacks()
    multi = MultiSignatureBatch.from_code_stacks(times, stacks, period)
    assert multi.num_channels == 3
    assert len(multi) == 7
    for k, stack in enumerate(stacks):
        single = SignatureBatch.from_code_stack(times, stack, period)
        channel = multi.channel(k)
        assert np.array_equal(channel.codes, single.codes)
        assert np.array_equal(channel.durations, single.durations)
        assert np.array_equal(channel.row_offsets, single.row_offsets)
        assert np.array_equal(channel.periods, single.periods)


def test_ndf_to_bit_identical_to_independent_runs():
    times, stacks, period = _code_stacks()
    multi = MultiSignatureBatch.from_code_stacks(times, stacks, period)
    goldens = _goldens()
    matrix = multi.ndf_to(goldens)
    assert matrix.shape == (7, 3)
    for k, stack in enumerate(stacks):
        single = SignatureBatch.from_code_stack(times, stack, period)
        assert np.array_equal(matrix[:, k], single.ndf_to(goldens[k]))


def test_select_parity_and_alignment():
    times, stacks, period = _code_stacks()
    multi = MultiSignatureBatch.from_code_stacks(times, stacks, period)
    picks = np.asarray([5, 0, 3])
    sub = multi.select(picks)
    assert len(sub) == 3 and sub.num_channels == 3
    for k, stack in enumerate(stacks):
        single = SignatureBatch.from_code_stack(times, stack,
                                                period).select(picks)
        assert np.array_equal(sub.channel(k).codes, single.codes)
        assert np.array_equal(sub.channel(k).durations,
                              single.durations)


def test_concatenate_parity():
    times, stacks, period = _code_stacks()
    first = MultiSignatureBatch.from_code_stacks(
        times, [s[:3] for s in stacks], period)
    second = MultiSignatureBatch.from_code_stacks(
        times, [s[3:] for s in stacks], period)
    merged = MultiSignatureBatch.concatenate([first, second])
    whole = MultiSignatureBatch.from_code_stacks(times, stacks, period)
    assert len(merged) == len(whole)
    for k in range(3):
        assert np.array_equal(merged.channel(k).codes,
                              whole.channel(k).codes)
        assert np.array_equal(merged.channel(k).durations,
                              whole.channel(k).durations)
        assert np.array_equal(merged.channel(k).row_offsets,
                              whole.channel(k).row_offsets)


def test_empty_and_concatenate_with_empty():
    empty = MultiSignatureBatch.empty(2)
    assert len(empty) == 0 and empty.num_channels == 2
    times, stacks, period = _code_stacks(k=2)
    multi = MultiSignatureBatch.from_code_stacks(times, stacks, period)
    merged = MultiSignatureBatch.concatenate([empty, multi])
    assert len(merged) == len(multi)
    for k in range(2):
        assert np.array_equal(merged.channel(k).codes,
                              multi.channel(k).codes)


def test_row_unpacks_per_channel_signatures():
    times, stacks, period = _code_stacks()
    multi = MultiSignatureBatch.from_code_stacks(times, stacks, period)
    signatures = multi.row(2)
    assert len(signatures) == 3
    for k, signature in enumerate(signatures):
        expected = Signature.from_samples(times, stacks[k][2], period)
        assert signature == expected


def test_validation_errors():
    times, stacks, period = _code_stacks()
    with pytest.raises(ValueError):
        MultiSignatureBatch([])
    with pytest.raises(ValueError):
        MultiSignatureBatch.empty(0)
    short = SignatureBatch.from_code_stack(times, stacks[0][:3], period)
    full = SignatureBatch.from_code_stack(times, stacks[1], period)
    with pytest.raises(ValueError):
        MultiSignatureBatch([short, full])
    multi = MultiSignatureBatch.from_code_stacks(times, stacks, period)
    with pytest.raises(ValueError):
        multi.ndf_to(_goldens(k=2))
    with pytest.raises(ValueError):
        MultiSignatureBatch.concatenate([])
    with pytest.raises(ValueError):
        MultiSignatureBatch.concatenate(
            [multi, MultiSignatureBatch.empty(2)])
