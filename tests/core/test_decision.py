"""Decision bands, threshold calibration and sweep diagnostics."""

import numpy as np
import pytest

from repro.core.decision import (
    DecisionBand,
    TestVerdict,
    ThresholdCalibration,
)


@pytest.fixture
def linear_calibration():
    """A symmetric, perfectly linear sweep: NDF = |deviation|."""
    devs = np.linspace(-0.2, 0.2, 21)
    return ThresholdCalibration(devs, np.abs(devs))


def test_verdict():
    v = TestVerdict(ndf=0.05, threshold=0.1)
    assert v.passed
    assert v.margin == pytest.approx(0.05)
    assert "PASS" in str(v)
    f = TestVerdict(ndf=0.2, threshold=0.1)
    assert not f.passed
    assert "FAIL" in str(f)


def test_band_decide():
    band = DecisionBand(0.08)
    assert band.decide(0.05).passed
    assert not band.decide(0.09).passed
    with pytest.raises(ValueError):
        DecisionBand(-0.1)


def test_calibration_validation():
    with pytest.raises(ValueError):
        ThresholdCalibration(np.array([0.0, 0.0]), np.array([1.0, 2.0]))
    with pytest.raises(ValueError):
        ThresholdCalibration(np.array([0.0, 1.0]), np.array([1.0]))


def test_threshold_for_tolerance(linear_calibration):
    assert linear_calibration.threshold_for_tolerance(0.05) \
        == pytest.approx(0.05)
    with pytest.raises(ValueError):
        linear_calibration.threshold_for_tolerance(0.0)


def test_threshold_uses_smaller_edge():
    """Asymmetric sweeps must take the conservative (smaller) edge."""
    devs = np.linspace(-0.2, 0.2, 21)
    ndfs = np.where(devs < 0, 2.0 * np.abs(devs), np.abs(devs))
    cal = ThresholdCalibration(devs, ndfs)
    assert cal.threshold_for_tolerance(0.1) == pytest.approx(0.1)


def test_band_for_tolerance_verdicts(linear_calibration):
    band = linear_calibration.band_for_tolerance(0.05)
    assert band.decide(linear_calibration.ndf_at(0.03)).passed
    assert not band.decide(linear_calibration.ndf_at(0.08)).passed


def test_detectable_deviation(linear_calibration):
    neg, pos = linear_calibration.detectable_deviation(0.03)
    assert pos == pytest.approx(0.03)
    assert neg == pytest.approx(-0.03)


def test_detectable_deviation_unreachable():
    devs = np.linspace(-0.1, 0.1, 11)
    cal = ThresholdCalibration(devs, np.zeros(11))
    neg, pos = cal.detectable_deviation(0.5)
    assert np.isnan(pos)


def test_linearity_r2(linear_calibration):
    r2_neg, r2_pos = linear_calibration.linearity_r2()
    assert r2_neg == pytest.approx(1.0)
    assert r2_pos == pytest.approx(1.0)


def test_linearity_r2_detects_nonlinearity():
    devs = np.linspace(-0.2, 0.2, 21)
    cal = ThresholdCalibration(devs, devs ** 2)
    __, r2_pos = cal.linearity_r2()
    assert r2_pos < 0.99


def test_symmetry_error(linear_calibration):
    assert linear_calibration.symmetry_error() == pytest.approx(0.0)
    devs = np.linspace(-0.2, 0.2, 21)
    cal = ThresholdCalibration(devs, np.where(devs < 0, 2 * np.abs(devs),
                                              np.abs(devs)))
    assert cal.symmetry_error() > 0.05


def test_ndf_at_interpolates(linear_calibration):
    assert linear_calibration.ndf_at(0.055) == pytest.approx(0.055)
