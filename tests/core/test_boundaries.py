"""Boundary abstraction: bits, origin sides, locus extraction."""

import numpy as np
import pytest

from repro.core.boundaries import CallableBoundary, LinearBoundary


def test_linear_boundary_bits():
    line = LinearBoundary.vertical("v", 0.5)
    assert line.bit(0.2, 0.9) == 0  # origin side
    assert line.bit(0.8, 0.1) == 1
    # Exactly on the line: belongs to the origin side.
    assert line.bit(0.5, 0.3) == 0


def test_horizontal_line():
    line = LinearBoundary.horizontal("h", 0.25)
    assert line.bit(0.9, 0.1) == 0
    assert line.bit(0.9, 0.9) == 1


def test_degenerate_line_rejected():
    with pytest.raises(ValueError):
        LinearBoundary("bad", 0.0, 0.0, 1.0)


def test_line_through_origin_needs_reference():
    line = LinearBoundary("diag", -1.0, 1.0, 0.0)  # y = x, no reference
    with pytest.raises(ValueError, match="reference"):
        line.bit(0.3, 0.7)


def test_diagonal_with_reference():
    diag = LinearBoundary.diagonal("d")
    assert diag.bit(0.7, 0.3) == 0  # below: origin side by convention
    assert diag.bit(0.3, 0.7) == 1


def test_reference_point_on_boundary_rejected():
    line = LinearBoundary("diag", -1.0, 1.0, 0.0,
                          reference_point=(0.4, 0.4))
    with pytest.raises(ValueError, match="reference point lies"):
        line.bit(0.3, 0.7)


def test_bit_vectorization():
    line = LinearBoundary.vertical("v", 0.5)
    xs = np.array([0.1, 0.9, 0.4])
    ys = np.zeros(3)
    np.testing.assert_array_equal(line.bit(xs, ys), [0, 1, 0])


def test_callable_boundary_circle():
    circle = CallableBoundary(
        "circle", lambda x, y: (np.asarray(x) - 0.5) ** 2
        + (np.asarray(y) - 0.5) ** 2 - 0.04)
    assert circle.bit(0.5, 0.5) == 1  # inside, origin outside
    assert circle.bit(0.0, 0.0) == 0


def test_locus_points_of_line():
    line = LinearBoundary("l", -0.5, 1.0, -0.2)  # y = 0.5 x + 0.2
    xs = np.linspace(0.0, 1.0, 11)
    ys = line.locus_points(xs)
    np.testing.assert_allclose(ys, 0.5 * xs + 0.2, atol=1e-7)


def test_locus_points_outside_window_nan():
    line = LinearBoundary.horizontal("h", 2.0)  # above the window
    ys = line.locus_points(np.linspace(0, 1, 5))
    assert np.all(np.isnan(ys))


def test_locus_sweep_y():
    line = LinearBoundary.vertical("v", 0.3)
    xs = line.locus_points(np.linspace(0, 1, 5), sweep="y")
    np.testing.assert_allclose(xs, 0.3, atol=1e-7)


def test_origin_sign_cached():
    line = LinearBoundary.vertical("v", 0.5)
    assert line.origin_sign == line.origin_sign  # stable and cached
    assert line.origin_sign in (-1.0, 1.0)
