"""Signature data structure: construction, merging, the S(t) function."""

import numpy as np
import pytest

from repro.core.signature import Signature, SignatureEntry


def test_entry_validation():
    with pytest.raises(ValueError):
        SignatureEntry(1, 0.0)
    with pytest.raises(ValueError):
        SignatureEntry(1, -1.0)
    with pytest.raises(ValueError):
        SignatureEntry(-2, 1.0)


def test_equal_neighbours_merge():
    sig = Signature.from_pairs([(3, 1.0), (3, 2.0), (5, 1.0)])
    assert len(sig) == 2
    assert sig.entries[0] == SignatureEntry(3, 3.0)


def test_first_last_may_share_code():
    sig = Signature.from_pairs([(3, 1.0), (5, 2.0), (3, 1.0)])
    assert len(sig) == 3
    assert sig.codes() == [3, 5, 3]


def test_period_consistency_checked():
    with pytest.raises(ValueError, match="period"):
        Signature.from_pairs([(1, 1.0)], period=2.0)


def test_empty_rejected():
    with pytest.raises(ValueError):
        Signature([])


def test_from_samples():
    times = np.array([0.0, 0.25, 0.5, 0.75])
    codes = np.array([1, 1, 2, 3])
    sig = Signature.from_samples(times, codes, 1.0)
    assert sig.codes() == [1, 2, 3]
    np.testing.assert_allclose(sig.durations(), [0.5, 0.25, 0.25])


def test_from_samples_validation():
    with pytest.raises(ValueError, match="start at t = 0"):
        Signature.from_samples([0.1, 0.5], [1, 2], 1.0)
    with pytest.raises(ValueError, match="below the period"):
        Signature.from_samples([0.0, 1.0], [1, 2], 1.0)


def test_from_transitions():
    sig = Signature.from_transitions(7, [(0.2, 3), (0.6, 7)], 1.0)
    assert sig.codes() == [7, 3, 7]
    np.testing.assert_allclose(sig.durations(), [0.2, 0.4, 0.4])


def test_from_transitions_validation():
    with pytest.raises(ValueError):
        Signature.from_transitions(1, [(0.5, 2), (0.3, 3)], 1.0)
    with pytest.raises(ValueError):
        Signature.from_transitions(1, [(1.5, 2)], 1.0)


def test_code_at_lookup():
    sig = Signature.from_pairs([(1, 0.5), (2, 0.3), (4, 0.2)])
    assert sig.code_at(0.0) == 1
    assert sig.code_at(0.49) == 1
    assert sig.code_at(0.5) == 2
    assert sig.code_at(0.79) == 2
    assert sig.code_at(0.9) == 4
    # Wraps around the period.
    assert sig.code_at(1.1) == 1


def test_code_at_vectorized():
    sig = Signature.from_pairs([(1, 0.5), (2, 0.5)])
    out = sig.code_at(np.array([0.1, 0.6, 1.2]))
    np.testing.assert_array_equal(out, [1, 2, 1])


def test_durations_sum_to_period():
    sig = Signature.from_pairs([(1, 0.2), (2, 0.3), (3, 0.5)])
    assert sig.durations().sum() == pytest.approx(sig.period)


def test_breakpoints_and_start_times():
    sig = Signature.from_pairs([(1, 0.2), (2, 0.3), (3, 0.5)])
    np.testing.assert_allclose(sig.breakpoints(), [0.2, 0.5])
    np.testing.assert_allclose(sig.start_times(), [0.0, 0.2, 0.5])


def test_distinct_codes():
    sig = Signature.from_pairs([(1, 0.2), (2, 0.3), (1, 0.5)])
    assert sig.distinct_codes() == {1, 2}


def test_chronogram_staircase():
    sig = Signature.from_pairs([(1, 0.5), (9, 0.5)])
    times, codes = sig.chronogram(10)
    assert codes[:5].tolist() == [1] * 5
    assert codes[5:].tolist() == [9] * 5


def test_equality():
    a = Signature.from_pairs([(1, 0.5), (2, 0.5)])
    b = Signature.from_pairs([(1, 0.5), (2, 0.5)])
    c = Signature.from_pairs([(1, 0.4), (2, 0.6)])
    assert a == b
    assert a != c


def test_rotation_preserves_content():
    sig = Signature.from_pairs([(1, 0.2), (2, 0.3), (3, 0.5)])
    rot = sig.rotated(0.25)
    assert rot.period == pytest.approx(sig.period)
    assert rot.durations().sum() == pytest.approx(sig.period)
    # The code active at old t=0.25 is the new t=0 code.
    assert rot.code_at(0.0) == sig.code_at(0.25)
    # Dwell-time totals per code are invariant under rotation.
    def totals(s):
        out = {}
        for e in s:
            out[e.code] = out.get(e.code, 0.0) + e.duration
        return out
    t_orig = totals(sig)
    t_rot = totals(rot)
    assert set(t_orig) == set(t_rot)
    for code in t_orig:
        assert t_orig[code] == pytest.approx(t_rot[code])


def test_rotation_by_zero_is_identity():
    sig = Signature.from_pairs([(1, 0.2), (2, 0.8)])
    assert sig.rotated(0.0) == sig
    assert sig.rotated(sig.period) == sig
