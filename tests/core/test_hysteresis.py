"""Hysteretic capture: chatter suppression and systematic lag."""

import numpy as np
import pytest

from repro.core import HystereticEncoder, capture_signature, ndf
from repro.core.boundaries import LinearBoundary
from repro.core.zones import ZoneEncoder
from repro.signals import NoiseModel, Waveform
from repro.signals.lissajous import LissajousTrace


@pytest.fixture
def quad_encoder():
    return ZoneEncoder([LinearBoundary.vertical("v", 0.5),
                        LinearBoundary.horizontal("h", 0.5)])


@pytest.fixture
def circle_trace():
    # The extra 1 mrad keeps crossings strictly between samples, so the
    # on-boundary tie-breaking of the two capture models never differs.
    t = np.arange(2048) * (1e-3 / 2048)
    phase = 2 * np.pi * 1e3 * t + np.pi / 4 + 1e-3
    x = 0.5 + 0.4 * np.cos(phase)
    y = 0.5 + 0.4 * np.sin(phase)
    return LissajousTrace(Waveform(t, x), Waveform(t, y), 1e-3)


def test_margin_validation(quad_encoder):
    with pytest.raises(ValueError):
        HystereticEncoder(quad_encoder, margin_volts=-0.01)


def test_signed_distance_of_line(quad_encoder, circle_trace):
    """For the vertical midline the signed distance is exactly x - 0.5."""
    hyst = HystereticEncoder(quad_encoder, 0.0)
    xs, ys = circle_trace.points()
    d = hyst.signed_distances(quad_encoder.boundaries[0], xs, ys)
    np.testing.assert_allclose(d, xs - 0.5, atol=1e-6)


def test_zero_margin_matches_memoryless(quad_encoder, circle_trace):
    hyst = HystereticEncoder(quad_encoder, 0.0)
    sig_h = hyst.capture(circle_trace)
    sig_m = capture_signature(quad_encoder, circle_trace, refine=False)
    assert sig_h.codes() == sig_m.codes()
    np.testing.assert_allclose(sig_h.durations(), sig_m.durations(),
                               atol=1e-9)


def test_hysteresis_delays_crossings(quad_encoder, circle_trace):
    """With margin h, crossings report late by ~h / speed."""
    hyst = HystereticEncoder(quad_encoder, 0.02)
    sig = hyst.capture(circle_trace)
    ideal = capture_signature(quad_encoder, circle_trace, refine=False)
    # Same traversal, later breakpoints.
    assert sig.codes() == ideal.codes()
    delay = sig.breakpoints() - ideal.breakpoints()
    # Trace speed on the circle: 2 pi R / T; expected lag = h / speed.
    speed = 2 * np.pi * 0.4 / 1e-3
    expected = 0.02 / speed
    assert np.all(delay > 0)
    np.testing.assert_allclose(delay, expected, rtol=0.2)


def test_chatter_suppression_under_noise(quad_encoder, circle_trace):
    noise = NoiseModel(0.015, rng=3)
    x, y = noise.corrupt_pair(circle_trace.x, circle_trace.y)
    noisy = LissajousTrace(x, y, circle_trace.period)

    memoryless = capture_signature(quad_encoder, noisy, refine=False)
    hyst = HystereticEncoder(quad_encoder, margin_volts=0.02)
    clean = hyst.capture(noisy)

    # The memoryless capture chatters (many extra transitions); the
    # hysteretic one recovers nearly the noise-free four transitions.
    assert len(memoryless) > 3 * len(clean)
    assert len(clean) <= 8


def test_golden_vs_golden_ndf_zero_with_hysteresis(setup):
    """Both captures lag identically: NDF(golden, golden) stays 0."""
    hyst = HystereticEncoder(setup.encoder, margin_volts=0.01)
    trace = setup.tester.trace_of(setup.golden_filter())
    a = hyst.capture(trace)
    b = hyst.capture(trace)
    assert ndf(a, b) == 0.0


def test_hysteresis_preserves_deviation_sensitivity(setup):
    """NDF(+10 %) through hysteretic capture stays near the ideal 0.10."""
    hyst = HystereticEncoder(setup.encoder, margin_volts=0.005)
    golden = hyst.capture(setup.tester.trace_of(setup.golden_filter()))
    shifted = hyst.capture(
        setup.tester.trace_of(setup.deviated_filter(0.10)))
    assert ndf(shifted, golden) == pytest.approx(0.10, abs=0.015)


def test_warmup_makes_capture_periodic(quad_encoder, circle_trace):
    """The two-pass warm-up removes the initial-state artifact: the
    first entry's code equals the memoryless steady-state code at t=0
    only if the state agrees; more robustly, durations sum to T."""
    hyst = HystereticEncoder(quad_encoder, margin_volts=0.05)
    sig = hyst.capture(circle_trace)
    assert sig.durations().sum() == pytest.approx(circle_trace.period)
