"""The NDF metric (Eq. 2): exactness, metric properties, chronograms."""

import numpy as np
import pytest

from repro.core.ndf import (
    hamming_chronogram,
    max_hamming_excursion,
    ndf,
    ndf_sampled,
)
from repro.core.signature import Signature


def sig(pairs, period=None):
    return Signature.from_pairs(pairs, period)


def test_identical_signatures_have_zero_ndf():
    a = sig([(1, 0.3), (2, 0.7)])
    assert ndf(a, a) == 0.0


def test_known_hand_computed_value():
    """One quarter of the period at Hamming distance 1 -> NDF = 0.25."""
    golden = sig([(0b00, 0.5), (0b01, 0.5)])
    observed = sig([(0b00, 0.25), (0b01, 0.75)])
    assert ndf(observed, golden) == pytest.approx(0.25)


def test_weighted_by_duration():
    """NDF integrates dH * dt: a distance-2 sliver counts twice."""
    golden = sig([(0b00, 1.0)])
    observed = sig([(0b00, 0.9), (0b11, 0.1)])
    assert ndf(observed, golden) == pytest.approx(0.2)


def test_symmetry():
    a = sig([(1, 0.3), (2, 0.4), (7, 0.3)])
    b = sig([(1, 0.5), (3, 0.5)])
    assert ndf(a, b) == pytest.approx(ndf(b, a))


def test_period_mismatch_rejected():
    a = sig([(1, 1.0)])
    b = sig([(1, 2.0)])
    with pytest.raises(ValueError, match="period"):
        ndf(a, b)


def test_bounded_by_code_width():
    a = sig([(0b000000, 1.0)])
    b = sig([(0b111111, 1.0)])
    assert ndf(a, b) == pytest.approx(6.0)  # max possible for 6 bits


def test_joint_rotation_invariance():
    a = sig([(1, 0.2), (2, 0.5), (4, 0.3)])
    b = sig([(1, 0.4), (6, 0.6)])
    base = ndf(a, b)
    for dt in (0.1, 0.25, 0.613):
        assert ndf(a.rotated(dt), b.rotated(dt)) == pytest.approx(base,
                                                                  abs=1e-12)


def test_sampled_estimator_converges_to_exact():
    a = sig([(1, 0.21), (3, 0.33), (2, 0.46)])
    b = sig([(1, 0.37), (2, 0.63)])
    exact = ndf(a, b)
    estimate = ndf_sampled(a, b, num_samples=200000)
    assert estimate == pytest.approx(exact, abs=5e-4)


def test_triangle_inequality():
    """dH is a metric, so NDF inherits the triangle inequality."""
    a = sig([(0b001, 0.5), (0b011, 0.5)])
    b = sig([(0b000, 0.3), (0b111, 0.7)])
    c = sig([(0b101, 1.0)])
    assert ndf(a, c) <= ndf(a, b) + ndf(b, c) + 1e-12


def test_chronogram_levels():
    golden = sig([(0b00, 0.5), (0b01, 0.5)])
    observed = sig([(0b11, 0.5), (0b01, 0.5)])
    times, dh = hamming_chronogram(observed, golden, num_points=100)
    assert np.all(dh[:50] == 2)
    assert np.all(dh[50:] == 0)


def test_max_hamming_excursion():
    golden = sig([(0b00, 0.5), (0b01, 0.5)])
    observed = sig([(0b00, 0.4), (0b11, 0.6)])
    t, d = max_hamming_excursion(observed, golden)
    assert d == 2  # 0b11 vs 0b00 in [0.4, 0.5)
    assert 0.4 <= t <= 0.5


def test_ndf_of_paper_pair(setup, golden_signature, defective_signature):
    """The +10 % measurement from the conftest bench: the Fig. 7 anchor."""
    value = ndf(defective_signature, golden_signature)
    assert value == pytest.approx(0.1021, abs=0.01)
