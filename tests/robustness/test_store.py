"""Artifact-store durability: torn writes, corruption, concurrency,
restart warm-up with zero recompute."""

import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.campaign import CampaignEngine, GoldenCache
from repro.store import (
    STORE_ENV_VAR,
    ArtifactStore,
    atomic_write_bytes,
    default_store_root,
    key_id,
)
from repro.testing.faultinject import inject

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture()
def store(tmp_path):
    return ArtifactStore(str(tmp_path / "store"))


def _engine(store, samples=SAMPLES):
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

    return CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=samples, cache=GoldenCache(store=store))


# ----------------------------------------------------------------------
# Addressing and layout
# ----------------------------------------------------------------------
def test_default_root_honors_env(monkeypatch):
    monkeypatch.setenv(STORE_ENV_VAR, "/tmp/somewhere/else")
    assert default_store_root() == "/tmp/somewhere/else"
    monkeypatch.delenv(STORE_ENV_VAR)
    assert default_store_root().endswith(os.path.join(".repro", "store"))


def test_key_id_is_stable_and_distinct():
    key = ("golden", (1.0, 2.0), "abc", 512)
    assert key_id(key) == key_id(("golden", (1.0, 2.0), "abc", 512))
    assert key_id(key) != key_id(("golden", (1.0, 2.0), "abc", 1024))
    assert len(key_id(key)) == 64


def test_put_get_roundtrip(store):
    arrays = {"a": np.arange(5.0), "b": np.array([[1, 2], [3, 4]])}
    store.put(("raw", "demo"), arrays, {"note": "hello"})
    loaded, meta = store.get(("raw", "demo"))
    np.testing.assert_array_equal(loaded["a"], arrays["a"])
    np.testing.assert_array_equal(loaded["b"], arrays["b"])
    assert meta == {"note": "hello"}
    assert store.contains(("raw", "demo"))
    assert len(store) == 1
    info = store.info
    assert (info.writes, info.hits, info.misses) == (1, 1, 0)


def test_absent_key_is_a_miss(store):
    assert store.get(("raw", "nope")) is None
    assert store.info.misses == 1


# ----------------------------------------------------------------------
# Torn writes and corruption degrade, never crash
# ----------------------------------------------------------------------
def test_atomic_write_leaves_no_tmp_droppings(tmp_path):
    path = str(tmp_path / "x.bin")
    atomic_write_bytes(path, b"payload")
    assert open(path, "rb").read() == b"payload"
    assert [p for p in os.listdir(tmp_path) if p.endswith(".tmp")] == []


def test_torn_payload_write_quarantines_on_read(store):
    with inject("store.write.tear", times=1) as fault:
        store.put(("raw", "torn"), {"a": np.arange(64.0)})
    assert fault.fired == 1
    # The index recorded the full-payload checksum but the file on
    # disk is truncated: the read must detect it, quarantine, miss.
    assert store.get(("raw", "torn")) is None
    info = store.info
    assert info.quarantined == 1
    assert not store.contains(("raw", "torn"))
    assert len(os.listdir(store.quarantine_dir)) == 1
    # Recompute-and-rewrite path: a fresh put fully recovers.
    store.put(("raw", "torn"), {"a": np.arange(64.0)})
    loaded, __ = store.get(("raw", "torn"))
    np.testing.assert_array_equal(loaded["a"], np.arange(64.0))


def test_bit_rot_quarantines_and_recovers(store):
    store.put(("raw", "rot"), {"a": np.arange(128.0)})
    with inject("store.read.corrupt", times=1):
        assert store.get(("raw", "rot")) is None
    assert store.info.quarantined == 1
    assert len(os.listdir(store.quarantine_dir)) == 1
    store.put(("raw", "rot"), {"a": np.arange(128.0)})
    loaded, __ = store.get(("raw", "rot"))
    np.testing.assert_array_equal(loaded["a"], np.arange(128.0))


def test_torn_index_degrades_to_empty_not_crash(store):
    store.put(("raw", "k1"), {"a": np.arange(3.0)})
    with inject("store.index.tear", times=1):
        store.put(("raw", "k2"), {"a": np.arange(4.0)})
    # The torn index reads as empty (recoverable state)...
    assert len(store) == 0
    assert store.info.errors >= 1
    # ...and the next write re-registers its entry atomically.
    store.put(("raw", "k3"), {"a": np.arange(5.0)})
    assert store.contains(("raw", "k3"))
    loaded, __ = store.get(("raw", "k3"))
    np.testing.assert_array_equal(loaded["a"], np.arange(5.0))


def test_garbage_index_file_degrades(store):
    store.put(("raw", "k"), {"a": np.arange(3.0)})
    with open(store.index_path, "w", encoding="utf-8") as handle:
        handle.write("{ not json")
    assert len(store) == 0
    assert store.get(("raw", "k")) is None  # miss, not crash
    store.put(("raw", "k"), {"a": np.arange(3.0)})
    assert store.get(("raw", "k")) is not None


def test_unknown_index_version_reads_empty(store):
    store.put(("raw", "k"), {"a": np.arange(3.0)})
    with open(store.index_path, "r", encoding="utf-8") as handle:
        index = json.load(handle)
    index["version"] = 999
    with open(store.index_path, "w", encoding="utf-8") as handle:
        json.dump(index, handle)
    assert len(store) == 0


# ----------------------------------------------------------------------
# Concurrency: two writers never lose each other's entries
# ----------------------------------------------------------------------
WRITER_SCRIPT = """
import sys
import numpy as np
from repro.store import ArtifactStore

root, tag = sys.argv[1], sys.argv[2]
store = ArtifactStore(root)
for i in range(8):
    store.put(("raw", tag, i), {"a": np.full(16, float(i))})
for i in range(8):
    loaded, __ = store.get(("raw", tag, i))
    assert loaded["a"][0] == float(i)
"""


def test_two_processes_interleaved_writes_all_survive(store):
    env = dict(os.environ, PYTHONPATH=os.pathsep.join(sys.path))
    procs = [
        subprocess.Popen([sys.executable, "-c", WRITER_SCRIPT,
                          store.root, tag], env=env)
        for tag in ("left", "right")
    ]
    for proc in procs:
        assert proc.wait(timeout=120) == 0
    # Read-merge-replace under the flock: no writer lost the other's
    # index entries.
    assert len(store) == 16
    for tag in ("left", "right"):
        for i in range(8):
            loaded, __ = store.get(("raw", tag, i))
            np.testing.assert_array_equal(loaded["a"],
                                          np.full(16, float(i)))


# ----------------------------------------------------------------------
# The GoldenCache wiring: restart warm-up with zero recompute
# ----------------------------------------------------------------------
def test_restarted_engine_warms_from_store_without_recompute(store):
    first = _engine(store)
    golden = first.golden()
    band = first.band()
    info = store.info
    assert info.writes == 2  # golden + calibration
    assert info.hits == 0

    # "Restart": a fresh store handle and a fresh cache over the same
    # root -- nothing in memory survives.
    reopened = ArtifactStore(store.root)
    second = _engine(reopened)
    golden2 = second.golden()
    band2 = second.band()
    info2 = reopened.info
    assert (info2.hits, info2.misses, info2.writes) == (2, 0, 0)
    assert golden2.signature == golden.signature
    np.testing.assert_array_equal(golden2.y, golden.y)
    assert band2.threshold == band.threshold


def test_fault_dictionary_persists_across_restart(store):
    from repro.diagnosis import compile_fault_dictionary

    first = _engine(store)
    dictionary = compile_fault_dictionary(first)
    writes = store.info.writes
    assert writes >= 3  # golden + calibration + dictionary

    reopened = ArtifactStore(store.root)
    second = _engine(reopened)
    dictionary2 = compile_fault_dictionary(second)
    assert reopened.info.writes == 0
    assert dictionary2.threshold == dictionary.threshold
    assert dictionary2.golden_signature == dictionary.golden_signature
    np.testing.assert_array_equal(dictionary2.ndfs, dictionary.ndfs)
    assert [f.label for f in dictionary2.faults] == \
        [f.label for f in dictionary.faults]


def test_corrupted_store_artifact_recomputes_bit_identical(store):
    first = _engine(store)
    golden = first.golden()

    reopened = ArtifactStore(store.root)
    with inject("store.read.corrupt", times=1):
        second = _engine(reopened)
        golden2 = second.golden()
    # The damaged payload was quarantined, the value recomputed and
    # written back -- and screening never noticed.
    info = reopened.info
    assert info.quarantined == 1
    assert info.writes == 1
    assert golden2.signature == golden.signature

    # Third restart hits the rewritten artifact cleanly.
    third = _engine(ArtifactStore(store.root))
    assert third.golden().signature == golden.signature


def test_broken_store_degrades_to_memory_only_caching():
    class ExplodingStore:
        def load_artifact(self, key):
            raise OSError("disk on fire")

        def save_artifact(self, key, value):
            raise OSError("disk on fire")

    engine = CampaignEngine.from_parts(
        *_bench_parts(), samples_per_period=SAMPLES,
        cache=GoldenCache(store=ExplodingStore()))
    golden = engine.golden()  # no exception despite the store
    assert engine.golden() is golden  # LRU still serves


def _bench_parts():
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

    return table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD
