"""Checkpointed streamed campaigns: kill anywhere, resume bit-identical."""

import numpy as np
import pytest

from repro.campaign import (
    CheckpointMismatch,
    StreamCheckpoint,
    seed_children,
    montecarlo_dies,
    stream_montecarlo_dies,
)
from repro.testing.faultinject import FaultInjected, inject

pytestmark = pytest.mark.campaign

DIES = 60
CHUNK = 16  # -> chunks of 16/16/16/12


def _chunks(start=0, chunk=CHUNK):
    from repro.paper import PAPER_BIQUAD

    return stream_montecarlo_dies(PAPER_BIQUAD, DIES, chunk_size=chunk,
                                  sigma_f0=0.05, seed=9, start=start)


def _assert_identical(result, reference):
    np.testing.assert_array_equal(result.ndfs, reference.ndfs)
    np.testing.assert_array_equal(result.verdicts, reference.verdicts)
    np.testing.assert_array_equal(result.f0_deviations,
                                  reference.f0_deviations)
    np.testing.assert_array_equal(result.q_deviations,
                                  reference.q_deviations)
    assert result.labels == reference.labels
    assert result.threshold == reference.threshold


# ----------------------------------------------------------------------
# The seeding property the whole scheme rests on
# ----------------------------------------------------------------------
def test_seed_children_match_spawn_numbering():
    root = np.random.SeedSequence(123)
    spawned = root.spawn(7)
    rebuilt = seed_children(123, 3, 7)
    for child, expected in zip(rebuilt, spawned[3:]):
        assert np.random.default_rng(child).random() == \
            np.random.default_rng(expected).random()


def test_stream_start_matches_monolithic_tail():
    from repro.paper import PAPER_BIQUAD

    whole = montecarlo_dies(PAPER_BIQUAD, DIES, sigma_f0=0.05, seed=9)
    tail_chunks = list(_chunks(start=17))
    tail_f0 = np.concatenate([c.f0_deviations for c in tail_chunks])
    tail_labels = [label for c in tail_chunks for label in c.labels]
    np.testing.assert_array_equal(tail_f0, whole.f0_deviations[17:])
    assert tail_labels == whole.labels[17:]


# ----------------------------------------------------------------------
# Kill + resume at every interesting point
# ----------------------------------------------------------------------
@pytest.mark.parametrize("crash_after_chunks", [1, 2, 3])
def test_resume_is_bit_identical(small_engine, tmp_path,
                                 crash_after_chunks):
    ck = str(tmp_path / "campaign.npz")
    reference = small_engine.run_stream(_chunks(), band="auto")

    with inject("stream.chunk.crash", times=1,
                after=crash_after_chunks - 1):
        with pytest.raises(FaultInjected):
            small_engine.run_stream(_chunks(), band="auto",
                                    checkpoint=ck)
    partial = StreamCheckpoint.load(ck)
    assert partial.next_index == crash_after_chunks * CHUNK
    assert not partial.complete

    resumed = small_engine.resume(ck, _chunks())
    _assert_identical(resumed, reference)
    final = StreamCheckpoint.load(ck)
    assert final.complete
    assert final.next_index == DIES


def test_resume_with_mid_fleet_stream(small_engine, tmp_path):
    """A resume that rebuilds its stream from the checkpoint index

    (instead of replaying from die 0) merges identically too."""
    ck = str(tmp_path / "campaign.npz")
    reference = small_engine.run_stream(_chunks(), band="auto")
    with inject("stream.chunk.crash", times=1, after=1):
        with pytest.raises(FaultInjected):
            small_engine.run_stream(_chunks(), band="auto",
                                    checkpoint=ck)
    state = StreamCheckpoint.load(ck)
    resumed = small_engine.resume(
        ck, _chunks(start=state.next_index),
        stream_offset=state.next_index)
    _assert_identical(resumed, reference)


def test_resume_across_different_chunk_size(small_engine, tmp_path):
    """Chunk boundaries are not part of the checkpoint contract: the

    resumed stream may re-chunk the remaining dies differently."""
    ck = str(tmp_path / "campaign.npz")
    reference = small_engine.run_stream(_chunks(), band="auto")
    with inject("stream.chunk.crash", times=1, after=1):
        with pytest.raises(FaultInjected):
            small_engine.run_stream(_chunks(), band="auto",
                                    checkpoint=ck)
    resumed = small_engine.resume(ck, _chunks(chunk=7))
    _assert_identical(resumed, reference)


def test_crash_mid_checkpoint_write_restarts_cleanly(small_engine,
                                                     tmp_path):
    """A torn checkpoint file is unreadable -> the next run starts

    from zero rather than trusting damaged state, and still matches."""
    ck = str(tmp_path / "campaign.npz")
    reference = small_engine.run_stream(_chunks(), band="auto")
    with inject("checkpoint.write.tear", times=1):
        with inject("stream.chunk.crash", times=1):
            with pytest.raises(FaultInjected):
                small_engine.run_stream(_chunks(), band="auto",
                                        checkpoint=ck)
    assert StreamCheckpoint.load_if_valid(ck) is None
    rerun = small_engine.run_stream(_chunks(), band="auto",
                                    checkpoint=ck)
    _assert_identical(rerun, reference)


def test_completed_checkpoint_short_circuits(small_engine, tmp_path):
    ck = str(tmp_path / "campaign.npz")
    reference = small_engine.run_stream(_chunks(), band="auto",
                                        checkpoint=ck)
    assert StreamCheckpoint.load(ck).complete
    # Submitting again replays the persisted stats without screening.
    before = small_engine.cache.info.requests
    again = small_engine.run_stream(iter(()), band="auto",
                                    checkpoint=ck)
    _assert_identical(again, reference)
    assert small_engine.cache.info.requests >= before


def test_checkpoint_every_batches_saves(small_engine, tmp_path):
    ck = str(tmp_path / "campaign.npz")
    with inject("stream.chunk.crash", times=1, after=2):
        with pytest.raises(FaultInjected):
            small_engine.run_stream(_chunks(), band="auto",
                                    checkpoint=ck, checkpoint_every=2)
    # Crash after chunk 3: only the first checkpoint (2 chunks) saved.
    assert StreamCheckpoint.load(ck).next_index == 2 * CHUNK


def test_resume_requires_existing_checkpoint(small_engine, tmp_path):
    with pytest.raises(FileNotFoundError):
        small_engine.resume(str(tmp_path / "missing.npz"), _chunks())


def test_checkpoint_rejects_other_configuration(small_engine, tmp_path):
    ck = str(tmp_path / "campaign.npz")
    state = StreamCheckpoint("other-config-key", threshold=0.25)
    state.save(ck)
    with pytest.raises(CheckpointMismatch):
        small_engine.resume(ck, _chunks())


def test_checkpoint_rejects_other_threshold(small_engine, tmp_path):
    ck = str(tmp_path / "campaign.npz")
    with inject("stream.chunk.crash", times=1):
        with pytest.raises(FaultInjected):
            small_engine.run_stream(_chunks(), band="auto",
                                    checkpoint=ck)
    with pytest.raises(CheckpointMismatch):
        small_engine.resume(ck, _chunks(), band=0.9)


def test_checkpointed_stream_rejects_keep_signatures(small_engine,
                                                     tmp_path):
    with pytest.raises(ValueError, match="keep"):
        small_engine.run_stream(_chunks(), band="auto",
                                keep_signatures=True,
                                checkpoint=str(tmp_path / "ck.npz"))
