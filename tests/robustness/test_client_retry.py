"""Client-side resilience: RetryPolicy math, retry loop semantics,
idempotency-key discipline, wait_ready patience.

These tests fake the transport (``_request_once``) so they exercise
the retry loop deterministically, with no sockets and no sleeps.
"""

import json
import random

import pytest

from repro.service import RetryPolicy, ServiceError, ServiceUnavailable
from repro.service.client import IDEMPOTENCY_HEADER, ServiceClient


class FakeTransport:
    """Scripted ``_request_once``: a list of outcomes, then capture."""

    def __init__(self, outcomes):
        self.outcomes = list(outcomes)
        self.calls = []  # (path, payload, headers) per attempt

    def __call__(self, path, payload, headers):
        self.calls.append((path, payload, dict(headers)))
        outcome = self.outcomes.pop(0)
        if isinstance(outcome, Exception):
            raise outcome
        return outcome


def _client(outcomes, retry=RetryPolicy(max_attempts=5, base_delay=0.01,
                                        jitter=0.0)):
    client = ServiceClient("http://fake:1", client_id="test",
                           retry=retry)
    client._sleep = lambda seconds: client.sleeps.append(seconds)
    client.sleeps = []
    transport = FakeTransport(outcomes)
    client._request_once = transport
    return client, transport


OK = json.dumps({"ok": True}).encode()


# ----------------------------------------------------------------------
# RetryPolicy math
# ----------------------------------------------------------------------
def test_retryable_statuses():
    policy = RetryPolicy()
    assert policy.retryable(ServiceUnavailable("refused"))  # status 0
    assert policy.retryable(ServiceError(429, {"error": "throttle"}))
    assert policy.retryable(ServiceError(500, {"error": "boom"}))
    assert policy.retryable(ServiceError(503, {"error": "full"}))
    assert policy.retryable(ServiceError(504, {"error": "slow"}))
    assert not policy.retryable(ServiceError(400, {"error": "bad"}))
    assert not policy.retryable(ServiceError(404, {"error": "gone"}))


def test_delay_backs_off_exponentially_and_caps():
    policy = RetryPolicy(base_delay=0.1, factor=2.0, max_delay=0.5,
                         jitter=0.0)
    error = ServiceUnavailable("refused")
    assert policy.delay(0, error) == pytest.approx(0.1)
    assert policy.delay(1, error) == pytest.approx(0.2)
    assert policy.delay(2, error) == pytest.approx(0.4)
    assert policy.delay(3, error) == pytest.approx(0.5)  # capped
    assert policy.delay(9, error) == pytest.approx(0.5)


def test_delay_jitter_is_bounded_and_seedable():
    policy = RetryPolicy(base_delay=0.1, jitter=0.5)
    error = ServiceUnavailable("refused")
    rng = random.Random(7)
    delays = {policy.delay(0, error, rng) for _ in range(32)}
    assert len(delays) > 1  # actually randomized
    assert all(0.1 <= d <= 0.15 + 1e-12 for d in delays)


def test_retry_after_hint_is_a_floor():
    policy = RetryPolicy(base_delay=0.01, jitter=0.0)
    throttle = ServiceError(429, {"error": "throttle",
                                  "retry_after": 0.75})
    assert policy.delay(0, throttle) == pytest.approx(0.75)
    # A longer backoff curve wins over a shorter hint.
    late = RetryPolicy(base_delay=2.0, jitter=0.0)
    assert late.delay(0, throttle) == pytest.approx(2.0)


def test_policy_validates_attempts():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)


# ----------------------------------------------------------------------
# The retry loop
# ----------------------------------------------------------------------
def test_converges_through_connection_reset_storm():
    client, transport = _client([
        ServiceUnavailable("connection refused"),
        ServiceUnavailable("connection reset"),
        OK,
    ])
    assert client.campaign(dies=4) == {"ok": True}
    assert len(transport.calls) == 3
    assert len(client.sleeps) == 2


def test_converges_through_429_and_503():
    client, transport = _client([
        ServiceError(429, {"error": "throttle", "retry_after": 0.02}),
        ServiceError(503, {"error": "overloaded",
                           "retry_after": 0.03}),
        OK,
    ])
    assert client.campaign(dies=4) == {"ok": True}
    # Retry-After hints floored both sleeps.
    assert client.sleeps[0] >= 0.02
    assert client.sleeps[1] >= 0.03


def test_4xx_raises_immediately():
    client, transport = _client([
        ServiceError(400, {"error": "bad request"}), OK])
    with pytest.raises(ServiceError) as excinfo:
        client.campaign(dies=4)
    assert excinfo.value.status == 400
    assert len(transport.calls) == 1  # no retry burned


def test_exhausted_attempts_raise_last_error():
    client, transport = _client(
        [ServiceUnavailable(f"down {i}") for i in range(3)],
        retry=RetryPolicy(max_attempts=3, base_delay=0.01, jitter=0.0))
    with pytest.raises(ServiceUnavailable) as excinfo:
        client.campaign(dies=4)
    assert excinfo.value.reason == "down 2"
    assert len(transport.calls) == 3


def test_no_policy_fails_fast():
    client, transport = _client([ServiceUnavailable("down")],
                                retry=None)
    with pytest.raises(ServiceUnavailable):
        client.campaign(dies=4)
    assert len(transport.calls) == 1


def test_transport_errors_are_service_errors():
    """The one-exception-surface contract: a caller's single
    ``except ServiceError`` catches transport failures too."""
    client, __ = _client([ServiceUnavailable("refused")], retry=None)
    with pytest.raises(ServiceError) as excinfo:
        client.campaign(dies=4)
    assert excinfo.value.status == 0
    assert excinfo.value.payload["error"] == "unavailable"


# ----------------------------------------------------------------------
# Idempotency-key discipline
# ----------------------------------------------------------------------
def test_same_key_across_attempts_of_one_request():
    client, transport = _client([
        ServiceUnavailable("reset"),
        ServiceError(503, {"error": "overloaded"}),
        OK,
    ])
    client.campaign(dies=4)
    keys = [headers[IDEMPOTENCY_HEADER]
            for __, __, headers in transport.calls]
    assert len(set(keys)) == 1  # every retry replays the same key


def test_fresh_key_per_logical_request():
    client, transport = _client([OK, OK])
    client.campaign(dies=4)
    client.campaign(dies=4)  # same payload, new logical request
    keys = [headers[IDEMPOTENCY_HEADER]
            for __, __, headers in transport.calls]
    assert len(set(keys)) == 2


def test_gets_carry_no_idempotency_key():
    client, transport = _client([OK])
    client.healthz()
    __, __, headers = transport.calls[0]
    assert IDEMPOTENCY_HEADER not in headers
    assert headers["X-Client"] == "test"


# ----------------------------------------------------------------------
# wait_ready
# ----------------------------------------------------------------------
def test_wait_ready_polls_through_5xx_and_transport(monkeypatch):
    client, transport = _client([
        ServiceUnavailable("refused"),        # nothing listening yet
        ServiceError(503, {"error": "warming"}),  # up but not ready
        json.dumps({"status": "ok"}).encode(),
    ], retry=None)
    monkeypatch.setattr("time.sleep", lambda s: None)
    assert client.wait_ready(timeout=5.0, interval=0.0)["status"] \
        == "ok"
    assert len(transport.calls) == 3


def test_wait_ready_raises_on_4xx(monkeypatch):
    client, __ = _client([ServiceError(404, {"error": "no"})],
                         retry=None)
    monkeypatch.setattr("time.sleep", lambda s: None)
    with pytest.raises(ServiceError):
        client.wait_ready(timeout=5.0, interval=0.0)


def test_wait_ready_times_out(monkeypatch):
    client, __ = _client([], retry=None)

    def always_down(path, payload, headers):
        raise ServiceUnavailable("down")

    client._request_once = always_down
    monkeypatch.setattr("time.sleep", lambda s: None)
    with pytest.raises(TimeoutError, match="not ready"):
        client.wait_ready(timeout=0.2, interval=0.0)
