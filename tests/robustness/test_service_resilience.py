"""End-to-end service resilience: idempotent replays, deadlines, load
shedding, graceful drain, and the batcher's crash-proof worker."""

import threading
import time

import pytest

from repro.campaign import ScreeningRequest, montecarlo_dies
from repro.service import (
    CoalescingBatcher,
    DeadlineExceeded,
    IdempotencyCache,
    QueueFull,
    RetryPolicy,
    ScreeningSession,
    ServiceClient,
    ServiceError,
    build_server,
)
from repro.testing.faultinject import FaultInjected, inject

pytestmark = pytest.mark.campaign

SAMPLES = 512


@pytest.fixture(scope="module")
def session(tmp_path_factory):
    store_root = str(tmp_path_factory.mktemp("store"))
    session = ScreeningSession.from_paper(samples_per_period=SAMPLES,
                                          store=store_root)
    session.warm(dictionary=False)
    return session


@pytest.fixture(scope="module")
def server(session):
    server = build_server(port=0, window=0.002, session=session,
                          deadline=30.0)
    server.start()
    yield server
    if server._serve_thread is not None:
        server.close()


@pytest.fixture()
def client(server):
    client = ServiceClient(
        server.url, client_id="robust",
        retry=RetryPolicy(max_attempts=4, base_delay=0.01, jitter=0.0))
    client._sleep = lambda seconds: None  # storms converge instantly
    return client


def _lot(session, dies=6, seed=3):
    return montecarlo_dies(session.engine.config.golden_spec, dies,
                           sigma_f0=0.05, seed=seed)


# ----------------------------------------------------------------------
# Idempotency: a retried lot never executes twice
# ----------------------------------------------------------------------
def test_replay_after_connection_drop_skips_execution(server, session,
                                                      client):
    reference = client.campaign(kind="mc", dies=6, sigma=0.05, seed=1)
    submitted = session.submitted
    with inject("server.handler.close", times=1) as fault:
        replayed = client.campaign(kind="mc", dies=6, sigma=0.05,
                                   seed=1)
    assert fault.fired == 1
    # One execution happened (before the simulated crash); the retry
    # was answered from the idempotency cache without re-screening.
    assert session.submitted == submitted + 1
    assert replayed["ndfs"] == reference["ndfs"]
    assert replayed["verdicts"] == reference["verdicts"]


def test_failed_execution_is_not_cached(server, session, client):
    submitted = session.submitted
    with inject("session.submit.error", times=1) as fault:
        result = client.campaign(kind="mc", dies=4, sigma=0.05, seed=2)
    assert fault.fired == 1
    # First attempt 500'd (not cached), retry re-executed for real.
    assert result["dies"] == 4
    assert session.submitted == submitted + 2


def test_handler_error_fault_converges_via_retry(server, client):
    with inject("server.handler.error", times=1) as fault:
        result = client.campaign(kind="mc", dies=4, sigma=0.05, seed=5)
    assert fault.fired == 1
    assert result["dies"] == 4


def test_concurrent_duplicates_execute_once(server, session):
    """Two racing requests with one idempotency key: the second waits
    for the first execution and replays it."""
    import json as jsonlib
    import urllib.request

    payload = jsonlib.dumps({"kind": "mc", "dies": 5, "sigma": 0.05,
                             "seed": 11}).encode()
    submitted = session.submitted
    results = []

    def post():
        request = urllib.request.Request(
            server.url + "/campaign", data=payload,
            headers={"Content-Type": "application/json",
                     "X-Client": "dup", "Idempotency-Key": "race-1"})
        with urllib.request.urlopen(request, timeout=60) as response:
            results.append(jsonlib.loads(response.read()))

    threads = [threading.Thread(target=post) for _ in range(2)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(results) == 2
    assert results[0]["ndfs"] == results[1]["ndfs"]
    assert session.submitted == submitted + 1


def test_idempotency_cache_unit():
    cache = IdempotencyCache(maxsize=2)
    key = ("c", "campaign", "k1")
    action, __ = cache.claim(key)
    assert action == "execute"
    action, event = cache.claim(key)
    assert action == "wait" and not event.is_set()
    cache.finish(key, 200, {"ok": 1})
    assert event.is_set()
    action, stored = cache.claim(key)
    assert action == "replay" and stored == (200, {"ok": 1})
    # Failures are not cached: the key becomes claimable again.
    key2 = ("c", "campaign", "k2")
    assert cache.claim(key2)[0] == "execute"
    cache.finish(key2, 500, {"error": "boom"})
    assert cache.claim(key2)[0] == "execute"
    cache.finish(key2, 200, {"ok": 2})
    # LRU bound.
    key3 = ("c", "campaign", "k3")
    cache.claim(key3)
    cache.finish(key3, 200, {"ok": 3})
    assert len(cache) == 2


# ----------------------------------------------------------------------
# Deadlines and load shedding
# ----------------------------------------------------------------------
def test_slow_request_gets_504(server, client, monkeypatch):
    monkeypatch.setenv("REPRO_FAULT_SLOW_S", "1.0")
    monkeypatch.setattr(server, "deadline", 0.05)
    bare = ServiceClient(server.url, client_id="slowpoke")  # no retry
    with inject("session.slow", times=1):
        with pytest.raises(ServiceError) as excinfo:
            bare.campaign(kind="mc", dies=4, sigma=0.05, seed=6)
    assert excinfo.value.status == 504


def test_draining_server_sheds_with_retry_after(server, client,
                                                monkeypatch):
    monkeypatch.setattr(server, "draining", True)
    bare = ServiceClient(server.url, client_id="late")
    with pytest.raises(ServiceError) as excinfo:
        bare.campaign(kind="mc", dies=2, sigma=0.05, seed=7)
    assert excinfo.value.status == 503
    assert excinfo.value.retry_after is not None
    # Health endpoint reports it (and keeps answering).
    assert bare.healthz()["status"] == "draining"


def test_healthz_and_metrics_expose_store_counters(server, client):
    health = client.healthz()
    assert "store" in health
    assert health["store"]["writes"] >= 2  # golden + calibration
    text = client.metrics_text()
    assert "repro_store_writes" in text
    assert "repro_store_quarantined" in text


# ----------------------------------------------------------------------
# Graceful drain end to end
# ----------------------------------------------------------------------
def test_drain_finishes_inflight_work(session, monkeypatch):
    server = build_server(port=0, window=0.002, session=session)
    server.start()
    monkeypatch.setenv("REPRO_FAULT_SLOW_S", "0.3")
    outcome = {}

    def slow_request():
        bare = ServiceClient(server.url, client_id="inflight")
        outcome["result"] = bare.campaign(kind="mc", dies=4,
                                          sigma=0.05, seed=8)

    with inject("session.slow", times=1):
        thread = threading.Thread(target=slow_request)
        thread.start()
        deadline = time.monotonic() + 5.0
        while server.inflight == 0 and time.monotonic() < deadline:
            time.sleep(0.005)
        assert server.inflight == 1
        assert server.drain(timeout=10.0)
        thread.join(timeout=10.0)
    # The in-flight request completed with a real answer before exit.
    assert outcome["result"]["dies"] == 4
    assert server.inflight == 0


# ----------------------------------------------------------------------
# Batcher: the hang regression and its new failure modes
# ----------------------------------------------------------------------
@pytest.fixture()
def batcher(session):
    batcher = CoalescingBatcher(session, window=0.01)
    yield batcher
    batcher.close()


def test_engine_error_mid_batch_propagates_to_all_waiters(session,
                                                          batcher):
    """The satellite regression: every queued client gets the batch's

    exception instead of hanging forever."""
    lots = [_lot(session, dies=3, seed=s) for s in (0, 1)]
    errors = []

    def submit(lot):
        try:
            batcher.submit(ScreeningRequest(population=lot))
        except FaultInjected as error:
            errors.append(error)

    with inject("session.submit.error", times=-1):
        threads = [threading.Thread(target=submit, args=(lot,))
                   for lot in lots]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
    assert not any(thread.is_alive() for thread in threads)
    assert len(errors) == 2
    assert all(e.fault == "session.submit.error" for e in errors)


def test_worker_survives_flush_crash(session, batcher, monkeypatch):
    """An exception escaping the flush machinery itself must fail the

    batch's waiters and leave the worker alive for later requests."""
    real_run_group = batcher._run_group

    def exploding_run_group(threshold, group):
        raise RuntimeError("flush machinery exploded")

    monkeypatch.setattr(batcher, "_run_group", exploding_run_group)
    with pytest.raises(RuntimeError, match="exploded"):
        batcher.submit(ScreeningRequest(population=_lot(session)))
    monkeypatch.setattr(batcher, "_run_group", real_run_group)
    # Worker thread still alive and serving.
    result = batcher.submit(ScreeningRequest(population=_lot(session)))
    assert result.num_dies == 6


def test_submit_deadline_withdraws_queued_request(session):
    batcher = CoalescingBatcher(session, window=0.5)
    submitted = session.submitted
    try:
        with pytest.raises(DeadlineExceeded):
            batcher.submit(ScreeningRequest(population=_lot(session)),
                           timeout=0.05)
        # Withdrawn before the linger window flushed: never executed.
        assert batcher.queue_depth == 0
        time.sleep(0.6)
        assert session.submitted == submitted
    finally:
        batcher.close()


def test_max_queue_sheds_load(session):
    batcher = CoalescingBatcher(session, window=0.5, max_queue=1)
    try:
        background = threading.Thread(
            target=lambda: batcher.submit(
                ScreeningRequest(population=_lot(session))))
        background.start()
        deadline = time.monotonic() + 5.0
        while batcher.queue_depth == 0 \
                and time.monotonic() < deadline:
            time.sleep(0.005)
        assert batcher.queue_depth == 1
        with pytest.raises(QueueFull) as excinfo:
            batcher.submit(ScreeningRequest(population=_lot(session)))
        assert excinfo.value.retry_after > 0
        background.join(timeout=30.0)
    finally:
        batcher.close()
