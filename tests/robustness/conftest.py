"""Shared robustness fixtures: fault hygiene and a small warm bench.

Every test in this suite runs with a clean fault-injection registry on
both sides: an armed fault leaking out of a test (or in from the
environment) would make unrelated tests fail mysteriously, so the
autouse fixture disarms everything and forgets the parsed
``REPRO_FAULTS`` value around each test.
"""

from __future__ import annotations

import pytest

from repro.testing.faultinject import disarm_all, reset_env_cache

SAMPLES = 512


@pytest.fixture(autouse=True)
def _clean_faults():
    disarm_all()
    reset_env_cache()
    yield
    disarm_all()
    reset_env_cache()


@pytest.fixture()
def small_engine():
    """A fast private-cache engine over the paper bench (512 samples)."""
    from repro.campaign import CampaignEngine
    from repro.monitor.configurations import table1_encoder
    from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

    return CampaignEngine.from_parts(
        table1_encoder(), PAPER_STIMULUS, PAPER_BIQUAD,
        samples_per_period=SAMPLES)
