"""Unit behaviour of the named fault-point registry."""

import pytest

from repro.testing import faultinject
from repro.testing.faultinject import (
    ENV_VAR,
    FaultInjected,
    active_faults,
    arm,
    disarm,
    fail_if_armed,
    inject,
    reset_env_cache,
    should_fail,
    slow_seconds,
)


def test_unarmed_is_inert():
    assert not should_fail("nothing.armed.here")
    fail_if_armed("nothing.armed.here")  # no raise


def test_arm_fires_exactly_times():
    arm("x.y", times=2)
    assert should_fail("x.y")
    assert should_fail("x.y")
    assert not should_fail("x.y")
    # Exhausted faults unregister themselves.
    assert "x.y" not in active_faults()


def test_after_skips_leading_trips():
    arm("x.y", times=1, after=2)
    assert not should_fail("x.y")
    assert not should_fail("x.y")
    assert should_fail("x.y")
    assert not should_fail("x.y")


def test_forever_fires_until_disarmed():
    arm("x.y", times=-1)
    for _ in range(5):
        assert should_fail("x.y")
    disarm("x.y")
    assert not should_fail("x.y")


def test_fail_if_armed_raises_named_error():
    arm("boom", times=1)
    with pytest.raises(FaultInjected) as excinfo:
        fail_if_armed("boom")
    assert excinfo.value.fault == "boom"


def test_inject_scopes_and_counts():
    with inject("scoped", times=3) as fault:
        assert should_fail("scoped")
        assert fault.fired == 1
        assert should_fail("scoped")
    # Disarmed on exit even though one firing was left...
    assert not should_fail("scoped")
    # ...and the handle still reports what fired inside the block.
    assert fault.fired == 2


def test_inject_fired_survives_exhaustion():
    with inject("once", times=1) as fault:
        assert should_fail("once")
        assert not should_fail("once")
    assert fault.fired == 1


def test_env_var_arms_with_times_and_after(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "env.fault:2:1, other.fault")
    reset_env_cache()
    assert not should_fail("env.fault")  # after=1 skips the first
    assert should_fail("env.fault")
    assert should_fail("env.fault")
    assert not should_fail("env.fault")
    assert should_fail("other.fault")  # default times=1
    assert not should_fail("other.fault")


def test_env_var_parsed_once_until_reset(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "first.fault")
    reset_env_cache()
    assert should_fail("first.fault")
    monkeypatch.setenv(ENV_VAR, "second.fault")
    # Not re-parsed yet.
    assert not should_fail("second.fault")
    reset_env_cache()
    assert should_fail("second.fault")


def test_slow_seconds_reads_env(monkeypatch):
    monkeypatch.delenv("REPRO_FAULT_SLOW_S", raising=False)
    assert slow_seconds(0.3) == 0.3
    monkeypatch.setenv("REPRO_FAULT_SLOW_S", "0.05")
    assert slow_seconds() == 0.05
    monkeypatch.setenv("REPRO_FAULT_SLOW_S", "not-a-number")
    assert slow_seconds(0.2) == 0.2


def test_rearming_replaces_schedule():
    arm("re.arm", times=5)
    assert should_fail("re.arm")
    arm("re.arm", times=1)
    assert should_fail("re.arm")
    assert not should_fail("re.arm")


def test_concurrent_trips_are_counted_once_each():
    import threading

    arm("race", times=10)
    fired = []
    barrier = threading.Barrier(4)

    def worker():
        barrier.wait()
        for _ in range(5):
            if should_fail("race"):
                fired.append(1)

    threads = [threading.Thread(target=worker) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert len(fired) == 10


def test_module_exports():
    for name in faultinject.__all__:
        assert hasattr(faultinject, name)
