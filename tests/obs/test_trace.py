"""Tracer unit behaviour: nesting, ring buffer, exports, null path."""

import json
import threading

import pytest

from repro.obs import (
    NULL_SPAN,
    Tracer,
    current_tracer,
    get_request_id,
    install_tracer,
    new_request_id,
    request_context,
    span,
    tracing,
    tracing_enabled,
    uninstall_tracer,
)


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    """Every test starts and ends with tracing disabled."""
    previous = uninstall_tracer()
    yield
    install_tracer(previous)


# ----------------------------------------------------------------------
# Disabled path
# ----------------------------------------------------------------------
def test_span_is_shared_null_span_while_disabled():
    assert not tracing_enabled()
    handle = span("anything", dies=5)
    assert handle is NULL_SPAN
    # Chainable, enterable, and records nothing anywhere.
    with handle.set(more=1) as inner:
        assert inner is NULL_SPAN


def test_install_and_uninstall_round_trip():
    tracer = Tracer()
    assert install_tracer(tracer) is None
    assert tracing_enabled()
    assert current_tracer() is tracer
    assert uninstall_tracer() is tracer
    assert current_tracer() is None


# ----------------------------------------------------------------------
# Recording and nesting
# ----------------------------------------------------------------------
def test_nesting_links_parents_and_orders_children_first():
    with tracing() as tracer:
        with span("outer", kind="o"):
            with span("inner", kind="i"):
                pass
    records = tracer.records()
    assert [r.name for r in records] == ["inner", "outer"]
    inner, outer = records
    assert outer.parent_id is None
    assert inner.parent_id == outer.span_id
    assert inner.duration <= outer.duration
    assert outer.attributes["kind"] == "o"


def test_sibling_spans_share_a_parent():
    with tracing() as tracer:
        with span("parent"):
            with span("a"):
                pass
            with span("b"):
                pass
    by_name = {r.name: r for r in tracer.records()}
    assert by_name["a"].parent_id == by_name["parent"].span_id
    assert by_name["b"].parent_id == by_name["parent"].span_id


def test_error_spans_record_the_exception():
    with tracing() as tracer:
        with pytest.raises(ValueError):
            with span("boom"):
                raise ValueError("bad die")
    record = tracer.records()[0]
    assert not record.ok
    assert record.error == "ValueError: bad die"


def test_set_attaches_attributes_before_exit():
    with tracing() as tracer:
        with span("lookup") as handle:
            handle.set(outcome="hit", extra=2)
    record = tracer.records()[0]
    assert record.attributes["outcome"] == "hit"
    assert record.attributes["extra"] == 2


def test_threads_do_not_share_span_stacks():
    with tracing() as tracer:
        with span("main-parent"):
            worker_done = threading.Event()

            def worker():
                with span("worker-span"):
                    pass
                worker_done.set()

            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
            assert worker_done.is_set()
    by_name = {r.name: r for r in tracer.records()}
    # The worker thread has no ambient parent: contextvars are
    # per-thread, so its span must not nest under main's.
    assert by_name["worker-span"].parent_id is None


def test_ring_buffer_caps_and_counts_drops():
    with tracing(capacity=4) as tracer:
        for index in range(10):
            with span(f"s{index}"):
                pass
    assert len(tracer) == 4
    assert tracer.dropped == 6
    assert [r.name for r in tracer.records()] == \
        ["s6", "s7", "s8", "s9"]
    tracer.clear()
    assert len(tracer) == 0
    assert tracer.dropped == 0


# ----------------------------------------------------------------------
# Request ids
# ----------------------------------------------------------------------
def test_request_context_binds_and_restores():
    assert get_request_id() is None
    rid = new_request_id()
    with request_context(rid):
        assert get_request_id() == rid
        with request_context("other"):
            assert get_request_id() == "other"
        assert get_request_id() == rid
    assert get_request_id() is None


def test_spans_auto_attach_the_bound_request_id():
    rid = new_request_id()
    with tracing() as tracer:
        with request_context(rid):
            with span("traced"):
                pass
        with span("untraced"):
            pass
    by_name = {r.name: r for r in tracer.records()}
    assert by_name["traced"].attributes["request_id"] == rid
    assert "request_id" not in by_name["untraced"].attributes


# ----------------------------------------------------------------------
# Exports
# ----------------------------------------------------------------------
def test_jsonl_export_round_trips(tmp_path):
    with tracing() as tracer:
        with span("outer"):
            with span("inner", dies=3):
                pass
    path = tracer.write_jsonl(str(tmp_path / "spans.jsonl"))
    rows = [json.loads(line)
            for line in open(path, encoding="utf-8") if line.strip()]
    assert [row["name"] for row in rows] == ["inner", "outer"]
    assert rows[0]["attributes"] == {"dies": 3}
    assert rows[0]["parent_id"] == rows[1]["span_id"]


def test_chrome_trace_export_shape(tmp_path):
    with tracing() as tracer:
        with span("outer", label="x"):
            with span("inner"):
                pass
    path = tracer.write_chrome_trace(str(tmp_path / "trace.json"))
    payload = json.load(open(path, encoding="utf-8"))
    events = payload["traceEvents"]
    assert {event["name"] for event in events} == {"outer", "inner"}
    for event in events:
        assert event["ph"] == "X"
        assert event["dur"] >= 0
        assert isinstance(event["ts"], float)
    outer = next(e for e in events if e["name"] == "outer")
    inner = next(e for e in events if e["name"] == "inner")
    assert inner["args"]["parent_id"] == outer["args"]["span_id"]
    assert outer["args"]["label"] == "x"
    # The child slice sits inside the parent slice on the timeline.
    assert inner["ts"] >= outer["ts"]
    assert inner["ts"] + inner["dur"] <= outer["ts"] + outer["dur"] + 1


def test_chrome_trace_attributes_are_json_safe():
    with tracing() as tracer:
        with span("weird", arr=(1, 2), obj=object()):
            pass
    event = tracer.chrome_trace()["traceEvents"][0]
    json.dumps(event)  # must not raise
    assert event["args"]["arr"] == [1, 2]
    assert isinstance(event["args"]["obj"], str)


def test_tracer_rejects_zero_capacity():
    with pytest.raises(ValueError):
        Tracer(capacity=0)
