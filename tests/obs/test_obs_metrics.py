"""Histograms, the default registry, and generic timing observation."""

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    default_registry,
    record_engine_timings,
    set_default_registry,
)


@pytest.fixture
def registry():
    return MetricsRegistry(namespace="test")


@pytest.fixture
def scratch_default():
    """Swap in a scratch process-default registry for the test."""
    scratch = MetricsRegistry()
    previous = set_default_registry(scratch)
    yield scratch
    set_default_registry(previous)


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------
def test_histogram_buckets_are_cumulative(registry):
    hist = registry.histogram("latency", buckets=(0.01, 0.1, 1.0))
    for value in (0.005, 0.05, 0.05, 0.5, 5.0):
        hist.observe(value)
    stats = hist.snapshot()
    assert stats["0.01"] == 1
    assert stats["0.1"] == 3
    assert stats["1"] == 4
    assert stats["+Inf"] == 5
    assert stats["count"] == 5
    assert stats["sum"] == pytest.approx(5.605)


def test_histogram_boundary_lands_in_its_bucket(registry):
    # bisect_left: an observation exactly on a bound counts as <= bound.
    hist = registry.histogram("exact", buckets=(1.0, 2.0))
    hist.observe(1.0)
    assert hist.snapshot()["1"] == 1


def test_histogram_render_merges_le_with_labels(registry):
    registry.histogram("stage_seconds", buckets=(0.5,),
                       stage="encode").observe(0.1)
    text = registry.render()
    assert 'test_stage_seconds_bucket{le="0.5",stage="encode"} 1' in text
    assert 'test_stage_seconds_bucket{le="+Inf",stage="encode"} 1' in text
    assert 'test_stage_seconds_count{stage="encode"} 1' in text


def test_histogram_identity_by_name_and_labels(registry):
    first = registry.histogram("h", stage="a")
    assert registry.histogram("h", stage="a") is first
    assert registry.histogram("h", stage="b") is not first


def test_histogram_rejects_bad_buckets(registry):
    with pytest.raises(ValueError):
        registry.histogram("bad", buckets=(2.0, 1.0))
    with pytest.raises(ValueError):
        registry.histogram("dupes", buckets=(1.0, 1.0))


def test_default_buckets_cover_engine_scales():
    assert DEFAULT_BUCKETS[0] <= 1e-4
    assert DEFAULT_BUCKETS[-1] >= 10.0
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


def test_histogram_appears_in_snapshot(registry):
    registry.histogram("h", buckets=(1.0,), stage="x").observe(0.5)
    snap = registry.snapshot()
    assert 'h{stage="x"}' in snap["histograms"]
    assert snap["histograms"]['h{stage="x"}']["count"] == 1


# ----------------------------------------------------------------------
# observe_timings: any stage key, no whitelist (satellite lock-down)
# ----------------------------------------------------------------------
def test_observe_timings_records_every_stage_key(registry):
    registry.observe_timings({"encode": 0.2, "signature": 0.1,
                              "a_brand_new_stage": 0.05}, mode="run")
    snap = registry.snapshot()["windows"]
    key = 'stage_seconds{mode="run",stage="a_brand_new_stage"}'
    assert key in snap
    assert snap[key]["count"] == 1
    assert snap[key]["sum"] == pytest.approx(0.05)
    # The known stages land too, under the same generic family.
    assert 'stage_seconds{mode="run",stage="encode"}' in snap


def test_observe_timings_accepts_empty_dict(registry):
    registry.observe_timings({})
    assert registry.snapshot()["windows"] == {}


# ----------------------------------------------------------------------
# Process-default registry
# ----------------------------------------------------------------------
def test_default_registry_is_a_stable_singleton(scratch_default):
    assert default_registry() is scratch_default
    assert default_registry() is default_registry()


def test_set_default_registry_returns_previous(scratch_default):
    other = MetricsRegistry()
    assert set_default_registry(other) is scratch_default
    assert default_registry() is other
    set_default_registry(scratch_default)


def test_record_engine_timings_counts_and_histograms(scratch_default):
    record_engine_timings({"encode": 0.01, "novel": 0.002})
    record_engine_timings({"encode": 0.03})
    snap = scratch_default.snapshot()
    assert snap["counters"]["engine_campaigns_total"] == 2
    hists = snap["histograms"]
    assert hists['engine_stage_seconds{stage="encode"}']["count"] == 2
    assert hists['engine_stage_seconds{stage="novel"}']["count"] == 1


# ----------------------------------------------------------------------
# Compatibility: the old service-layer import path still works
# ----------------------------------------------------------------------
def test_service_metrics_shim_reexports_everything():
    from repro.obs import metrics as obs_metrics
    from repro.service import metrics as service_metrics

    for name in ("Counter", "Gauge", "Histogram", "MetricsRegistry",
                 "RollingWindow", "default_registry",
                 "record_engine_timings", "set_default_registry",
                 "timed", "DEFAULT_BUCKETS"):
        assert getattr(service_metrics, name) \
            is getattr(obs_metrics, name)
