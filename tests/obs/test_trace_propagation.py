"""Trace-context propagation across process boundaries.

The distributed-trace contract: a worker process inherits
``(trace_id, parent_span_id)``, records spans that parent-link under
the coordinating span with process-unique span ids, and ships them
home pid-stamped; the parent absorbs them so one Chrome export shows
the whole campaign across every process.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs import (
    SpanRecord,
    TraceContext,
    Tracer,
    context_tracer,
    current_trace_context,
    install_tracer,
    span,
    stamped_records,
    tracing,
    uninstall_tracer,
)


@pytest.fixture(autouse=True)
def _no_tracer():
    uninstall_tracer()
    yield
    uninstall_tracer()


def test_context_is_none_while_tracing_off():
    assert current_trace_context() is None


def test_context_carries_trace_id_and_current_span():
    with tracing() as tracer:
        outside = current_trace_context()
        assert outside == TraceContext(tracer.trace_id, None)
        with span("parent") as parent:
            inside = current_trace_context()
            assert inside.trace_id == tracer.trace_id
            assert inside.parent_span_id == parent._span_id
    round_trip = TraceContext.from_dict(inside.to_dict())
    assert round_trip == inside


def test_context_tracer_joins_the_trace():
    context = TraceContext(trace_id="abc123", parent_span_id=42)
    worker = context_tracer(context, name="w")
    assert worker.trace_id == "abc123"
    previous = install_tracer(worker)
    try:
        with span("shard.worker.run"):
            with span("stage.inner"):
                pass
    finally:
        install_tracer(previous)
    records = {r.name: r for r in worker.records()}
    root = records["shard.worker.run"]
    inner = records["stage.inner"]
    # Root spans parent onto the coordinator's dispatching span.
    assert root.parent_id == 42
    assert inner.parent_id == root.span_id
    # Span ids are pid-salted: disjoint from a parent counting 1, 2...
    assert root.span_id > (1 << 32)


def test_stamped_records_roundtrip_through_absorb():
    worker = context_tracer(TraceContext("t", 7))
    previous = install_tracer(worker)
    try:
        with span("shard.worker.run", shard=1):
            pass
    finally:
        install_tracer(previous)
    rows = stamped_records(worker)
    assert all(isinstance(row["pid"], int) for row in rows)
    parent = Tracer(trace_id="t")
    adopted = parent.absorb(SpanRecord.from_dict(r) for r in rows)
    assert adopted == len(rows)
    record = parent.records()[-1]
    assert record.name == "shard.worker.run"
    assert record.pid is not None
    assert record.parent_id == 7
    assert record.attributes["shard"] == 1


def test_span_record_dict_roundtrip_preserves_pid():
    record = SpanRecord(name="n", span_id=5, parent_id=None,
                        start=1.0, duration=0.5, thread_id=3,
                        attributes={"k": "v"}, error="boom: x",
                        pid=777)
    clone = SpanRecord.from_dict(record.to_dict())
    assert clone == record
    # Absent pid stays absent (in-process records).
    bare = SpanRecord(name="n", span_id=6, parent_id=2, start=0.0,
                      duration=0.1, thread_id=1)
    assert SpanRecord.from_dict(bare.to_dict()) == bare


def test_chrome_trace_gives_workers_their_own_process_track():
    tracer = Tracer()
    with tracing(tracer):
        with span("local"):
            pass
    tracer.absorb([SpanRecord(name="remote", span_id=9,
                              parent_id=None, start=0.0,
                              duration=0.1, thread_id=1, pid=4242)])
    events = {e["name"]: e for e in tracer.chrome_trace()["traceEvents"]}
    import os
    assert events["local"]["pid"] == os.getpid()
    assert events["remote"]["pid"] == 4242
    assert tracer.chrome_trace()["otherData"]["trace_id"] == \
        tracer.trace_id


def test_pool_executor_propagates_trace_context():
    """Pool workers trace their chunk calls into the parent's trace."""
    from repro.campaign import ProcessPoolExecutor

    executor = ProcessPoolExecutor(max_workers=2)
    try:
        with tracing() as tracer:
            with span("campaign.submit"):
                results = list(executor.map(_double, [np.arange(3),
                                                      np.arange(3) + 10]))
        np.testing.assert_array_equal(results[0], [0, 2, 4])
        np.testing.assert_array_equal(results[1], [20, 22, 24])
        records = tracer.records()
        by_name = {}
        for record in records:
            by_name.setdefault(record.name, []).append(record)
        map_span = by_name["executor.map"][0]
        chunk_spans = by_name.get("chunk.work", [])
        assert len(chunk_spans) == 2
        for record in chunk_spans:
            assert record.pid is not None
            assert record.parent_id == map_span.span_id
    finally:
        executor.shutdown()


def _double(chunk):
    with span("chunk.work", size=len(chunk)):
        return chunk * 2


def test_stamped_records_carry_the_hostname():
    """Multi-node shard workers stamp spans with their host: pids
    collide across machines, host+pid does not."""
    import socket as socket_module

    worker = context_tracer(TraceContext("t", 7))
    previous = install_tracer(worker)
    try:
        with span("shard.worker.run", shard=0):
            pass
    finally:
        install_tracer(previous)
    rows = stamped_records(worker)
    assert all(row["host"] == socket_module.gethostname()
               for row in rows)
    clone = SpanRecord.from_dict(rows[-1])
    assert clone.host == socket_module.gethostname()


def test_span_record_dict_roundtrip_preserves_host():
    record = SpanRecord(name="n", span_id=5, parent_id=None,
                        start=1.0, duration=0.5, thread_id=3,
                        attributes={}, error=None, pid=777,
                        host="node-b")
    clone = SpanRecord.from_dict(record.to_dict())
    assert clone == record
    # Absent host stays absent (single-machine records).
    local = SpanRecord(name="n", span_id=5, parent_id=None,
                       start=1.0, duration=0.5, thread_id=3,
                       attributes={}, error=None)
    assert "host" not in local.to_dict()
    assert SpanRecord.from_dict(local.to_dict()).host is None


def test_pre_stamped_host_is_not_overwritten():
    """A record absorbed from another machine keeps its own host even
    when re-stamped on this one."""
    worker = context_tracer(TraceContext("t", 7))
    previous = install_tracer(worker)
    try:
        with span("shard.worker.run"):
            pass
    finally:
        install_tracer(previous)
    import dataclasses

    worker._records = [dataclasses.replace(worker.records()[0],
                                           host="node-far")]
    rows = stamped_records(worker)
    assert rows[0]["host"] == "node-far"
