"""Tracing must observe the pipeline, never perturb it.

Bit-identity of verdicts/NDFs with tracing on vs off is asserted for
every executor, and the per-stage profile derived from spans must
agree with the engine's own ``result.timing`` bookkeeping.
"""

import numpy as np
import pytest

from repro.campaign import (
    CampaignConfig,
    CampaignEngine,
    ProcessPoolExecutor,
    SerialExecutor,
    SharedMemoryExecutor,
    montecarlo_dies,
)
from repro.monitor.configurations import table1_encoder
from repro.obs import (
    install_tracer,
    render_profile,
    stage_profile,
    tracing,
    uninstall_tracer,
)
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS

pytestmark = pytest.mark.campaign

THRESHOLD = 0.05


@pytest.fixture(autouse=True)
def _no_ambient_tracer():
    previous = uninstall_tracer()
    yield
    install_tracer(previous)


def _engine(executor=None, chunk_size=16):
    config = CampaignConfig(table1_encoder(), PAPER_STIMULUS,
                            PAPER_BIQUAD, samples_per_period=512,
                            chunk_size=chunk_size)
    return CampaignEngine(config, executor=executor)


def _population(dies=24):
    return montecarlo_dies(PAPER_BIQUAD, dies, sigma_f0=0.04, seed=11)


@pytest.mark.parametrize("make_executor", [
    lambda: None,
    lambda: SerialExecutor(),
    lambda: ProcessPoolExecutor(max_workers=2),
    lambda: SharedMemoryExecutor(max_workers=2),
], ids=["default", "serial", "pool", "shm"])
def test_verdicts_bit_identical_tracing_on_vs_off(make_executor):
    population = _population()
    executor = make_executor()
    try:
        baseline = _engine(executor).run(population, band=THRESHOLD)
        with tracing() as tracer:
            traced = _engine(executor).run(population, band=THRESHOLD)
    finally:
        if executor is not None:
            executor.shutdown()
    assert np.array_equal(baseline.ndfs, traced.ndfs)
    assert np.array_equal(baseline.verdicts, traced.verdicts)
    assert baseline.threshold == traced.threshold
    assert len(tracer) > 0  # tracing actually happened


def test_campaign_submit_span_wraps_the_stage_spans():
    with tracing() as tracer:
        _engine().run(_population(12), band=THRESHOLD)
    records = tracer.records()
    submits = [r for r in records if r.name == "campaign.submit"]
    assert len(submits) == 1
    submit = submits[0]
    assert submit.attributes["mode"] == "run"
    stage_names = {r.name for r in records
                   if r.name.startswith("stage.")}
    assert {"stage.golden", "stage.traces", "stage.encode",
            "stage.signature", "stage.ndf"} <= stage_names
    # Every stage span descends from the submit span.
    by_id = {r.span_id: r for r in records}
    for record in records:
        if not record.name.startswith("stage."):
            continue
        node = record
        while node.parent_id is not None:
            node = by_id[node.parent_id]
        assert node is submit


def test_stage_profile_agrees_with_result_timing():
    with tracing() as tracer:
        result = _engine().run(_population(60), band=THRESHOLD)
    profile = stage_profile(tracer)
    spanned = sum(entry["seconds"] for entry in profile.values())
    timed = sum(seconds for stage, seconds in result.timing.items()
                if stage != "total")
    # Span durations and the engine's own perf_counter bookkeeping
    # wrap the same blocks, so they must agree closely; 10% covers
    # scheduler noise on the tiny stages.
    assert spanned == pytest.approx(timed, rel=0.10, abs=0.002)
    for stage, entry in profile.items():
        assert entry["seconds"] == pytest.approx(
            result.timing[stage], rel=0.10, abs=0.002)


def test_render_profile_tabulates_stages():
    with tracing() as tracer:
        result = _engine().run(_population(12), band=THRESHOLD)
    table = render_profile(stage_profile(tracer), result.timing)
    lines = table.splitlines()
    assert lines[0].split() == ["stage", "spans", "seconds", "timing"]
    assert any(line.startswith("encode") for line in lines)
    assert lines[-1].startswith("total")


def test_executor_chunk_spans_cover_every_chunk():
    executor = ProcessPoolExecutor(max_workers=2)
    try:
        with tracing() as tracer:
            _engine(executor, chunk_size=8).run(_population(24),
                                                band=THRESHOLD)
    finally:
        executor.shutdown()
    by_name = {}
    for record in tracer.records():
        by_name.setdefault(record.name, []).append(record)
    maps = by_name.get("executor.map", [])
    chunks = by_name.get("executor.chunk", [])
    assert len(maps) >= 1
    assert len(chunks) >= 3  # 24 dies / 8 per chunk
    assert all(r.attributes["executor"] == "process-pool[2]"
               for r in chunks)
    map_ids = {r.span_id for r in maps}
    assert all(r.parent_id in map_ids for r in chunks)


def test_noise_campaign_traces_and_stays_bit_identical():
    population = _population(8)
    engine = _engine()
    baseline = engine.run_noise(population, repeats=3, seed=5,
                                band=THRESHOLD)
    with tracing() as tracer:
        traced = _engine().run_noise(population, repeats=3, seed=5,
                                     band=THRESHOLD)
    assert np.array_equal(baseline.ndf_matrix, traced.ndf_matrix)
    assert {r.name for r in tracer.records()} >= {"campaign.submit",
                                                  "stage.noise"}


@pytest.mark.parametrize("make_executor", [
    lambda: SerialExecutor(),
    lambda: ProcessPoolExecutor(max_workers=2),
    lambda: SharedMemoryExecutor(max_workers=2),
], ids=["serial", "pool", "shm"])
def test_every_executor_yields_one_connected_trace(make_executor):
    """Cross-process trace propagation holds for ALL executors: every
    span -- including chunk spans from pool/shm worker processes --
    descends from the single campaign.submit root.  (PR 9's traced
    chunk calls cover the shm executor too; the old 'shm starts
    parentless spans' caveat is dead.)"""
    executor = make_executor()
    try:
        with tracing() as tracer:
            _engine(executor, chunk_size=8).run(_population(24),
                                                band=THRESHOLD)
    finally:
        executor.shutdown()
    records = tracer.records()
    roots = [r for r in records if r.parent_id is None]
    assert len(roots) == 1
    assert roots[0].name == "campaign.submit"
    by_id = {r.span_id: r for r in records}
    for record in records:
        node = record
        while node.parent_id is not None:
            assert node.parent_id in by_id, (
                f"span {node.name!r} has a dangling parent: "
                f"the {record.name!r} lineage left the trace")
            node = by_id[node.parent_id]
        assert node is roots[0]
