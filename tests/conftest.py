"""Shared fixtures: the calibrated paper bench, cached per session.

Signature capture over the six-monitor encoder is the expensive step;
most tests only need read access to the same golden artifacts, so they
are computed once per session here.
"""

from __future__ import annotations

import pytest

from repro.filters.biquad import BiquadFilter
from repro.monitor.configurations import table1_bank, table1_encoder
from repro.paper import PAPER_BIQUAD, PAPER_STIMULUS, paper_setup


@pytest.fixture(scope="session")
def encoder():
    """The six-monitor Table I zone encoder."""
    return table1_encoder()


@pytest.fixture(scope="session")
def bank():
    """The Table I monitor bank (list of six boundaries)."""
    return table1_bank()


@pytest.fixture(scope="session")
def stimulus():
    """The calibrated two-tone stimulus (period 200 us)."""
    return PAPER_STIMULUS


@pytest.fixture(scope="session")
def golden_spec():
    """The calibrated golden Biquad spec."""
    return PAPER_BIQUAD


@pytest.fixture(scope="session")
def golden_filter(golden_spec):
    """Behavioural golden CUT."""
    return BiquadFilter(golden_spec)


@pytest.fixture(scope="session")
def setup():
    """A fully wired paper bench (ideal capture)."""
    return paper_setup()


@pytest.fixture(scope="session")
def golden_signature(setup):
    """The golden signature, captured once."""
    return setup.tester.golden_signature()


@pytest.fixture(scope="session")
def defective_signature(setup):
    """Signature of the +10 % f0 CUT (the Fig. 6/7 defective unit)."""
    return setup.tester.signature_of(setup.deviated_filter(0.10))
