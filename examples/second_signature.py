"""Splitting ambiguity groups with an adaptive second signature.

Single-signature diagnosis has a hard ceiling: faults whose zone
trajectories coincide (ambiguity groups) cannot be told apart by any
matcher.  This walk-through lifts that ceiling with a second
observation view:

1. compile the fault dictionary and report its ambiguity groups;
2. search the candidate second banks (Table I bias shifts + Y-level
   detectors) for the configuration that best separates the group
   members -- the fault traces synthesize once, each candidate only
   pays one fused encode;
3. compile the two-channel dictionary and re-diagnose a Monte
   Carlo-perturbed fault fleet through both channels;
4. print the per-fault before/after delta (the table quoted in
   docs/ambiguity.md).

Run with:  python examples/second_signature.py
"""

from repro import paper_setup
from repro.analysis import format_table
from repro.diagnosis import (
    ambiguity_groups,
    compile_fault_dictionary,
    compile_multi_fault_dictionary,
    confusion_study,
    fault_distance_matrix,
    search_second_signature,
)


def main() -> None:
    setup = paper_setup(samples_per_period=2048)
    engine = setup.campaign_engine(tolerance=0.05)

    # ------------------------------------------------------------------
    # 1. The single-signature ceiling: ambiguity groups.
    # ------------------------------------------------------------------
    dictionary = compile_fault_dictionary(engine)
    matrix = fault_distance_matrix(dictionary)
    groups = ambiguity_groups(dictionary, matrix=matrix)
    ambiguous = [group for group in groups if len(group) > 1]
    print(f"dictionary: {len(dictionary)} faults, threshold "
          f"{dictionary.threshold:.4f}")
    print("single-signature ambiguity groups:")
    for group in ambiguous:
        print("  {" + ", ".join(dictionary.labels[i] for i in group)
              + "}")

    # ------------------------------------------------------------------
    # 2. Search the candidate second banks.
    # ------------------------------------------------------------------
    search = search_second_signature(engine, dictionary)
    print()
    print(search.summary())

    # ------------------------------------------------------------------
    # 3. Two-channel dictionary + confusion studies (same fleet).
    # ------------------------------------------------------------------
    multi = compile_multi_fault_dictionary(engine, search.encoders)
    single_study = confusion_study(engine, dictionary, per_fault=10,
                                   sigma=0.02, seed=42)
    multi_study = confusion_study(engine, multi, per_fault=10,
                                  sigma=0.02, seed=42)

    # ------------------------------------------------------------------
    # 4. The before/after delta, fault by fault.
    # ------------------------------------------------------------------
    member = {i: group for group in ambiguous for i in group}
    rows = []
    for i, label in enumerate(dictionary.labels):
        detected = int(single_study.detected[i])
        if not detected or i not in member:
            continue
        before = single_study.matrix[i, i] / detected
        after = multi_study.matrix[i, i] / multi_study.detected[i]
        rows.append([label, f"{before:.0%}", f"{after:.0%}",
                     "+" if after > before else
                     ("=" if after == before else "-")])
    print()
    print("per-fault top-1 accuracy on the ambiguity-group members")
    print("(identical fleet, identical channel-0 FAIL gate):")
    print(format_table(["fault", "1 signature", "2 signatures", ""],
                       rows))
    remaining = [group for group in search.groups_after
                 if len(group) > 1]
    named = ", ".join(
        "{" + ", ".join(dictionary.labels[i] for i in group) + "}"
        for group in remaining)
    print(f"\ngroups before: {len(ambiguous)}  after: "
          f"{len(remaining)} ({named})")
    print(f"top-1 accuracy:       {single_study.accuracy:.1%} -> "
          f"{multi_study.accuracy:.1%}")
    print(f"group-aware accuracy: "
          f"{single_study.group_accuracy(groups):.1%} -> "
          f"{multi_study.group_accuracy(groups):.1%}")
    assert multi_study.group_accuracy(groups) >= \
        single_study.group_accuracy(groups)
    # Plain top-1 rises on this bench; only group-aware accuracy is
    # provably no-regress, so allow one die of platform slack.
    assert multi_study.accuracy >= single_study.accuracy \
        - 1.0 / max(1, int(single_study.detected.sum()))
    assert ["r1-open", "r5-short"] in search.resolved_groups
    assert ["r4-open", "r4-short"] in search.invisible_groups
    print("\nresolved as promised: {r1-open, r5-short}; "
          "{r4-open, r4-short} stays invisible by construction.")


if __name__ == "__main__":
    main()
