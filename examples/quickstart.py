"""Quickstart: test a Biquad's natural frequency with a digital signature.

Runs the paper's headline flow end to end in a few lines:

1. build the calibrated bench (Table I monitors + two-tone stimulus);
2. capture the golden signature;
3. measure a CUT with a +10 % natural-frequency shift;
4. decide PASS/FAIL against a 5 % tolerance band.

Run with:  python examples/quickstart.py
"""

import numpy as np

from repro import paper_setup


def main() -> None:
    setup = paper_setup()

    golden = setup.tester.golden_signature()
    print(f"golden signature: {len(golden)} (zone, dwell) entries over "
          f"{golden.period * 1e6:.0f} us")
    print("zones traversed:", sorted(golden.distinct_codes()))

    # Measure a defective unit: natural frequency 10 % high.
    result = setup.test_deviation(0.10)
    print(f"\n+10 % f0 unit: NDF = {result.ndf:.4f} "
          f"(paper reports 0.1021)")

    # Calibrate a +-5 % tolerance band from the Fig. 8 sweep and decide.
    sweep = setup.fig8_sweep(np.linspace(-0.10, 0.10, 9))
    band = sweep.band_for_tolerance(0.05)
    print(f"tolerance band: NDF <= {band.threshold:.4f} for +-5 % f0\n")

    for deviation in (0.0, 0.02, 0.04, 0.08, 0.10):
        verdict = setup.test_deviation(deviation, band).verdict
        print(f"  f0 {deviation:+.0%}: {verdict}")


if __name__ == "__main__":
    main()
