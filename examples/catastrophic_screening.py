"""Screening catastrophic defects (opens/shorts) with one signature.

The paper motivates X-Y zoning with the observation that "a large set
of parametric and catastrophic defects can be detected just by checking
whether the Lissajous curve remains in the specified zones".  This
script injects every single open and short into the structural
Tow-Thomas realization of the Biquad and runs the stock signature test:

* most defects distort the response so violently that the NDF
  saturates far above any parametric deviation;
* the report flags any escapes, with the faulted transfer function's
  key numbers for diagnosis.

Run with:  python examples/catastrophic_screening.py
"""

import numpy as np

from repro import paper_setup
from repro.analysis import format_table
from repro.filters import (
    TowThomasValues,
    catastrophic_fault_universe,
)


def main() -> None:
    setup = paper_setup(samples_per_period=2048)
    values = TowThomasValues.from_spec(setup.golden_spec)

    sweep = setup.fig8_sweep(np.linspace(-0.10, 0.10, 9))
    band = sweep.band_for_tolerance(0.05)
    print(f"decision band (5 % f0 tolerance): NDF <= "
          f"{band.threshold:.4f}\n")

    rows = []
    escapes = []
    for fault in catastrophic_fault_universe():
        cut = fault.apply_to_biquad(values)
        ndf_value = setup.tester.ndf_of(cut)
        verdict = band.decide(ndf_value)
        gain_5k = abs(cut.transfer(5e3))
        rows.append([fault.label, f"{ndf_value:.4f}",
                     f"{gain_5k:.3f}",
                     "DETECTED" if not verdict.passed else "ESCAPE"])
        if verdict.passed:
            escapes.append(fault.label)

    print(format_table(
        ["fault", "NDF", "|H(5 kHz)| (golden: "
         f"{abs(setup.golden_filter().transfer(5e3)):.3f})", "verdict"],
        rows))
    detected = len(rows) - len(escapes)
    print(f"\ncoverage: {detected}/{len(rows)} "
          f"({detected / len(rows):.0%})")
    if escapes:
        print("escapes:", ", ".join(escapes))
        print("(escapes happen when a defect barely moves the response "
              "inside the observed band -- candidates for a second "
              "signature with different boundaries)")


if __name__ == "__main__":
    main()
