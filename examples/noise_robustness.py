"""Noise robustness: detecting 1 % f0 deviations under measurement noise.

Reproduces the paper's Section IV-C claim: "Simulations conducted with
high frequency white noise on the signals with null mean and a 3 sigma
spread of 0.015 V show that deviations as low as 1 % in the natural
frequency of the filter are detected."

The script shows the two ingredients:

* without band limiting, boundary-crossing jitter from the raw noise
  floors the NDF and masks small deviations;
* with the monitor's front-end pole (200 kHz here), the high-frequency
  noise averages out and +-1 % deviations separate cleanly from the
  golden population.

Run with:  python examples/noise_robustness.py
"""


from repro.analysis import format_table
from repro.paper import noisy_paper_setup, paper_setup
from repro.signals import NoiseModel


def population_table(bench, noise, deviations, repeats=10):
    rows = []
    golden_pop = bench.tester.noisy_ndf_population(
        bench.golden_filter(), noise, repeats)
    rows.append(["golden", f"{golden_pop.mean():.4f}",
                 f"{golden_pop.max():.4f}", "-"])
    for dev in deviations:
        pop = bench.tester.noisy_ndf_population(
            bench.deviated_filter(dev), noise, repeats)
        separated = "yes" if pop.min() > golden_pop.max() else "NO"
        rows.append([f"{dev:+.0%}", f"{pop.mean():.4f}",
                     f"{pop.min():.4f}", separated])
    return rows


def main() -> None:
    noise = NoiseModel(0.015, rng=21)  # the paper's 3 sigma = 0.015 V
    deviations = (-0.02, -0.01, 0.01, 0.02)

    print("=== raw capture (no band limiting) ===")
    raw = paper_setup(samples_per_period=4096)
    rows = population_table(raw, noise, deviations)
    print(format_table(["unit", "mean NDF", "min/max NDF",
                        "separated from golden"], rows))
    print("crossing jitter floors the NDF: small shifts are masked\n")

    print("=== with 200 kHz monitor front-end pole ===")
    filtered = noisy_paper_setup(samples_per_period=4096)
    rows = population_table(filtered, noise, deviations)
    print(format_table(["unit", "mean NDF", "min/max NDF",
                        "separated from golden"], rows))
    print("high-frequency noise averages out: +-1 % f0 is detectable,")
    print("reproducing the paper's Section IV-C conclusion.")


if __name__ == "__main__":
    main()
