"""Bring-your-own-circuit: signature-test a CUT defined as a netlist.

A downstream user rarely has their filter as library objects -- they
have a SPICE deck.  This script shows the full path:

1. parse a Tow-Thomas Biquad from SPICE-style text;
2. verify the realized transfer function against the design targets
   with the built-in AC analysis;
3. wrap the parsed circuit as a CUT and run the stock signature test
   against the library's golden Biquad, including a drifted copy of
   the same netlist.

Run with:  python examples/spice_netlist_workflow.py
"""

import numpy as np

from repro import paper_setup
from repro.circuits import ac_analysis, parse_netlist
from repro.signals.lissajous import LissajousTrace
from repro.signals.waveform import Waveform

# The paper's CUT as a plain netlist (ideal op-amps via E elements with
# high gain).  Component values realize f0 = 11 kHz, Q = 1, G = 1 with
# C = 10 nF (R = 1 / (w0 C) = 1447 ohm).
TOW_THOMAS_DECK = """
* Tow-Thomas biquad, f0 = 11 kHz, Q = 1, unity gain
Vin vin 0 0 AC 1
R1 vin n1 {r1}
R2 n1 bp {r2}
C1 n1 bp 10n
E1 bp 0 0 n1 1e6        ; A1: high-gain inverting stage
R3 bp n2 {r3}
C2 n2 lp 10n
E2 lp 0 0 n2 1e6        ; A2
R4a lp n3 10k
R4b n3 fb 10k
E3 fb 0 0 n3 1e6        ; A3 inverter
R5 fb n1 {r5}
.end
"""


def build_deck(f0_scale: float = 1.0) -> str:
    r = 1.0 / (2 * np.pi * 11e3 * 10e-9)
    return TOW_THOMAS_DECK.format(
        r1=f"{r / f0_scale:.6g}", r2=f"{r / f0_scale:.6g}",
        r3=f"{r / f0_scale:.6g}", r5=f"{r / f0_scale:.6g}")


class NetlistCut:
    """Adapter: a parsed linear netlist as a signature-flow CUT."""

    def __init__(self, deck: str) -> None:
        self.circuit = parse_netlist(deck, title="user CUT")
        self.system = self.circuit.assemble()

    def transfer(self, freq_hz: float) -> complex:
        freq = max(freq_hz, 1e-2)
        result = ac_analysis(self.system, [freq])
        return complex(result.transfer("lp", "vin")[0])

    def lissajous(self, stimulus, samples_per_period=4096):
        response = stimulus.through(self.transfer)
        period = stimulus.period()
        x = Waveform.from_function(stimulus, period, samples_per_period)
        y = Waveform.from_function(response, period, samples_per_period)
        return LissajousTrace(x, y, period)


def main() -> None:
    print("parsing the Tow-Thomas deck...")
    nominal = NetlistCut(build_deck())
    print(f"|H(11 kHz)| = {abs(nominal.transfer(11e3)):.3f} "
          f"(design: Q = 1.0)")
    print(f"|H(DC)|    = {abs(nominal.transfer(0.0)):.3f} "
          f"(design: 1.0)\n")

    setup = paper_setup(samples_per_period=2048)

    for scale, label in ((1.0, "nominal netlist"),
                         (1.10, "+10 % f0 drifted netlist"),
                         (0.95, "-5 % f0 drifted netlist")):
        cut = NetlistCut(build_deck(scale))
        value = setup.tester.ndf_of(cut)
        print(f"{label:28s}: NDF = {value:.4f}")
    print("\n(the +10 % netlist lands on the paper's 0.1021 anchor; the "
          "nominal one reads ~0 against the library golden)")


if __name__ == "__main__":
    main()
