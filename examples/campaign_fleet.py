"""Fleet view: screening thousands of dies in one campaign call.

Where ``examples/yield_and_escapes.py`` walks the production trade-off
one die at a time, this script runs the same signature flow at fleet
scale through :mod:`repro.campaign`:

1. build a campaign engine on the paper bench (golden signature and
   Fig. 8 band are computed once and content-cached);
2. screen a 2000-die Monte Carlo population in one batched call --
   stacked traces, shared-branch zone encoding, packed
   ``SignatureBatch`` extraction, one-pass fleet NDF -- and print the
   fleet economics plus the per-stage timings;
3. re-run the same seeded population on a process pool and on the
   shared-memory executor and check all verdict vectors are
   bit-identical;
4. stream a fleet larger than you would want in memory through
   bounded-size chunks (same seeds, same verdicts, bounded RSS);
5. repeat every die's measurement under Section IV-C noise as one
   ``(N, repeats)`` batch and read off per-die detection rates;
6. screen two more population kinds through the same engine: the
   monitor's own process variation and the industrial temperature
   corners.

Run with:  python examples/campaign_fleet.py
"""

import numpy as np

from repro import paper_setup
from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    ProcessPoolExecutor,
    SharedMemoryExecutor,
    montecarlo_dies,
    montecarlo_monitor_banks,
    stream_montecarlo_dies,
    temperature_corners,
)
from repro.devices.process import MonteCarloSampler
from repro.devices.temperature import industrial_range
from repro.monitor.configurations import table1_bank


def main() -> None:
    setup = paper_setup(samples_per_period=2048)
    engine = setup.campaign_engine(tolerance=0.05)

    print("=== 2000-die Monte Carlo screening (sigma_f0 = 3 %) ===")
    dies = montecarlo_dies(setup.golden_spec, 2000, sigma_f0=0.03,
                           seed=42)
    result = engine.run(dies, band="auto")
    print(result.summary())
    report = result.yield_report()
    print(f"yield loss rate: {report.yield_loss_rate:.2%}   "
          f"escape rate: {report.escape_rate:.2%}")
    stages = " / ".join(f"{k} {result.timing[k] * 1e3:.0f} ms"
                        for k in ("traces", "encode", "signature",
                                  "ndf") if k in result.timing)
    print(f"stage timings: {stages}\n")

    print("=== same fleet on a process pool and in shared memory ===")
    for executor_cls in (ProcessPoolExecutor, SharedMemoryExecutor):
        with executor_cls(max_workers=4) as pool:
            pooled = CampaignEngine(engine.config, cache=GoldenCache(),
                                    executor=pool).run(dies,
                                                       band="auto")
        same = np.array_equal(result.verdicts, pooled.verdicts)
        print(f"{pooled.executor}: {pooled.pass_count} PASS / "
              f"{pooled.fail_count} FAIL -- verdicts bit-identical: "
              f"{same}")
    print()

    print("=== streaming the same fleet in 256-die chunks ===")
    streamed = engine.run_stream(
        stream_montecarlo_dies(setup.golden_spec, 2000, chunk_size=256,
                               sigma_f0=0.03, seed=42), band="auto")
    same = np.array_equal(result.verdicts, streamed.verdicts)
    print(f"{streamed.executor}: verdicts bit-identical to the "
          f"monolithic run: {same}  (peak memory scales with the "
          f"chunk, not the fleet)\n")

    print("=== Section IV-C noise: 200 dies x 20 noisy repeats ===")
    noisy = engine.run_noise(
        montecarlo_dies(setup.golden_spec, 200, sigma_f0=0.03,
                        seed=42),
        repeats=20, seed=7, band="auto")
    print(noisy.summary())
    rates = noisy.detection_rates()
    print(f"dies flagged in every repeat: "
          f"{int(np.sum(rates == 1.0))}   flagged never: "
          f"{int(np.sum(rates == 0.0))}\n")

    print("=== monitor process variation (50 varied banks) ===")
    banks = montecarlo_monitor_banks(table1_bank(), 50,
                                     sampler=MonteCarloSampler(rng=0))
    monitor_result = engine.run(banks, band=None)
    print(f"fault-free CUT, varied monitors: NDF p95 = "
          f"{monitor_result.ndf_percentile(95):.4f} "
          f"(test margin consumed by the tester itself)\n")

    print("=== temperature corners (-40 .. +125 C) ===")
    corners = engine.run(temperature_corners(industrial_range(5)),
                         band="auto")
    for label, value, verdict in zip(corners.labels, corners.ndfs,
                                     corners.verdicts):
        word = "PASS" if verdict else "FAIL"
        print(f"  {label:>6}: NDF = {value:.4f}  {word}")


if __name__ == "__main__":
    main()
