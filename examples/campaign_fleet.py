"""Fleet view: screening thousands of dies in one campaign call.

Where ``examples/yield_and_escapes.py`` walks the production trade-off
one die at a time, this script runs the same signature flow at fleet
scale through :mod:`repro.campaign`:

1. build a campaign engine on the paper bench (golden signature and
   Fig. 8 band are computed once and content-cached);
2. screen a 2000-die Monte Carlo population in one batched call and
   print the fleet economics;
3. re-run the same seeded population on a process pool and check the
   verdict vectors are bit-identical;
4. screen two more population kinds through the same engine: the
   monitor's own process variation and the industrial temperature
   corners.

Run with:  python examples/campaign_fleet.py
"""

import numpy as np

from repro import paper_setup
from repro.campaign import (
    CampaignEngine,
    GoldenCache,
    ProcessPoolExecutor,
    montecarlo_dies,
    montecarlo_monitor_banks,
    temperature_corners,
)
from repro.devices.process import MonteCarloSampler
from repro.devices.temperature import industrial_range
from repro.monitor.configurations import table1_bank


def main() -> None:
    setup = paper_setup(samples_per_period=2048)
    engine = setup.campaign_engine(tolerance=0.05)

    print("=== 2000-die Monte Carlo screening (sigma_f0 = 3 %) ===")
    dies = montecarlo_dies(setup.golden_spec, 2000, sigma_f0=0.03,
                           seed=42)
    result = engine.run(dies, band="auto")
    print(result.summary())
    report = result.yield_report()
    print(f"yield loss rate: {report.yield_loss_rate:.2%}   "
          f"escape rate: {report.escape_rate:.2%}\n")

    print("=== same fleet on a process pool ===")
    with ProcessPoolExecutor(max_workers=4) as pool:
        pooled = CampaignEngine(engine.config, cache=GoldenCache(),
                                executor=pool).run(dies, band="auto")
    same = np.array_equal(result.verdicts, pooled.verdicts)
    print(f"{pooled.executor}: {pooled.pass_count} PASS / "
          f"{pooled.fail_count} FAIL -- verdicts bit-identical: {same}\n")

    print("=== monitor process variation (50 varied banks) ===")
    banks = montecarlo_monitor_banks(table1_bank(), 50,
                                     sampler=MonteCarloSampler(rng=0))
    monitor_result = engine.run(banks, band=None)
    print(f"fault-free CUT, varied monitors: NDF p95 = "
          f"{monitor_result.ndf_percentile(95):.4f} "
          f"(test margin consumed by the tester itself)\n")

    print("=== temperature corners (-40 .. +125 C) ===")
    corners = engine.run(temperature_corners(industrial_range(5)),
                         band="auto")
    for label, value, verdict in zip(corners.labels, corners.ndfs,
                                     corners.verdicts):
        word = "PASS" if verdict else "FAIL"
        print(f"  {label:>6}: NDF = {value:.4f}  {word}")


if __name__ == "__main__":
    main()
