"""Designing X-Y zoning monitors: Table I, silicon variability, sizing.

A monitor designer's walk through the paper's Section III:

* build the six Table I configurations and extract their control
  curves (Fig. 4);
* simulate the transistor-level Fig. 2 stage for one configuration and
  compare its trip locus against the analytic current balance;
* run the process + mismatch Monte Carlo and print the +-3 sigma
  boundary envelope, showing how device area buys repeatability
  (Pelgrom's law).

Run with:  python examples/monitor_design.py
"""

import numpy as np

from repro.analysis import ascii_xy_plot, format_table
from repro.devices.process import MonteCarloSampler
from repro.monitor import (
    MonitorBoundary,
    TransistorMonitor,
    boundary_spread,
    characterize,
    extract_locus,
    locus_rms_difference,
    table1_config,
    table1_monitor,
)


def main() -> None:
    print("=== Table I control curves (Fig. 4) ===")
    rows = []
    slope_words = {1: "positive", -1: "negative", 0: "mixed"}
    for row in range(1, 7):
        ch = characterize(table1_monitor(row))
        rows.append([f"curve {row}", slope_words[ch.slope_sign],
                     f"{ch.coverage:.0%}", f"{ch.mean_slope:+.2f}"])
    print(format_table(["monitor", "slope", "window coverage", "dy/dx"],
                       rows))

    xs = np.concatenate([extract_locus(table1_monitor(r), points=81)[0]
                         for r in range(1, 7)])
    ys = np.concatenate([extract_locus(table1_monitor(r), points=81)[1]
                         for r in range(1, 7)])
    keep = ~np.isnan(ys)
    print("\nAll six boundaries on the 0-1 V window:")
    print(ascii_xy_plot(xs[keep], ys[keep], width=61, height=21,
                        x_label="X (V)", y_label="Y (V)"))

    print("\n=== Transistor-level check (Fig. 2 stage, curve 3) ===")
    analytic = table1_monitor(3)
    xtor = TransistorMonitor(table1_config(3))
    rms = locus_rms_difference(analytic, xtor, points=9)
    print(f"trip-locus RMS gap analytic vs simulated stage: "
          f"{rms * 1e3:.1f} mV")

    print("\n=== Monte Carlo envelope (process + mismatch) ===")
    for scale, label in ((1.0, "Table I sizing"),
                         (4.0, "4x wider devices")):
        config = table1_config(3)
        sized = MonitorBoundary(type(config)(
            tuple(w * scale for w in config.widths_nm), config.hookups,
            length_nm=config.length_nm, name=config.name,
            reference_point=config.reference_point))
        spread = boundary_spread(sized, MonteCarloSampler(rng=0),
                                 num_dies=40, points=41)
        print(f"  {label:18s}: max +-3 sigma spread = "
              f"{spread.max_spread() * 1e3:5.1f} mV")
    print("(wider devices shrink mismatch by Pelgrom's 1/sqrt(WL))")


if __name__ == "__main__":
    main()
