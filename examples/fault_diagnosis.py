"""From "die failed" to "fault F at component X": dictionary diagnosis.

The paper's signature is usually read as a pass/fail oracle, but the
*shape* of a failing signature carries information about which defect
produced it.  This walkthrough closes that loop with the
:mod:`repro.diagnosis` subsystem:

1. compile the fault dictionary -- every open/short of the Tow-Thomas
   components plus the parametric deviation classes, simulated once
   through the campaign engine and content-cached;
2. study the dictionary's geometry -- which faults the calibrated
   decision band detects at all, and which land so close together in
   signature space that no matcher could tell them apart (ambiguity
   groups);
3. screen a Monte Carlo-perturbed fleet of faulty dies and diagnose
   the failures in one batched pass, reporting top-k candidates with
   confidence margins and the true-vs-predicted confusion matrix.

Run with:  python examples/fault_diagnosis.py
"""

import numpy as np

from repro import paper_setup
from repro.analysis import format_table
from repro.diagnosis import (
    ambiguity_groups,
    compile_fault_dictionary,
    confusion_study,
    detectability_report,
    fault_distance_matrix,
)


def main() -> None:
    setup = paper_setup(samples_per_period=2048)
    engine = setup.campaign_engine(tolerance=0.05)

    # ------------------------------------------------------------------
    # 1. Compile (cached under the engine's content key).
    # ------------------------------------------------------------------
    dictionary = compile_fault_dictionary(engine)
    print(f"dictionary: {len(dictionary)} faults, decision threshold "
          f"{dictionary.threshold:.4f}\n")
    print(format_table(
        ["fault", "NDF vs golden", "detectable"],
        [[label, f"{ndf:.4f}", "yes" if hit else "ESCAPE"]
         for label, ndf, hit in zip(dictionary.labels, dictionary.ndfs,
                                    dictionary.detectable())]))

    # ------------------------------------------------------------------
    # 2. Geometry: coverage and ambiguity.
    # ------------------------------------------------------------------
    coverage = detectability_report(dictionary)
    print()
    print(coverage.summary())
    matrix = fault_distance_matrix(dictionary)
    groups = [group for group in ambiguity_groups(dictionary,
                                                  matrix=matrix)
              if len(group) > 1]
    print("ambiguity groups (indistinguishable in signature space):")
    for group in groups:
        members = ", ".join(dictionary.labels[i] for i in group)
        print(f"  {{{members}}}")
    separations = matrix[~np.eye(len(dictionary), dtype=bool)]
    print(f"median fault-to-fault separation: "
          f"{float(np.median(separations)):.4f} NDF\n")

    # ------------------------------------------------------------------
    # 3. Screen + diagnose a perturbed fleet.
    # ------------------------------------------------------------------
    study = confusion_study(engine, dictionary, per_fault=10,
                            sigma=0.02, seed=42, top_k=3)
    print(study.summary())
    print(f"group top-1: {study.group_accuracy(groups):.1%} "
          f"(correct up to ambiguity groups)\n")
    print(study.diagnosis.summary(max_rows=6))


if __name__ == "__main__":
    main()
