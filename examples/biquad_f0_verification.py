"""Full parameter-verification campaign on the Biquad CUT (Figs. 6-8).

Reproduces the paper's evaluation story as a single script:

* renders the zone map with the golden Lissajous overlay (Fig. 6),
* prints the golden and +10 % signatures and their Hamming chronogram
  with the NDF (Fig. 7),
* sweeps f0 deviations from -20 % to +20 % and prints the Fig. 8 curve
  with the PASS/FAIL bands for a chosen tolerance.

Run with:  python examples/biquad_f0_verification.py
"""

import numpy as np

from repro import paper_setup
from repro.analysis import (
    ascii_chronogram,
    ascii_xy_plot,
    build_chronogram,
    format_table,
)


def main() -> None:
    setup = paper_setup()
    tester = setup.tester

    print("=== Fig. 6: zone map (base-64 glyph per zone code) ===")
    print(setup.encoder.ascii_zone_map(width=64, height=22))

    golden = tester.golden_signature()
    defective = tester.signature_of(setup.deviated_filter(0.10))
    print("\n=== Eq. 1: the digital signatures ===")
    rows = [[i, entry.code, setup.encoder.code_string(entry.code),
             f"{entry.duration * 1e6:.2f}"]
            for i, entry in enumerate(golden)]
    print(format_table(["#", "zone", "code", "dwell (us)"], rows[:12]))
    print(f"... {len(golden)} entries total")

    print("\n=== Fig. 7: chronogram, golden vs +10 % f0 ===")
    data = build_chronogram(defective, golden)
    print(ascii_chronogram(data, width=100, height=14))
    print(f"NDF = {data.ndf:.4f}   (paper: 0.1021)")

    print("\n=== Fig. 8: NDF vs f0 deviation ===")
    sweep = setup.fig8_sweep(np.linspace(-0.20, 0.20, 21))
    print(ascii_xy_plot(sweep.deviations, sweep.ndfs, width=72,
                        height=18, x_label="f0 deviation",
                        y_label="NDF"))
    r2 = sweep.linearity_r2()
    print(f"linearity R^2 (neg/pos): {r2[0]:.3f} / {r2[1]:.3f}; "
          f"symmetry error: {sweep.symmetry_error():.4f}")

    tolerance = 0.05
    band = sweep.band_for_tolerance(tolerance)
    print(f"\nPASS band for +-{tolerance:.0%} f0 tolerance: "
          f"NDF <= {band.threshold:.4f}")
    for dev in (-0.15, -0.06, -0.03, 0.03, 0.06, 0.15):
        verdict = band.decide(tester.ndf_of(setup.deviated_filter(dev)))
        print(f"  f0 {dev:+.0%}: {verdict}")


if __name__ == "__main__":
    main()
