"""Production view: setting the NDF threshold for yield vs escapes.

Extends the paper's Fig. 8 band construction to a manufacturing
scenario: the Biquad population itself spreads (sigma(f0) = 3 % here),
so the NDF threshold trades scrapping good units (yield loss /
overkill) against shipping bad ones (test escapes).  The script:

1. measures a Monte Carlo population of CUTs through the signature
   flow;
2. prints the confusion matrix at the paper-style (sweep-derived)
   threshold;
3. sweeps the threshold to show the full trade-off and picks the
   cost-optimal point when an escape costs 10x an overkill.

Run with:  python examples/yield_and_escapes.py
"""

import numpy as np

from repro import paper_setup
from repro.analysis import (
    CutPopulation,
    format_table,
    optimal_threshold,
    roc_curve,
    yield_escape_analysis,
)


def main() -> None:
    setup = paper_setup(samples_per_period=2048)
    tolerance = 0.05

    population = CutPopulation(setup.golden_spec, sigma_f0=0.03, rng=42)
    print("measuring 80 process-spread units through the signature "
          "flow...")
    units = population.measure(setup.tester, count=80)
    good = sum(u.is_good(tolerance) for u in units)
    print(f"population: {good} in-spec, {len(units) - good} out-of-spec "
          f"(±{tolerance:.0%} f0 tolerance)\n")

    band = setup.fig8_sweep(
        np.linspace(-0.10, 0.10, 9)).band_for_tolerance(tolerance)
    report = yield_escape_analysis(units, band.threshold, tolerance)
    print(f"paper-style threshold (from the Fig. 8 sweep): "
          f"NDF <= {band.threshold:.4f}")
    print(f"  true pass:  {report.true_pass}")
    print(f"  true fail:  {report.true_fail}")
    print(f"  yield loss: {report.yield_loss} "
          f"({report.yield_loss_rate:.1%} of good units)")
    print(f"  escapes:    {report.escapes} "
          f"({report.escape_rate:.1%} of bad units)\n")

    print("threshold sweep:")
    rows = [[f"{r.threshold:.3f}", r.yield_loss, r.escapes]
            for r in roc_curve(units, tolerance,
                               np.linspace(0.02, 0.08, 13))]
    print(format_table(["threshold", "yield loss", "escapes"], rows))

    best = optimal_threshold(units, tolerance, escape_cost=10.0)
    print(f"\ncost-optimal threshold (escape = 10x overkill): "
          f"NDF <= {best.threshold:.4f} "
          f"(loss {best.yield_loss}, escapes {best.escapes})")


if __name__ == "__main__":
    main()
